"""Extension benchmark E10 — operational attacks against the channel.

Linear-decoder reconstruction, nearest-neighbour inversion, and MLP label
inference, under three conditions: the clean channel, Shredder's sampled
noise, and magnitude-matched fresh Laplace (accuracy-agnostic baseline).

Expected shape: Shredder collapses the reconstruction attacks like the
matched baseline does, but retains far more task accuracy — the asymmetric
trade-off of Figure 1 made operational.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.eval import run_attack_suite, write_csv


def test_attack_suite_lenet(benchmark, config, results_dir):
    def run():
        return run_attack_suite("lenet", config, verbose=True)

    result = run_once(benchmark, run)
    print()
    print(result.format())
    write_csv(
        results_dir / "attack_suite_lenet.csv",
        [
            "condition",
            "task_accuracy",
            "linear_advantage",
            "nn_mse",
            "label_attack_advantage",
            "reid_top1",
        ],
        [
            [
                o.condition,
                o.task_accuracy,
                o.linear_advantage,
                o.nn_mse,
                o.label_attack_advantage,
                o.reid_top1,
            ]
            for o in result.outcomes
        ],
    )
    clean = result.by_condition("clean")
    shredder = result.by_condition("shredder")
    # Shredder blunts the reconstruction attack...
    assert shredder.linear_advantage < clean.linear_advantage
    # ...while keeping most of the task accuracy.
    assert shredder.task_accuracy > clean.task_accuracy - 0.12
    # The clean channel must actually be attackable for this to mean much.
    assert clean.linear_advantage > 0.05
    # Re-identification is the attack additive noise does NOT stop: with
    # the exact candidate pool in hand, the noise (independent of the
    # activation) is near-orthogonal to activation differences in high
    # dimensions, so nearest-pool matching survives Shredder at these
    # magnitudes.  This operationalises the paper's own caveat that MI
    # "targets the average case privacy, but does not guarantee the amount
    # of privacy that is offered to each individual user" (§3).
    assert clean.reid_top1 == 1.0
    assert shredder.reid_top1 > 0.8
