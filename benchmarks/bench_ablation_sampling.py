"""Ablation E8 — noise *sampling* vs a single fixed tensor (paper §2.5).

Three deployment strategies at matched noise magnitude on LeNet:

* **collection sampling** (Shredder's deployment): per-inference draws
  from the trained collection — reduces MI while keeping accuracy;
* **single fixed tensor**: a constant shift — keeps accuracy but reduces
  *no* mutual information (I(x; a+c) = I(x; a));
* **fresh Laplace** (accuracy-agnostic baseline of Figure 1): reduces MI
  but costs far more accuracy because it was never trained;

plus the two generalised deployment strategies beyond the paper:

* **element-wise resampling**: per-element draws across members — enlarges
  the effective support of the empirical distribution;
* **fitted Laplace**: fresh tensors from a per-element parametric fit of
  the collection (:class:`repro.core.FittedNoiseDistribution`).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.core import FittedNoiseDistribution
from repro.eval import build_pipeline, format_table, load_benchmark, write_csv
from repro.privacy import estimate_leakage


def test_sampling_strategies(benchmark, config, results_dir):
    def run():
        bundle, bench = load_benchmark("lenet", config)
        pipeline = build_pipeline(bundle, bench, config)
        collection = pipeline.collect(bench.n_members)
        rng = np.random.default_rng(config.child_seed("ablation-sampling"))
        activations = pipeline.trainer.eval_activations
        images = bundle.test_set.images
        scale = config.scale

        def leakage(noisy):
            return estimate_leakage(
                images,
                noisy,
                n_components=scale.mi_components,
                max_samples=scale.mi_samples,
                rng=np.random.default_rng(0),
            ).mi_bits

        clean_acc = pipeline.clean_accuracy()
        original_mi = leakage(activations)

        sampled = collection.sample_batch(rng, len(activations))
        fixed = collection.samples[0].tensor[None]
        member_std = float(np.std(np.stack([s.tensor for s in collection.samples])))
        fresh = rng.laplace(0.0, member_std / np.sqrt(2), size=activations.shape).astype(
            np.float32
        )
        elementwise = np.concatenate(
            [collection.sample_elementwise(rng) for _ in range(len(activations))]
        )
        fitted = FittedNoiseDistribution.fit(collection).sample_batch(
            rng, len(activations)
        )

        rows = []
        for name, noise in (
            ("collection_sampling", sampled),
            ("elementwise_resampling", elementwise),
            ("fitted_laplace", fitted),
            ("single_fixed_tensor", fixed),
            ("fresh_laplace", fresh),
        ):
            accuracy = pipeline.split.accuracy_from_activations(
                activations, pipeline.trainer.eval_labels, noise
            )
            mi = leakage(activations + noise)
            rows.append((name, accuracy, mi))
        return clean_acc, original_mi, rows

    clean_acc, original_mi, rows = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["strategy", "accuracy", "MI (bits)"],
            [[r[0], f"{r[1]:.3f}", f"{r[2]:.3f}"] for r in rows]
            + [["no_noise", f"{clean_acc:.3f}", f"{original_mi:.3f}"]],
            title="Ablation: deployment noise strategies (LeNet)",
        )
    )
    write_csv(
        results_dir / "ablation_sampling.csv",
        ["strategy", "accuracy", "mi_bits"],
        rows + [("no_noise", clean_acc, original_mi)],
    )
    by_name = {r[0]: r for r in rows}
    # The fixed tensor keeps accuracy but cannot reduce MI below ~original.
    assert by_name["single_fixed_tensor"][2] > 0.7 * original_mi
    # Collection sampling reduces MI substantially below the fixed tensor.
    assert by_name["collection_sampling"][2] < by_name["single_fixed_tensor"][2]
    # And keeps accuracy close to clean (within 10 points at small scale).
    assert by_name["collection_sampling"][1] > clean_acc - 0.10
    # The generalised strategies also realise a noisy channel.
    assert by_name["elementwise_resampling"][2] < by_name["single_fixed_tensor"][2]
    assert by_name["fitted_laplace"][2] < by_name["single_fixed_tensor"][2]
    # Fresh draws from the *fitted* distribution break the cross-element
    # structure of individual trained members, so they sit well below
    # member sampling — and can even rank below zero-centred fresh noise,
    # since the fit combines a biased location with large independent
    # per-element spread (a real finding: the collection's members are
    # correlated tensors, not independent per-element draws).  The fit is
    # still usable, far above chance.
    assert by_name["fitted_laplace"][1] >= 0.45
