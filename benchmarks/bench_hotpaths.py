#!/usr/bin/env python3
"""Hot-path micro-benchmarks: estimator layer and collection training.

Times the two paths this repo's experiments live in — kNN mutual-information
estimation and §2.5 noise-collection training — each as "before" (the
retained reference implementations / the sequential member loop) vs "after"
(vectorised estimator backends / one batched multi-member loop), plus the
shared activation cache.  Writes ``BENCH_hotpaths.json`` so future PRs can
track the perf trajectory against a committed baseline.

Run:
    PYTHONPATH=src python benchmarks/bench_hotpaths.py [--smoke] [--output PATH]

``--smoke`` shrinks every workload for CI wiring checks; committed numbers
come from a full run at ``REPRO_SCALE=small``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np
import scipy

from repro.config import Config, get_scale
from repro.core import ShredderPipeline, clear_activation_cache, get_activation_cache
from repro.privacy import (
    kl_entropy,
    kl_entropy_reference,
    ksg_mutual_information,
    ksg_mutual_information_reference,
)
from repro.privacy import _fastknn


def best_of(fn, repeats: int) -> tuple[float, object]:
    """Minimum wall time over ``repeats`` calls, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_estimators(n: int, d: int, k: int, repeats: int) -> dict:
    """KSG and KL: reference loop implementations vs the fast backends."""
    rng = np.random.default_rng(0)
    x = rng.normal(size=(n, d))
    y = 0.6 * x + rng.normal(size=(n, d))

    ksg_ref_s, ksg_ref = best_of(lambda: ksg_mutual_information_reference(x, y, k=k), repeats)
    ksg_fast_s, ksg_fast = best_of(lambda: ksg_mutual_information(x, y, k=k), repeats)
    kl_ref_s, kl_ref = best_of(lambda: kl_entropy_reference(x, k=k), repeats)
    kl_fast_s, kl_fast = best_of(lambda: kl_entropy(x, k=k), repeats)

    return {
        "n": n,
        "d": d,
        "k": k,
        "kernel_backend": _fastknn.available(),
        "ksg": {
            "reference_s": ksg_ref_s,
            "vectorized_s": ksg_fast_s,
            "speedup": ksg_ref_s / ksg_fast_s,
            "reference_bits": ksg_ref,
            "vectorized_bits": ksg_fast,
            "abs_diff": abs(ksg_ref - ksg_fast),
        },
        "kl_entropy": {
            "reference_s": kl_ref_s,
            "vectorized_s": kl_fast_s,
            "speedup": kl_ref_s / kl_fast_s,
            "reference_bits": kl_ref,
            "vectorized_bits": kl_fast,
            "abs_diff": abs(kl_ref - kl_fast),
        },
    }


def bench_collect(
    config: Config, n_members: int, iterations: int, repeats: int
) -> dict:
    """Sequential member-at-a-time collect vs the batched training loop."""
    from repro.models import get_pretrained

    bundle = get_pretrained("lenet", config)

    def build_pipeline() -> ShredderPipeline:
        return ShredderPipeline(
            bundle, lambda_coeff=1e-3, init_scale=1.0, config=config
        )

    # Warm the activation cache (and the allocator) so both sides time
    # pure training.
    build_pipeline().collect(n_members, min(iterations, 20), batched=True)

    seq_s, sequential = best_of(
        lambda: build_pipeline().collect(n_members, iterations, batched=False),
        repeats,
    )
    bat_s, batched = best_of(
        lambda: build_pipeline().collect(n_members, iterations, batched=True),
        repeats,
    )
    max_diff = max(
        float(np.abs(s.tensor - b.tensor).max())
        for s, b in zip(sequential.samples, batched.samples)
    )
    return {
        "model": "lenet",
        "scale": config.scale.name,
        "n_members": n_members,
        "iterations": iterations,
        "sequential_s": seq_s,
        "batched_s": bat_s,
        "speedup": seq_s / bat_s,
        "max_member_noise_diff": max_diff,
    }


def bench_backbone_backward(smoke: bool, repeats: int) -> dict:
    """Conv2d weight-gradient contraction: whole-batch einsum (the
    pre-tiling reference) vs the blocked ``_conv2d_grad_w`` path, plus a
    full forward+backward step through the lenet backbone."""
    from repro.nn import Tensor
    from repro.nn import functional as F
    from repro.nn.functional import _conv2d_grad_w
    from repro.nn.im2col import extract_windows

    rng = np.random.default_rng(0)
    # (n, c_in, h, w, c_out, k, stride, pad) — backbone-representative.
    shapes = [
        ("cifar_block", 16 if smoke else 64, 16, 32, 32, 32, 3, 1, 1),
        ("wide_batch_conv0", 64 if smoke else 256, 1, 28, 28, 3, 5, 1, 2),
    ]
    cases = {}
    for name, n, c_in, h, w, c_out, k, s, p in shapes:
        x = rng.normal(size=(n, c_in, h, w)).astype(np.float32)
        oh = (h + 2 * p - k) // s + 1
        ow = (w + 2 * p - k) // s + 1
        grad = rng.normal(size=(n, c_out, oh, ow)).astype(np.float32)
        grad3 = grad.reshape(n, c_out, oh * ow)

        def einsum_ref():
            windows = extract_windows(x, (k, k), (s, s), (p, p))
            return np.einsum("nopq,ncijpq->ocij", grad, windows, optimize=True)

        def blocked():
            return _conv2d_grad_w(x, grad3, (k, k), (s, s), (p, p))

        ref_s, ref_out = best_of(einsum_ref, repeats)
        blk_s, blk_out = best_of(blocked, repeats)
        cases[name] = {
            "shape": [n, c_in, h, w, c_out, k],
            "einsum_s": ref_s,
            "blocked_s": blk_s,
            "speedup": ref_s / blk_s,
            "max_abs_diff": float(
                np.abs(ref_out - blk_out.reshape(ref_out.shape)).max()
            ),
        }

    # Full backward through a conv stack for context (tape + all grads).
    n = 16 if smoke else 64
    x = Tensor(rng.normal(size=(n, 1, 28, 28)).astype(np.float32))
    w1 = Tensor(
        rng.normal(size=(8, 1, 5, 5)).astype(np.float32), requires_grad=True
    )
    w2 = Tensor(
        rng.normal(size=(16, 8, 5, 5)).astype(np.float32), requires_grad=True
    )

    def step():
        out = F.conv2d(F.conv2d(x, w1, padding=2), w2)
        loss = (out * out).mean()
        w1.zero_grad()
        w2.zero_grad()
        loss.backward()
        return loss

    step_s, _ = best_of(step, repeats)
    return {
        "grad_w": cases,
        "conv_stack_step": {"n": n, "seconds": step_s},
        "gradw_tile_elements": F.GRADW_TILE_ELEMENTS,
    }


def bench_activation_cache(config: Config) -> dict:
    """Pipeline construction with a cold vs warm activation cache."""
    from repro.models import get_pretrained

    bundle = get_pretrained("lenet", config)
    clear_activation_cache()
    cold_s, _ = best_of(
        lambda: ShredderPipeline(bundle, config=config), 1
    )
    warm_s, _ = best_of(
        lambda: ShredderPipeline(bundle, config=config), 1
    )
    stats = get_activation_cache().stats.as_dict()
    return {
        "cold_construct_s": cold_s,
        "warm_construct_s": warm_s,
        "speedup": cold_s / warm_s,
        "cache_stats": stats,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_hotpaths.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workloads; checks wiring, numbers are not meaningful",
    )
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args()

    config = Config(scale=get_scale())
    if args.smoke:
        estimator_shape = (400, 4, 3)
        n_members, iterations = 2, 20
    else:
        estimator_shape = (2000, 8, 3)  # the acceptance workload
        n_members, iterations = 4, config.scale.noise_iterations

    print(f"estimators: N={estimator_shape[0]} d={estimator_shape[1]} ...")
    estimators = bench_estimators(*estimator_shape, repeats=args.repeats)
    print(
        f"  ksg: {estimators['ksg']['reference_s']*1e3:.1f}ms -> "
        f"{estimators['ksg']['vectorized_s']*1e3:.1f}ms "
        f"({estimators['ksg']['speedup']:.1f}x, |diff|={estimators['ksg']['abs_diff']:.1e})"
    )
    print(
        f"  kl:  {estimators['kl_entropy']['reference_s']*1e3:.1f}ms -> "
        f"{estimators['kl_entropy']['vectorized_s']*1e3:.1f}ms "
        f"({estimators['kl_entropy']['speedup']:.1f}x)"
    )

    print(f"collect: lenet @ {config.scale.name}, M={n_members}, iters={iterations} ...")
    collect = bench_collect(config, n_members, iterations, repeats=args.repeats)
    print(
        f"  {collect['sequential_s']:.2f}s -> {collect['batched_s']:.2f}s "
        f"({collect['speedup']:.2f}x, max member diff {collect['max_member_noise_diff']:.1e})"
    )

    print("backbone backward (conv2d grad_w) ...")
    backward = bench_backbone_backward(args.smoke, repeats=args.repeats)
    for name, case in backward["grad_w"].items():
        print(
            f"  {name}: {case['einsum_s']*1e3:.1f}ms einsum -> "
            f"{case['blocked_s']*1e3:.1f}ms blocked "
            f"({case['speedup']:.2f}x, |diff|={case['max_abs_diff']:.1e})"
        )

    print("activation cache ...")
    cache = bench_activation_cache(config)
    print(
        f"  construct: {cache['cold_construct_s']*1e3:.0f}ms cold -> "
        f"{cache['warm_construct_s']*1e3:.0f}ms warm ({cache['speedup']:.0f}x)"
    )

    # Merge into the existing report so sections owned by other benchmarks
    # (e.g. bench_serving.py's "serving") survive a hot-path rerun.
    report: dict = {}
    if args.output.exists():
        try:
            report = json.loads(args.output.read_text())
        except json.JSONDecodeError:
            report = {}
    report.setdefault("meta", {})
    report["meta"].update(
        {
            "smoke": args.smoke,
            "scale": config.scale.name,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "scipy": scipy.__version__,
            "machine": platform.machine(),
            "fastknn_kernel": _fastknn.available(),
        }
    )
    report["estimators"] = estimators
    report["collect"] = collect
    report["backbone_backward"] = backward
    report["activation_cache"] = cache
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if not args.smoke:
        ok = estimators["ksg"]["speedup"] >= 10.0 and collect["speedup"] >= 2.5
        print(
            "targets: ksg >= 10x "
            f"({'PASS' if estimators['ksg']['speedup'] >= 10 else 'FAIL'}), "
            "collect >= 2.5x "
            f"({'PASS' if collect['speedup'] >= 2.5 else 'FAIL'})"
        )
        return 0 if ok else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
