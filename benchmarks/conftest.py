"""Benchmark fixtures.

Benchmarks default to the ``small`` experiment scale (override with
``REPRO_SCALE``) and share the persistent ``.repro_cache`` zoo cache, so
backbone pre-training is a one-time cost across benchmark invocations.
Result tables are also written under ``results/`` (override with
``REPRO_RESULTS_DIR``).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

os.environ.setdefault("REPRO_SCALE", "small")


@pytest.fixture(scope="session")
def config():
    from repro.config import Config, get_scale

    return Config(scale=get_scale())


@pytest.fixture(scope="session")
def results_dir() -> Path:
    path = Path(os.environ.get("REPRO_RESULTS_DIR", "results"))
    path.mkdir(parents=True, exist_ok=True)
    return path


def run_once(benchmark, fn):
    """Run a whole-experiment benchmark exactly once (no calibration)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
