"""Ablation E7 — Laplace initialisation scenarios (paper §2.4).

The paper describes three regimes, all reproduced here on LeNet:

1. init at the desired privacy, λ tuned: privacy holds, accuracy recovers;
2. init far above the desired privacy, λ ≈ 0: accuracy recovers while
   privacy decays but stays high;
3. init below the desired privacy, λ > 0: privacy climbs during training.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.eval import build_pipeline, format_table, load_benchmark, write_csv


def test_initialisation_scenarios(benchmark, config, results_dir):
    def run():
        bundle, bench = load_benchmark("lenet", config)
        scenarios = {}
        # Scenario 1: start at target, hold it.
        scenarios["hold"] = build_pipeline(
            bundle, bench, config, target_in_vivo=0.5, init_in_vivo=0.5,
            lambda_coeff=1e-2,
        ).train_noise()
        # Scenario 2: huge init, lambda ~ 0, regain accuracy.
        scenarios["regain"] = build_pipeline(
            bundle, bench, config, target_in_vivo=2.0, init_in_vivo=2.0,
            lambda_coeff=0.0,
        ).train_noise()
        # Scenario 3: low init, lambda grows privacy toward target.
        scenarios["grow"] = build_pipeline(
            bundle, bench, config, target_in_vivo=0.6, init_in_vivo=0.15,
            lambda_coeff=1e-2,
        ).train_noise()
        return scenarios

    scenarios = run_once(benchmark, run)
    rows = [
        (
            name,
            result.history.in_vivo_privacies[0],
            result.final_in_vivo_privacy,
            result.history.accuracies[0],
            result.final_accuracy,
        )
        for name, result in scenarios.items()
    ]
    print()
    print(
        format_table(
            ["scenario", "in vivo init", "in vivo final", "acc init", "acc final"],
            [[r[0]] + [f"{v:.3f}" for v in r[1:]] for r in rows],
            title="Ablation: Laplace initialisation scenarios (LeNet)",
        )
    )
    write_csv(
        results_dir / "ablation_init.csv",
        ["scenario", "initial_in_vivo", "final_in_vivo", "initial_accuracy", "final_accuracy"],
        rows,
    )
    hold, regain, grow = scenarios["hold"], scenarios["regain"], scenarios["grow"]
    # Scenario 1: privacy roughly held (within 50% of start).
    assert 0.5 * hold.history.in_vivo_privacies[0] <= hold.final_in_vivo_privacy
    # Scenario 2: accuracy improves; privacy decays but remains substantial.
    assert regain.final_accuracy > regain.history.accuracies[0]
    assert regain.final_in_vivo_privacy > 0.25
    # Scenario 3: privacy grows from its low start.
    assert grow.final_in_vivo_privacy > grow.history.in_vivo_privacies[0] * 1.5
