"""Ablation E9 — SNR as a proxy for mutual information (paper §2.3).

The paper trains against 1/SNR because MI is too expensive per step,
citing the Gaussian-channel relationship I = 0.5·log2(1 + SNR).  This
ablation checks the proxy twice:

1. on a synthetic Gaussian channel, the KSG estimate tracks the closed
   form across SNR levels;
2. on real LeNet activations, measured ex-vivo privacy (1/MI) increases
   monotonically with in-vivo privacy (1/SNR) — the property that makes
   the training-time proxy trustworthy.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.eval import format_table, load_benchmark, run_layerwise, write_csv
from repro.privacy import awgn_capacity_bits, ksg_mutual_information

SNRS = (0.25, 1.0, 4.0, 16.0)


def test_gaussian_channel_proxy(benchmark, results_dir):
    def run():
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1500, 1))
        rows = []
        for snr in SNRS:
            noise = rng.normal(0, np.sqrt(1.0 / snr), size=x.shape)
            estimated = ksg_mutual_information(x, x + noise, k=4)
            rows.append((snr, estimated, awgn_capacity_bits(snr)))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["SNR", "KSG MI (bits)", "closed form (bits)"],
            [[f"{r[0]:g}", f"{r[1]:.3f}", f"{r[2]:.3f}"] for r in rows],
            title="Ablation: SNR vs MI on a Gaussian channel",
        )
    )
    write_csv(
        results_dir / "ablation_snr_gaussian.csv",
        ["snr", "ksg_mi_bits", "closed_form_bits"],
        rows,
    )
    for snr, estimated, closed in rows:
        assert abs(estimated - closed) < 0.25, (snr, estimated, closed)
    estimates = [r[1] for r in rows]
    assert estimates == sorted(estimates)


def test_in_vivo_tracks_ex_vivo_on_lenet(benchmark, config, results_dir):
    def run():
        return run_layerwise(
            "lenet",
            config,
            cuts=("conv2",),
            levels=(0.05, 0.2, 0.8, 3.0),
            trained=False,
        )

    result = run_once(benchmark, run)
    series = result.series("conv2")
    print()
    print(
        format_table(
            ["in vivo (1/SNR)", "ex vivo (1/MI)"],
            [[f"{p.in_vivo:.3f}", f"{p.ex_vivo:.4f}"] for p in series],
            title="Ablation: in-vivo vs ex-vivo privacy (LeNet conv2)",
        )
    )
    write_csv(
        results_dir / "ablation_snr_lenet.csv",
        ["in_vivo", "ex_vivo", "mi_bits"],
        [[p.in_vivo, p.ex_vivo, p.mi_bits] for p in series],
    )
    # The proxy property: ex-vivo privacy rises with in-vivo privacy over
    # the swept decade (endpoints strictly ordered).
    assert series[-1].ex_vivo > series[0].ex_vivo
