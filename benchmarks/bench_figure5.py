"""Benchmark E4 — regenerate **Figure 5** (in-vivo vs ex-vivo privacy).

SVHN conv{0,2,4,6} and LeNet conv{0,1,2}: inject matched-in-vivo noise at
each cut and measure ex-vivo privacy (1/MI).  Paper shape: deeper layers
start from lower MI (a privacy "head start"), and ex-vivo privacy grows
with in-vivo privacy at every layer.

Noise is matched-variance Laplace by default (identical in-vivo level to
the paper's trained points at a fraction of the compute); set
``REPRO_FIG5_TRAINED=1`` to train noise per (cut, level) as in the paper.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import run_once
from repro.eval import PAPER_CUTS, run_layerwise, write_csv

LEVELS = (0.2, 0.6, 1.0)


@pytest.mark.parametrize("network", ["svhn", "lenet"])
def test_figure5_layerwise_privacy(benchmark, config, results_dir, network):
    trained = os.environ.get("REPRO_FIG5_TRAINED", "0") == "1"

    def run():
        return run_layerwise(
            network, config, levels=LEVELS, trained=trained, verbose=True
        )

    result = run_once(benchmark, run)
    print()
    print(result.format())
    write_csv(
        results_dir / f"figure5_{network}.csv",
        ["cut", "in_vivo", "ex_vivo", "mi_bits", "baseline_mi_bits"],
        [
            [p.cut, p.in_vivo, p.ex_vivo, p.mi_bits, result.baseline_mi[p.cut]]
            for p in result.points
        ],
    )
    cuts = PAPER_CUTS[network]
    # Deeper layers leak less to begin with (paper §3.3).
    baselines = [result.baseline_mi[cut] for cut in cuts]
    assert baselines[0] > baselines[-1]
    # At every cut, more in-vivo noise gives at least as much ex-vivo privacy
    # across the swept range (allowing small-sample MI estimator noise).
    for cut in cuts:
        series = result.series(cut)
        assert series[-1].ex_vivo >= series[0].ex_vivo * 0.8
