"""Benchmark E1 — regenerate **Table 1**.

For each network: original vs shredded mutual information, MI loss %,
accuracy loss %, learnable-parameter ratio, and noise-training epochs,
plus the GMean row.  Paper reference: 70.2% mean MI loss at 1.46% mean
accuracy loss.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.eval import (
    PAPER_GMEAN_ACCURACY_LOSS,
    PAPER_GMEAN_MI_LOSS,
    benchmark_names,
    get_benchmark,
    run_table1,
    write_csv,
)


@pytest.mark.parametrize("network", benchmark_names())
def test_table1_row(benchmark, config, results_dir, network):
    """One Table 1 column: train the noise collection and measure MI/accuracy."""

    def run():
        return run_table1(config, benchmarks=[network], verbose=True)

    result = run_once(benchmark, run)
    row = result.rows[0]
    paper = get_benchmark(network).paper
    print()
    print(result.format())
    print(
        f"paper reference ({network}): MI loss {paper.mi_loss_percent:.2f}% "
        f"(measured {row.report.mi_loss_percent:.2f}%), accuracy loss "
        f"{paper.accuracy_loss_percent:.2f}% "
        f"(measured {row.report.accuracy_loss_percent:.2f}%)"
    )
    write_csv(
        results_dir / f"table1_{network}.csv",
        [
            "benchmark",
            "original_mi_bits",
            "shredded_mi_bits",
            "mi_loss_percent",
            "accuracy_loss_percent",
            "params_ratio_percent",
            "epochs",
            "paper_mi_loss_percent",
            "paper_accuracy_loss_percent",
        ],
        [
            [
                network,
                row.report.original_mi_bits,
                row.report.shredded_mi_bits,
                row.report.mi_loss_percent,
                row.report.accuracy_loss_percent,
                row.report.params_ratio_percent,
                row.report.epochs,
                paper.mi_loss_percent,
                paper.accuracy_loss_percent,
            ]
        ],
    )
    # Shape assertions: noise must strip a substantial share of the MI while
    # accuracy stays within a usable band (paper: 70.2% / 1.46%).
    assert row.report.mi_loss_percent > 25.0
    assert row.report.accuracy_loss_percent < 15.0


def test_table1_gmean(benchmark, config, results_dir):
    """The full four-network table with its GMean summary row."""

    def run():
        return run_table1(config, verbose=True)

    result = run_once(benchmark, run)
    print()
    print(result.format())
    print(
        f"paper GMean: MI loss {PAPER_GMEAN_MI_LOSS}% at "
        f"{PAPER_GMEAN_ACCURACY_LOSS}% accuracy loss; measured "
        f"{result.gmean_mi_loss():.2f}% at {result.mean_accuracy_loss():.2f}%"
    )
    write_csv(
        results_dir / "table1_full.csv",
        ["benchmark", "mi_loss_percent", "accuracy_loss_percent"],
        [
            [row.benchmark, row.report.mi_loss_percent, row.report.accuracy_loss_percent]
            for row in result.rows
        ]
        + [["gmean", result.gmean_mi_loss(), result.mean_accuracy_loss()]],
    )
    assert result.gmean_mi_loss() > 25.0
    assert result.mean_accuracy_loss() < 15.0
