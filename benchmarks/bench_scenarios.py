"""Extension benchmark E11 — the §2.4 training scenarios on LeNet.

The paper narrates three qualitatively different noise-training regimes
(hold / overshoot / rise) as prose; this benchmark materialises all three
from the same backbone and asserts their trajectory shapes.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.eval import run_scenarios, write_csv


def test_training_scenarios(benchmark, config, results_dir):
    def run():
        return run_scenarios("lenet", config, verbose=True)

    suite = run_once(benchmark, run)
    print()
    print(suite.format())
    write_csv(
        results_dir / "scenarios_lenet.csv",
        [
            "scenario",
            "initial_privacy",
            "final_privacy",
            "privacy_drift",
            "final_accuracy",
            "accuracy_gain",
        ],
        [
            [
                o.scenario,
                o.initial_privacy,
                o.final_privacy,
                o.privacy_drift,
                o.final_accuracy,
                o.accuracy_gain,
            ]
            for o in suite.outcomes
        ],
    )
    hold = suite.by_name("hold")
    overshoot = suite.by_name("overshoot")
    rise = suite.by_name("rise")
    # Scenario 1: privacy held near the target (modest drift either way).
    assert abs(hold.privacy_drift) < 0.6 * suite.target_in_vivo
    # Scenario 2: starts far above target, drifts down, stays private.
    assert overshoot.initial_privacy > 2.0 * suite.target_in_vivo
    assert overshoot.privacy_drift < 0
    assert overshoot.final_privacy > 0.5 * suite.target_in_vivo
    # Scenario 3: starts below target and climbs (the Figure 4 dynamic).
    assert rise.initial_privacy < 0.5 * suite.target_in_vivo
    assert rise.privacy_drift > 0
    # Hold and rise end near clean accuracy; overshoot pays for its much
    # higher privacy level with a slower recovery (paper: "train until
    # accuracy is regained" — the budget here is fixed, not to-convergence).
    assert hold.final_accuracy > 0.85
    assert rise.final_accuracy > 0.85
    assert overshoot.final_accuracy > 0.70
