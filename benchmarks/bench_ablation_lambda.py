"""Ablation E6 — the λ knob and its decay (paper §2.4, §3.2).

Sweeps λ at a fixed initialisation on LeNet: larger λ pushes in-vivo
privacy higher but slows (or reverses) accuracy recovery; λ = 0 is the
privacy-agnostic baseline.  Also verifies that decay-on-target stabilises
privacy where a constant λ would keep inflating it.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core import ConstantLambda
from repro.eval import build_pipeline, format_table, load_benchmark, write_csv

LAMBDAS = (0.0, 1e-4, 1e-3, 1e-2, 5e-2)


def test_lambda_sweep(benchmark, config, results_dir):
    def run():
        bundle, bench = load_benchmark("lenet", config)
        rows = []
        for lam in LAMBDAS:
            pipeline = build_pipeline(
                bundle, bench, config, lambda_coeff=lam, init_in_vivo=0.2,
                target_in_vivo=10.0,  # unreachable: λ stays constant
            )
            result = pipeline.train_noise()
            rows.append(
                (
                    lam,
                    result.history.in_vivo_privacies[0],
                    result.final_in_vivo_privacy,
                    result.final_accuracy,
                )
            )
        return rows

    rows = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["lambda", "in vivo (init)", "in vivo (final)", "accuracy"],
            [[f"{r[0]:g}", f"{r[1]:.3f}", f"{r[2]:.3f}", f"{r[3]:.3f}"] for r in rows],
            title="Ablation: lambda sweep on LeNet",
        )
    )
    write_csv(
        results_dir / "ablation_lambda.csv",
        ["lambda", "initial_in_vivo", "final_in_vivo", "final_accuracy"],
        rows,
    )
    by_lambda = {row[0]: row for row in rows}
    # λ=0 loses privacy; large λ gains privacy (Figure 4's two regimes).
    assert by_lambda[0.0][2] <= by_lambda[0.0][1] + 0.02
    assert by_lambda[5e-2][2] > by_lambda[5e-2][1]
    # Final privacy is (weakly) monotone in λ.
    finals = [row[2] for row in rows]
    assert finals[-1] > finals[0]


def test_decay_stabilises_privacy(benchmark, config, results_dir):
    def run():
        bundle, bench = load_benchmark("lenet", config)
        with_decay = build_pipeline(
            bundle, bench, config, lambda_coeff=5e-2, init_in_vivo=0.2,
            target_in_vivo=0.5,
        ).train_noise()
        no_decay_pipe = build_pipeline(
            bundle, bench, config, lambda_coeff=5e-2, init_in_vivo=0.2,
            target_in_vivo=0.5,
        )
        no_decay_pipe.trainer.schedule = ConstantLambda(5e-2)
        without_decay = no_decay_pipe.train_noise()
        return with_decay, without_decay

    with_decay, without_decay = run_once(benchmark, run)
    print()
    print(
        f"decay-on-target: final in vivo "
        f"{with_decay.final_in_vivo_privacy:.3f}, accuracy "
        f"{with_decay.final_accuracy:.3f}"
    )
    print(
        f"constant lambda: final in vivo "
        f"{without_decay.final_in_vivo_privacy:.3f}, accuracy "
        f"{without_decay.final_accuracy:.3f}"
    )
    write_csv(
        results_dir / "ablation_lambda_decay.csv",
        ["schedule", "final_in_vivo", "final_accuracy"],
        [
            ["decay_on_target", with_decay.final_in_vivo_privacy, with_decay.final_accuracy],
            ["constant", without_decay.final_in_vivo_privacy, without_decay.final_accuracy],
        ],
    )
    # Without decay, privacy keeps inflating past the target (paper §3.2:
    # "If it is not decayed, the privacy will keep increasing and the
    # accuracy would increase more slowly").
    assert without_decay.final_in_vivo_privacy > with_decay.final_in_vivo_privacy
    assert with_decay.final_accuracy >= without_decay.final_accuracy - 0.02
