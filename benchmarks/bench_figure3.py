"""Benchmark E2 — regenerate **Figure 3** (accuracy-privacy trade-off).

Per network, sweep the noise level and report (accuracy loss, information
loss) operating points plus the Zero-Leakage line.  The paper's shape: a
steep information-loss rise at small accuracy loss (stripping excess
information), flattening once only task-relevant information remains.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.eval import benchmark_names, run_tradeoff, write_csv

LEVELS = (0.1, 0.25, 0.5, 1.0, 2.0)


@pytest.mark.parametrize("network", benchmark_names())
def test_figure3_tradeoff(benchmark, config, results_dir, network):
    def run():
        return run_tradeoff(network, config, levels=LEVELS, verbose=True)

    curve = run_once(benchmark, run)
    print()
    print(curve.format())
    write_csv(
        results_dir / f"figure3_{network}.csv",
        ["target_in_vivo", "accuracy_loss_percent", "information_loss_bits", "zero_leakage_bits"],
        [
            [p.target_in_vivo, p.accuracy_loss_percent, p.information_loss_bits, curve.zero_leakage_bits]
            for p in curve.points
        ],
    )
    # Shape assertions mirroring the figure: more noise loses more
    # information, and the loss approaches (but cannot exceed) zero leakage.
    losses = [p.information_loss_bits for p in sorted(curve.points, key=lambda p: p.target_in_vivo)]
    assert losses[-1] > losses[0]
    assert max(losses) <= curve.zero_leakage_bits + 1e-6
    assert curve.zero_leakage_bits > 0
