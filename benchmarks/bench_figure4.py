"""Benchmark E3 — regenerate **Figure 4** (training dynamics).

Noise training on AlexNet cut at its last convolution, Shredder's loss vs
regular cross entropy from the same initialisation.  Paper shape: Shredder's
in-vivo privacy rises then stabilises (λ decay at the target); regular
training loses privacy monotonically while regaining accuracy faster.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.eval import run_training_curves, write_csv


@pytest.mark.parametrize("network", ["alexnet", "lenet"])
def test_figure4_training_dynamics(benchmark, config, results_dir, network):
    def run():
        return run_training_curves(network, config, verbose=True)

    curves = run_once(benchmark, run)
    shredder = curves.shredder.history
    regular = curves.regular.history
    print()
    print(curves.format())
    write_csv(
        results_dir / f"figure4_{network}.csv",
        ["iteration", "shredder_in_vivo", "regular_in_vivo"],
        list(
            zip(
                shredder.iterations,
                shredder.in_vivo_privacies,
                regular.in_vivo_privacies,
            )
        ),
    )
    write_csv(
        results_dir / f"figure4_{network}_accuracy.csv",
        ["iteration", "shredder_accuracy", "regular_accuracy"],
        list(
            zip(
                shredder.accuracy_iterations,
                shredder.accuracies,
                regular.accuracies,
            )
        ),
    )
    # Figure 4a: privacy rises under Shredder and separates clearly from
    # privacy-agnostic training.
    assert shredder.in_vivo_privacies[-1] > shredder.in_vivo_privacies[0]
    assert shredder.in_vivo_privacies[-1] > 1.2 * regular.in_vivo_privacies[-1]
    if network == "lenet":
        # On LeNet the paper's strict shape holds: CE-only training
        # shrinks whatever noise hurts accuracy, so privacy decays.
        assert regular.in_vivo_privacies[-1] < regular.in_vivo_privacies[0]
    else:
        # On the synthetic AlexNet substrate the CE-optimal additive bias
        # at the cut is not ~0 (the backbone is good but not saturated), so
        # even λ = 0 training can grow noise variance while accuracy
        # recovers; the paper's *separation* between the curves is the
        # invariant we hold it to (see EXPERIMENTS.md, Figure 4 notes).
        assert (
            regular.in_vivo_privacies[-1] - regular.in_vivo_privacies[0]
            < shredder.in_vivo_privacies[-1] - shredder.in_vivo_privacies[0]
        )
    # Figure 4b: both recover accuracy; regular at least as fast.
    assert shredder.accuracies[-1] > shredder.accuracies[0]
    assert regular.accuracies[-1] >= shredder.accuracies[-1] - 0.05
