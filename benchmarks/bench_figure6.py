"""Benchmark E5 — regenerate **Figure 6** (cost vs privacy per cut).

Per candidate cutting point: cumulative edge kMACs × communicated MB (the
§3.4 cost model) against measured ex-vivo privacy, plus the planner's
recommendation.  Paper conclusions to reproduce: SVHN picks conv6 (small
bottleneck output dominates every other cut), LeNet picks conv2.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.eval import run_cutpoints, write_csv

EXPECTED_CHOICE = {"svhn": "conv6", "lenet": "conv2"}


@pytest.mark.parametrize("network", ["svhn", "lenet"])
def test_figure6_cutting_points(benchmark, config, results_dir, network):
    def run():
        return run_cutpoints(network, config, verbose=True)

    analysis = run_once(benchmark, run)
    print()
    print(analysis.format())
    write_csv(
        results_dir / f"figure6_{network}.csv",
        ["cut", "kilomacs", "megabytes", "cost_product", "ex_vivo_privacy", "recommended"],
        [
            [
                c.cut,
                c.cost.kilomacs,
                c.cost.megabytes,
                c.cost.product,
                c.ex_vivo_privacy,
                int(c.cut == analysis.recommended.cut),
            ]
            for c in analysis.candidates
        ],
    )
    # The planner must reproduce the paper's chosen cutting point.
    assert analysis.recommended.cut == EXPECTED_CHOICE[network]
    # Ex-vivo privacy is (weakly) higher at the deepest cut than the
    # shallowest — the "deeper is better" rule of §3.4.
    by_cut = {c.cut: c.ex_vivo_privacy for c in analysis.candidates}
    cuts = sorted(by_cut, key=lambda name: int(name.replace("conv", "")))
    assert by_cut[cuts[-1]] > by_cut[cuts[0]]
