"""Extension benchmark E12 — device-grounded cutting-point costs.

Figure 6 ranks cuts by the abstract Computation × Communication product;
this extension grounds the same decision in device terms (energy and
latency per inference) for three device classes, showing that the best
cut shifts with the compute/radio balance of the hardware.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.edge import PROFILES, cheapest_cut, energy_table
from repro.eval import format_table, write_csv
from repro.models import build_model, default_width


def test_device_energy_tables(benchmark, config, results_dir):
    def run():
        model = build_model(
            "svhn", np.random.default_rng(config.seed), default_width(config.scale)
        )
        tables = {
            name: energy_table(model, profile) for name, profile in PROFILES.items()
        }
        best = {
            name: cheapest_cut(model, profile, metric="energy").cut
            for name, profile in PROFILES.items()
        }
        return tables, best

    tables, best = run_once(benchmark, run)
    rows = []
    for device, estimates in tables.items():
        for e in estimates:
            rows.append(
                [
                    device,
                    e.cut,
                    e.compute_energy_mj,
                    e.radio_energy_mj,
                    e.total_energy_mj,
                    e.total_latency_ms,
                ]
            )
    print()
    print(
        format_table(
            ["device", "cut", "compute mJ", "radio mJ", "total mJ", "latency ms"],
            [[r[0], r[1]] + [f"{v:.4f}" for v in r[2:]] for r in rows],
            title="Per-device cutting point costs (SVHN)",
        )
    )
    print(f"cheapest cut per device: {best}")
    write_csv(
        results_dir / "energy_svhn.csv",
        ["device", "cut", "compute_mj", "radio_mj", "total_mj", "latency_ms"],
        rows,
    )
    # Radio-heavy devices push toward deep cuts with small outputs; SVHN's
    # conv6 output is tiny, so the microcontroller must prefer a deep cut.
    assert best["microcontroller"] in ("conv5", "conv6")
    # Every device's compute energy grows monotonically with cut depth.
    for estimates in tables.values():
        compute = [e.compute_energy_mj for e in estimates]
        assert compute == sorted(compute)
    # The embedded GPU pays relatively less for compute than the MCU at
    # the deepest cut.
    mcu = tables["microcontroller"][-1]
    gpu = tables["embedded_gpu"][-1]
    assert gpu.compute_energy_mj < mcu.compute_energy_mj