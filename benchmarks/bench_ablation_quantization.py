"""Ablation E9 — wire precision of the communicated activation.

The paper's cost model (§3.4) charges 4 bytes per activation element.  A
deployment would quantise the noisy activation before transmission; this
ablation sweeps the code width on LeNet and reports accuracy, leakage and
bytes per inference.  Expected shape: 8-bit costs essentially nothing in
accuracy (the activation already tolerates Shredder's much larger noise),
so communication drops 4x for free; only very narrow codes (<= 4 bits)
begin to bite.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.edge import calibrate, dequantize, quantize, wire_bytes
from repro.eval import build_pipeline, format_table, load_benchmark, write_csv
from repro.privacy import estimate_leakage

BIT_WIDTHS = (4, 6, 8, 12)


def test_quantized_communication(benchmark, config, results_dir):
    def run():
        bundle, bench = load_benchmark("lenet", config)
        pipeline = build_pipeline(bundle, bench, config)
        collection = pipeline.collect(bench.n_members)
        rng = np.random.default_rng(config.child_seed("ablation-quant"))
        activations = pipeline.trainer.eval_activations
        labels = pipeline.trainer.eval_labels
        images = bundle.test_set.images
        scale = config.scale
        noisy = activations + collection.sample_batch(rng, len(activations))
        per_sample_shape = noisy.shape[1:]

        def leakage(batch):
            return estimate_leakage(
                images,
                batch,
                n_components=scale.mi_components,
                max_samples=scale.mi_samples,
                rng=np.random.default_rng(0),
            ).mi_bits

        float_row = (
            "float32",
            pipeline.split.accuracy_from_activations(noisy, labels),
            leakage(noisy),
            int(np.prod(per_sample_shape)) * 4,
        )
        rows = [float_row]
        for bits in BIT_WIDTHS:
            params = calibrate(noisy, bits=bits, percentile=99.9)
            decoded = dequantize(quantize(noisy, params), params)
            rows.append(
                (
                    f"int{bits}",
                    pipeline.split.accuracy_from_activations(decoded, labels),
                    leakage(decoded),
                    wire_bytes(per_sample_shape, params),
                )
            )
        return rows

    rows = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["wire format", "accuracy", "MI (bits)", "bytes/inference"],
            [[r[0], f"{r[1]:.3f}", f"{r[2]:.3f}", str(r[3])] for r in rows],
            title="Ablation: wire precision of the noisy activation (LeNet)",
        )
    )
    write_csv(
        results_dir / "ablation_quantization.csv",
        ["wire_format", "accuracy", "mi_bits", "bytes_per_inference"],
        rows,
    )
    by_name = {r[0]: r for r in rows}
    # 8-bit transmission is ~free: accuracy within 2 points of float32 at
    # one quarter of the bytes.
    assert by_name["int8"][1] > by_name["float32"][1] - 0.02
    assert by_name["int8"][3] * 4 == by_name["float32"][3]
    # Leakage cannot grow from deterministic per-element coarsening
    # (allow estimator jitter).
    assert by_name["int8"][2] < by_name["float32"][2] * 1.25
    # Narrower codes shrink the wire monotonically.
    sizes = [r[3] for r in rows[1:]]
    assert sizes == sorted(sizes)
