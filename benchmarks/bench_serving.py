#!/usr/bin/env python3
"""Serving-runtime load generator: sequential vs batched vs multi-worker.

Drives a stream of single-image requests through (a) the retained
sequential reference path (:class:`repro.edge.InferenceSession`, one wire
round trip per request) and (b) the batched serving engine
(:class:`repro.serve.BatchedInferenceSession`) at one or more batching
windows, plus a quantised-wire variant.  Verifies the parity contract
(bit-identical logits between sequential and unquantised batched serving
on the same stream) and records requests/sec into the ``serving`` section
of ``BENCH_hotpaths.json``.

Three further sections cover the executor kernels and the deadline-aware
multi-worker engine:

* ``kernel_backend`` — identical serving work at the acceptance window on
  the compiled native executor vs the pure-numpy executor (the headline
  lever on ``requests_per_second``; native must be >= 2x in a full run);
* ``executor_ir`` — the executor's op-program rewrite pipeline (fused
  relu/pool, int8 ingest with the dequant folded into the first conv's
  epilogue, noise-add epilogue folding) on vs off, on the quantised
  window-32 device+server compute path at the "conv0" cut where every
  rewrite fires.  Rewrites-on must be >= 1.15x rewrites-off in a full
  run (>= 1x under ``--smoke``), the legs must agree to f32 closeness,
  the uplink must stay one uint8 byte per element, and on the native
  backend no batch-sized f32 dequantised copy may be materialised;
* ``executor_int8w`` — the opt-in ``int8_weights`` rewrite
  (``weight_bits=8``): per-output-channel int8 weight codes fed straight
  into the GEMM/conv kernels vs f32 weights, both legs on the same
  quantised window-32 compute path (so the first conv of the quantised
  leg is fully integer: u8 activations x i8 weights).  Quantised must be
  >= 1.2x f32 in a full run (>= 1x under ``--smoke``), argmax label
  agreement vs the f32 leg must be >= 0.99 (the rewrite is
  accuracy-affecting, so the gate is label agreement rather than f32
  closeness), and on the native backend zero f32 dequantised *weight*
  copies may be materialised (the code planes are the weights);
* ``serving_slo`` — a jittered mixed-SLO arrival trace replayed through
  the deadline-aware and fixed-window batching policies in virtual time
  (service model calibrated from the measured batched step), comparing
  SLO attainment at equal work;
* ``serving_multiworker`` — real wall-clock throughput of the
  :class:`repro.serve.ServingEngine` at 1 vs 4 cloud workers over a
  ``realtime`` channel (simulated wire time actually slept), with
  bit-parity against the sequential reference;
* ``serving_multimodel`` — the multi-deployment control plane: aggregate
  req/s of 3 deployments sharing one worker pool
  (:class:`repro.serve.ControlPlane`) vs the same 3 deployments as
  isolated single-worker engines driven concurrently, with per-deployment
  bit-parity and the cross-user mixing index;
* ``serving_chaos`` — the elastic control plane under chaos + overload: a
  protected SLO tenant and an admission-capped bulk tenant share an
  auto-healing pool; mid-run the bulk tenant spikes to ~10x its baseline
  rate while a fault injector kills a worker holding one of its batches.
  The gates: the protected tenant's admitted-request SLO attainment stays
  pinned, the bulk overload is rejected *typed* (429-style, counted) —
  never queued unbounded, silently dropped, or hung — every admitted
  request is delivered exactly once, the killed worker heals back, and
  bit parity holds after the heal and across a post-run hot-swap;
* ``privacy_mixing`` — the shuffling–privacy bridge (PR 8): the same
  mixed-session stream served with the shuffler off and on (bit parity
  against the sequential reference required in both legs, shuffling is
  not allowed to cost more than a bounded throughput fraction), plus the
  empirical leakage evaluator (:func:`repro.privacy.evaluate_shuffle_leakage`)
  replaying the wire composition over the tapped cut activations: the
  positional re-identification attacker must do no better shuffled than
  unshuffled, with a small mixing-trade-off sweep (window x shards x
  isolation x shuffle) recorded for the paper plot;
* ``serving_sharded`` — the process-sharded plane
  (:class:`repro.serve.ShardedServingEngine`): a trace from the open-loop
  load generator (bursty arrivals, a million distinct users, Zipf-heavy
  per-user counts) served by 1/2/4 subprocess shards over real sockets,
  against the 4-thread single-process engine on identical work.  Wire
  waits are real (``realtime`` channel), so the threaded engine tops out
  at its worker count while shards multiply both dispatchers and worker
  pools across processes.  Gates: sharded-4 >= 2x threaded-4 in a full
  run (>= 1x under ``--smoke``) and bit-parity of every shard against
  its own per-shard sequential reference.

Run:
    PYTHONPATH=src python benchmarks/bench_serving.py [--smoke] [--output PATH]

Exit status is non-zero when a gate fails: batched >= 3x sequential at the
acceptance window (full run; simply faster under ``--smoke``), deadline-
aware attainment >= fixed-window attainment, multi-worker >= 1.5x
single-worker throughput at window 8, shared-pool multi-model aggregate
>= 0.9x the isolated-engines aggregate, chaos-leg protected attainment
below its floor (0.95 full, 0.75 smoke) or any other chaos contract
breach, (when a C compiler is present) kernel-on serving throughput
below kernel-off at window 8 (>= 2x required in a full run, with
unanimous label agreement), IR rewrites-on below 1.15x rewrites-off on
the quantised window-32 compute path (or any of that leg's wire /
allocation / closeness assertions), int8 weights below 1.2x f32 on that
same path (or label agreement under 0.99, or any native f32 weight copy
materialised), the sharded plane below 2x the 4-thread
engine at 4 shards (full; >= 1x under ``--smoke``) or out of bit-parity
with its per-shard references, or the privacy-mixing leg breaking parity,
leaking more positionally with the shuffler on than off, or paying more
than the allowed shuffling overhead.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro.config import Config, get_scale
from repro.core import NoiseCollection, SplitInferenceModel
from repro.edge import Channel, InferenceSession
from repro.serve import (
    BatchedInferenceSession,
    ServingEngine,
    ShardedServingEngine,
    ShardSpec,
    generate_trace,
    random_trace,
    route_session,
    simulate_schedule,
    trace_stats,
)


ACCEPTANCE_WINDOW = 8
# Batched-vs-sequential amortisation at the acceptance window.  PR 2 set
# this at 3x against the numpy executor; the native kernels (PR 4) tripled
# the *sequential* path's throughput too, so the relative batching win
# compressed (Amdahl) while absolute throughput more than doubled.  This
# is now a sanity floor (batching must still clearly amortise); the perf
# bar is carried by the kernel_backend gate below, which compares both
# backends back-to-back on identical work and is robust to host noise.
ACCEPTANCE_SPEEDUP = 1.5
MULTIWORKER_SPEEDUP = 1.5
MULTIWORKER_WORKERS = 4
#: Deployments on the shared control plane, and the gate: a shared pool
#: of N workers must deliver >= this fraction of N isolated one-worker
#: engines' aggregate throughput (sharing may cost a little dispatcher
#: serialisation; it must not collapse).
MULTIMODEL_DEPLOYMENTS = 3
MULTIMODEL_RATIO = 0.9
#: Serving throughput the native kernel backend must deliver over the
#: numpy executor at the acceptance window (full run; smoke only requires
#: "faster").
KERNEL_BACKEND_SPEEDUP = 2.0
#: Chaos leg: the protected tenant's latency SLO, and the floor on its
#: admitted-request SLO attainment while the bulk tenant spikes ~10x and
#: a worker dies mid-batch (smoke relaxes the floor — tiny CI hosts).
CHAOS_PROTECTED_SLO = 0.050
CHAOS_ATTAINMENT_FLOOR = 0.95
CHAOS_ATTAINMENT_FLOOR_SMOKE = 0.75
#: Process sharding: 4 shards must deliver >= this multiple of the
#: 4-thread single-process engine on identical trace-driven work (full
#: run; smoke only requires parity-with-no-regression, >= 1x).  The
#: threaded engine overlaps at most ``workers`` wire waits and serialises
#: every dispatcher turn under one GIL; shards multiply both.
SHARDED_SPEEDUP = 2.0
SHARDED_SHARD_COUNTS = (1, 2, 4)
SHARDED_WORKERS = 4
#: Wire latency of the sharded/threaded comparison.  High enough that the
#: workload is wire-bound (the regime sharding targets: many concurrent
#: users, each paying a real round trip) rather than bound by the tiny
#: lenet compute.
SHARDED_CHANNEL_LATENCY_MS = 10.0
#: Privacy-mixing leg: distinct sessions interleaved round-robin on the
#: shuffled stream, and the floor on shuffle-on throughput as a fraction
#: of shuffle-off throughput.  The shuffler is one O(batch) permutation
#: per micro-batch, so anything below this floor is a real regression,
#: not host noise.
PRIVACY_MIXING_SESSIONS = 8
PRIVACY_MIXING_OVERHEAD_FLOOR = 0.5
#: Executor IR rewrites: throughput the default rewrite pipeline (fused
#: relu/pool, int8 ingest with the dequant folded into the GEMM
#: epilogue, noise-add epilogue folding) must deliver over the *same*
#: executors with rewrites disabled, on the quantised window-32
#: device+server compute path at the cut where every rewrite fires
#: (full run; smoke only requires no regression).
EXECUTOR_IR_SPEEDUP = 1.15
EXECUTOR_IR_WINDOW = 32
EXECUTOR_IR_CUT = "conv0"
#: Int8 weights (the opt-in ``int8_weights`` rewrite): throughput the
#: quantised-weight executors (``weight_bits=8``) must deliver over the
#: f32-weight executors on the *same* quantised window-32 compute path
#: (full run; smoke only requires no regression), and the floor on
#: argmax label agreement against the f32 reference leg.  The rewrite is
#: accuracy-affecting by design, so its gate is label agreement — not
#: f32 closeness — per the standing IR contract's quantised-weights
#: carve-out (see ROADMAP.md).
EXECUTOR_INT8W_SPEEDUP = 1.2
EXECUTOR_INT8W_AGREEMENT = 0.99


def build_collection(split: SplitInferenceModel, members: int) -> NoiseCollection:
    """A synthetic noise collection (serving perf is training-agnostic)."""
    rng = np.random.default_rng(0)
    collection = NoiseCollection(split.activation_shape)
    for _ in range(members):
        collection.add(
            rng.laplace(0.0, 0.05, size=split.activation_shape).astype(np.float32),
            accuracy=0.0,
            in_vivo_privacy=0.0,
        )
    return collection


def serve_sequential(make_session, stream) -> tuple[float, list[np.ndarray]]:
    """Wall seconds and per-request logits for the sequential path."""
    session = make_session()
    start = time.perf_counter()
    logits = [session.infer(images) for images in stream]
    return time.perf_counter() - start, logits


def serve_batched(make_session, stream) -> tuple[float, list[np.ndarray], object]:
    """Wall seconds, per-request logits, and the session (for metrics)."""
    session = make_session()
    start = time.perf_counter()
    logits = session.infer_stream(stream)
    return time.perf_counter() - start, logits, session


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_hotpaths.json",
        help="JSON report to merge the 'serving' section into",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload for CI; gate is 'batched beats sequential'",
    )
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument(
        "--windows", type=int, nargs="*", default=None,
        help="batch windows to measure (default: 8 16 32; smoke: 8)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args()

    from repro.models import get_pretrained

    config = Config(scale=get_scale("tiny" if args.smoke else None))
    requests = args.requests or (64 if args.smoke else 512)
    windows = args.windows or ([ACCEPTANCE_WINDOW] if args.smoke else [8, 16, 32])
    repeats = max(1, args.repeats)

    bundle = get_pretrained("lenet", config)
    split = SplitInferenceModel(bundle.model)
    cut = split.cut
    collection = build_collection(split, members=8)
    images = bundle.test_set.images
    stream = [images[i % len(images)][None] for i in range(requests)]
    mean = np.zeros(1, dtype=np.float32)
    std = np.ones(1, dtype=np.float32)

    def sequential_session() -> InferenceSession:
        return InferenceSession(
            bundle.model, cut, mean, std, noise=collection,
            channel=Channel(), rng=np.random.default_rng(7),
        )

    def batched_session(
        window: int, quantization=None, kernel_backend="auto"
    ) -> BatchedInferenceSession:
        return BatchedInferenceSession(
            bundle.model, cut, mean, std, noise=collection,
            channel=Channel(), rng=np.random.default_rng(7),
            batch_window=window, quantization=quantization,
            kernel_backend=kernel_backend,
        )

    # Warm both paths (imports, executor plans, allocator) off the clock.
    serve_sequential(sequential_session, stream[:8])
    serve_batched(lambda: batched_session(windows[0]), stream[:8])

    print(f"workload: {requests} single-image lenet requests @ {config.scale.name}")
    # The workload is deterministic (fresh identically-seeded sessions per
    # run), so logits are captured from the timed repeats themselves.
    seq_s = float("inf")
    for _ in range(repeats):
        elapsed, seq_logits = serve_sequential(sequential_session, stream)
        seq_s = min(seq_s, elapsed)
    seq_rps = requests / seq_s
    print(f"sequential: {seq_s*1e3:8.1f} ms  {seq_rps:8.0f} req/s")

    serving: dict = {
        "model": "lenet",
        "scale": config.scale.name,
        "requests": requests,
        "noise_members": len(collection),
        "sequential": {"seconds": seq_s, "requests_per_second": seq_rps},
        "windows": {},
    }
    gate_ok = True
    calibration_batches = None
    for window in windows:
        bat_s = float("inf")
        for _ in range(repeats):
            elapsed, bat_logits, session = serve_batched(
                lambda: batched_session(window), stream
            )
            bat_s = min(bat_s, elapsed)
        if window == windows[0]:
            calibration_batches = session.metrics.micro_batches
        identical = all(
            np.array_equal(a, b) for a, b in zip(seq_logits, bat_logits)
        )
        speedup = seq_s / bat_s
        metrics = session.metrics.as_dict()
        serving["windows"][str(window)] = {
            "seconds": bat_s,
            "requests_per_second": requests / bat_s,
            "speedup": speedup,
            "bitwise_parity": identical,
            "mean_occupancy": metrics["mean_occupancy"],
            "latency_p50_ms": metrics["latency_p50_ms"],
            "latency_p99_ms": metrics["latency_p99_ms"],
            "uplink_bytes": metrics["uplink_bytes"],
        }
        print(
            f"batched w{window:<3d} {bat_s*1e3:8.1f} ms  {requests/bat_s:8.0f} req/s "
            f"({speedup:.2f}x, parity={'OK' if identical else 'FAIL'})"
        )
        if not identical:
            gate_ok = False

    # Quantised wire at the acceptance window (not part of the parity gate:
    # quantisation is deliberately lossy).
    from repro.edge import calibrate

    calib = split.activations(images[: min(64, len(images))])
    calib = calib + collection.sample_batch(np.random.default_rng(1), len(calib))
    params = calibrate(calib, bits=8)
    quant_window = windows[0]
    quant_s = float("inf")
    for _ in range(repeats):
        elapsed, quant_logits, quant_session = serve_batched(
            lambda: batched_session(quant_window, params), stream
        )
        quant_s = min(quant_s, elapsed)
    label_agreement = float(
        np.mean(
            np.concatenate([l.argmax(axis=1) for l in quant_logits])
            == np.concatenate([l.argmax(axis=1) for l in seq_logits])
        )
    )
    serving["quantized"] = {
        "bits": 8,
        "window": quant_window,
        "seconds": quant_s,
        "requests_per_second": requests / quant_s,
        "label_agreement_vs_sequential": label_agreement,
        "uplink_bytes": quant_session.metrics.uplink_bytes,
        "uplink_ratio_vs_float32": (
            quant_session.metrics.uplink_bytes
            / serving["windows"][str(quant_window)]["uplink_bytes"]
        ),
    }
    print(
        f"quantized w{quant_window} (8-bit): {requests/quant_s:8.0f} req/s, "
        f"uplink x{serving['quantized']['uplink_ratio_vs_float32']:.2f}, "
        f"label agreement {label_agreement:.1%}"
    )

    # ------------------------------------------------------------------
    # Kernel backends: the compiled native executor vs the numpy executor
    # on identical serving work at the acceptance window.  Parity holds
    # *within* each backend (enforced above and by the test suite); across
    # backends the contract is f32 closeness, checked here as label
    # agreement.
    # ------------------------------------------------------------------
    from repro.edge import _fastexec

    kb_window = windows[0]
    kernel_section: dict = {"available": _fastexec.available(), "window": kb_window}
    kb_ok = True
    if _fastexec.available():
        # The backends alternate inside every repeat (order flipped each
        # time) so host drift lands on both equally — a block of numpy
        # repeats followed by a block of native repeats lets a slow
        # patch of wall-clock skew the ratio either way.
        kb_best = {"numpy": float("inf"), "native": float("inf")}
        kb_logits = {}
        for r in range(repeats):
            order = ("numpy", "native") if r % 2 == 0 else ("native", "numpy")
            for backend in order:
                elapsed, logits, _ = serve_batched(
                    lambda: batched_session(kb_window, kernel_backend=backend),
                    stream,
                )
                if elapsed < kb_best[backend]:
                    kb_best[backend] = elapsed
                    kb_logits[backend] = logits
        kb_results = {
            backend: {
                "seconds": best,
                "requests_per_second": requests / best,
            }
            for backend, best in kb_best.items()
        }
        kb_speedup = (
            kb_results["numpy"]["seconds"] / kb_results["native"]["seconds"]
        )
        kb_agreement = float(
            np.mean(
                np.concatenate([l.argmax(axis=1) for l in kb_logits["native"]])
                == np.concatenate([l.argmax(axis=1) for l in kb_logits["numpy"]])
            )
        )
        kb_target = 1.0 if args.smoke else KERNEL_BACKEND_SPEEDUP
        kb_ok = kb_speedup >= kb_target and kb_agreement == 1.0
        kernel_section.update(
            backends=kb_results,
            speedup=kb_speedup,
            label_agreement=kb_agreement,
            gate_speedup_target=kb_target,
        )
        print(
            f"kernel backend: native "
            f"{kb_results['native']['requests_per_second']:8.0f} req/s vs numpy "
            f"{kb_results['numpy']['requests_per_second']:8.0f} req/s "
            f"({kb_speedup:.2f}x, target {kb_target:.1f}x, label agreement "
            f"{kb_agreement:.1%}, {'PASS' if kb_ok else 'FAIL'})"
        )
    else:
        print("kernel backend: native kernels unavailable (numpy-only run)")
    serving["kernel_backend"] = kernel_section

    # ------------------------------------------------------------------
    # Executor IR rewrites: the same lowered op-program with the rewrite
    # pipeline on vs off, on the quantised window-32 device+server
    # compute path at the "conv0" cut — the cut where every rewrite
    # fires (fused relu+pool on both halves, int8 ingest with the
    # dequant folded into the first conv's epilogue on the uplink,
    # noise-add folded into the local half's epilogue).  The wire and
    # scheduling layers are measured by the sections above; this leg
    # isolates exactly what the rewrites touch, and asserts the uplink
    # stays one byte per element with no f32 dequantised copy ever
    # materialised on the native backend.
    # ------------------------------------------------------------------
    from repro.edge import CloudServer, EdgeDevice, encode_activation_batch
    from repro.edge.ir import DISABLE_REWRITES_ENV_VAR

    ir_window = EXECUTOR_IR_WINDOW
    ir_local, ir_remote = bundle.model.split(EXECUTOR_IR_CUT)
    ir_shape = bundle.model.activation_shape(EXECUTOR_IR_CUT)
    ir_rng = np.random.default_rng(0)
    ir_collection = NoiseCollection(ir_shape)
    for _ in range(len(collection)):
        ir_collection.add(
            ir_rng.laplace(0.0, 0.05, size=ir_shape).astype(np.float32),
            accuracy=0.0,
            in_vivo_privacy=0.0,
        )
    ir_probe = EdgeDevice(ir_local, mean, std, ir_collection,
                          np.random.default_rng(1))
    ir_params = calibrate(
        ir_probe.forward_batch(
            [images[i][None] for i in range(min(64, len(images)))]
        ).tensor,
        bits=8,
    )
    ir_inputs = [
        [images[(b * ir_window + i) % len(images)][None] for i in range(ir_window)]
        for b in range(max(2, requests // ir_window))
    ]

    def ir_pair():
        """One warmed (device, server) pair per rewrite setting.

        Fresh identically-seeded devices (executors snapshot the rewrite
        selection at construction, and the noise stream must replay
        identically for the parity check); warm-up is off the clock,
        matching the serving sections above.
        """
        pair = {}
        for enabled in (True, False):
            had = os.environ.pop(DISABLE_REWRITES_ENV_VAR, None)
            try:
                if not enabled:
                    os.environ[DISABLE_REWRITES_ENV_VAR] = "1"
                device = EdgeDevice(ir_local, mean, std, ir_collection,
                                    np.random.default_rng(7), ir_params)
                server = CloudServer(ir_remote)
            finally:
                os.environ.pop(DISABLE_REWRITES_ENV_VAR, None)
                if had is not None:
                    os.environ[DISABLE_REWRITES_ENV_VAR] = had
            device.warm((ir_window, *images[0].shape))
            server.warm((ir_window, *ir_shape[1:]), quantization=ir_params)
            pair[enabled] = (device, server)
        return pair

    def ir_timed(device, server):
        start = time.perf_counter()
        logits = []
        frame = None
        for batch in ir_inputs:
            frame = device.forward_batch(batch)
            logits.append(server.predict_batch(frame).logits)
        return time.perf_counter() - start, logits, frame

    # The two legs alternate inside every repeat (on/off back to back,
    # order flipped each time) so host drift lands on both equally —
    # best-of-repeats per leg, like every other section.
    ir_best = {True: float("inf"), False: float("inf")}
    ir_logits: dict = {True: None, False: None}
    ir_frame = None
    ir_on_server = ir_off_server = None
    for r in range(max(repeats, 5)):
        legs = ir_pair()
        for enabled in ((True, False) if r % 2 == 0 else (False, True)):
            device, server = legs[enabled]
            elapsed, logits, frame = ir_timed(device, server)
            if elapsed < ir_best[enabled]:
                ir_best[enabled], ir_logits[enabled] = elapsed, logits
            if enabled:
                ir_frame, ir_on_server = frame, server
            else:
                ir_off_server = server
    ir_on_s, ir_on_logits = ir_best[True], ir_logits[True]
    ir_off_s, ir_off_logits = ir_best[False], ir_logits[False]
    ir_speedup = ir_off_s / ir_on_s
    ir_requests = len(ir_inputs) * ir_window
    ir_close = all(
        np.allclose(a, b, atol=2e-4, rtol=2e-4)
        for a, b in zip(ir_on_logits, ir_off_logits)
    )
    ir_agreement = float(
        np.mean(
            np.concatenate([l.argmax(axis=1) for l in ir_on_logits])
            == np.concatenate([l.argmax(axis=1) for l in ir_off_logits])
        )
    )
    # Wire assertion: the quantised uplink frame carries raw uint8 codes,
    # one byte per activation element.
    ir_payload_ok = bool(
        ir_frame.tensor.dtype == np.uint8
        and ir_frame.tensor.nbytes == ir_frame.tensor.size
    )
    # Allocation assertion: with int8 ingest active the native backend
    # feeds the codes straight into the first conv — zero batch-sized f32
    # dequantised copies across the whole run (the numpy backend realises
    # ingest as dequantize-at-the-op by design, so it is exempt).  The
    # rewrites-off leg must dequantise, or the comparison is vacuous.
    ir_alloc_ok = (
        ir_on_server.ingest_dequants == 0 if _fastexec.available() else True
    )
    ir_target = 1.0 if args.smoke else EXECUTOR_IR_SPEEDUP
    ir_ok = (
        ir_speedup >= ir_target
        and ir_close
        and ir_payload_ok
        and ir_alloc_ok
        and ir_off_server.ingest_dequants > 0
    )
    serving["executor_ir"] = {
        "cut": EXECUTOR_IR_CUT,
        "window": ir_window,
        "bits": 8,
        "requests": ir_requests,
        "rewrites_on": {
            "seconds": ir_on_s,
            "requests_per_second": ir_requests / ir_on_s,
            "ingest_dequants": ir_on_server.ingest_dequants,
        },
        "rewrites_off": {
            "seconds": ir_off_s,
            "requests_per_second": ir_requests / ir_off_s,
            "ingest_dequants": ir_off_server.ingest_dequants,
        },
        "speedup": ir_speedup,
        "gate_speedup_target": ir_target,
        "logits_close": ir_close,
        "label_agreement": ir_agreement,
        "uplink_frame_bytes": len(encode_activation_batch(ir_frame)),
        "uplink_bytes_per_element": ir_frame.tensor.nbytes / ir_frame.tensor.size,
        "uplink_ratio_vs_float32": ir_frame.tensor.nbytes
        / (ir_frame.tensor.size * 4),
        "native_kernels": _fastexec.available(),
    }
    print(
        f"executor IR: rewrites-on "
        f"{ir_requests/ir_on_s:8.0f} req/s vs rewrites-off "
        f"{ir_requests/ir_off_s:8.0f} req/s "
        f"({ir_speedup:.2f}x, target {ir_target:.2f}x, "
        f"parity={'OK' if ir_close else 'FAIL'}, "
        f"uplink {serving['executor_ir']['uplink_bytes_per_element']:.0f} B/elem, "
        f"dequant copies {ir_on_server.ingest_dequants}, "
        f"{'PASS' if ir_ok else 'FAIL'})"
    )

    # ------------------------------------------------------------------
    # Int8 weights: the opt-in ``int8_weights`` rewrite (weight_bits=8)
    # vs f32 weights, both legs on the very same quantised window-32
    # compute path the section above measures — identical uplink,
    # identical noise stream, identical rewrite pipeline otherwise.  The
    # quantised leg's first conv runs fully integer (u8 activation codes
    # x i8 weight codes, i32 accumulate) and every other conv/GEMM runs
    # off the int8 code planes, with dequant + zero-point correction
    # folded into the f64 epilogue.  This is the repo's first
    # accuracy-affecting rewrite, so the parity gate is argmax label
    # agreement vs the f32 leg — not f32 closeness — and the allocation
    # gate is that the native backend materialises zero f32 dequantised
    # weight copies (the code planes *are* the weights it runs on).
    # ------------------------------------------------------------------
    def i8_pair():
        """One warmed (device, server) pair per weight regime — fresh
        identically-seeded devices, warm-up off the clock, exactly like
        ``ir_pair`` above."""
        pair = {}
        for quantised in (True, False):
            bits = 8 if quantised else None
            device = EdgeDevice(ir_local, mean, std, ir_collection,
                                np.random.default_rng(7), ir_params,
                                weight_bits=bits)
            server = CloudServer(ir_remote, weight_bits=bits)
            device.warm((ir_window, *images[0].shape))
            server.warm((ir_window, *ir_shape[1:]), quantization=ir_params)
            pair[quantised] = (device, server)
        return pair

    # Legs interleaved inside every repeat with the order flipped, like
    # the IR section: host drift lands on both regimes equally.
    i8_best = {True: float("inf"), False: float("inf")}
    i8_logits: dict = {True: None, False: None}
    i8_on_device = i8_on_server = None
    for r in range(max(repeats, 5)):
        legs = i8_pair()
        for quantised in ((True, False) if r % 2 == 0 else (False, True)):
            device, server = legs[quantised]
            elapsed, logits, _ = ir_timed(device, server)
            if elapsed < i8_best[quantised]:
                i8_best[quantised], i8_logits[quantised] = elapsed, logits
            if quantised:
                i8_on_device, i8_on_server = device, server
    i8_on_s, i8_off_s = i8_best[True], i8_best[False]
    i8_speedup = i8_off_s / i8_on_s
    i8_agreement = float(
        np.mean(
            np.concatenate([l.argmax(axis=1) for l in i8_logits[True]])
            == np.concatenate([l.argmax(axis=1) for l in i8_logits[False]])
        )
    )
    # Allocation assertion: the native backend must run straight off the
    # int8 code planes — zero f32-widened weight copies on either half.
    # (The numpy fallback widens per op by design and is exempt, same as
    # the ingest assertion above.)
    i8_weight_dequants = (
        i8_on_server.weight_dequants + i8_on_device._executor.weight_dequants
    )
    i8_alloc_ok = i8_weight_dequants == 0 if _fastexec.available() else True
    i8_target = 1.0 if args.smoke else EXECUTOR_INT8W_SPEEDUP
    i8_ok = (
        i8_speedup >= i8_target
        and i8_agreement >= EXECUTOR_INT8W_AGREEMENT
        and i8_alloc_ok
    )
    serving["executor_int8w"] = {
        "cut": EXECUTOR_IR_CUT,
        "window": ir_window,
        "activation_bits": 8,
        "weight_bits": 8,
        "requests": ir_requests,
        "int8_weights": {
            "seconds": i8_on_s,
            "requests_per_second": ir_requests / i8_on_s,
            "weight_dequants": i8_weight_dequants,
        },
        "f32_weights": {
            "seconds": i8_off_s,
            "requests_per_second": ir_requests / i8_off_s,
        },
        "speedup": i8_speedup,
        "gate_speedup_target": i8_target,
        "label_agreement": i8_agreement,
        "gate_label_agreement_floor": EXECUTOR_INT8W_AGREEMENT,
        "native_kernels": _fastexec.available(),
    }
    print(
        f"int8 weights: quantised "
        f"{ir_requests/i8_on_s:8.0f} req/s vs f32 "
        f"{ir_requests/i8_off_s:8.0f} req/s "
        f"({i8_speedup:.2f}x, target {i8_target:.2f}x, label agreement "
        f"{i8_agreement:.1%} >= {EXECUTOR_INT8W_AGREEMENT:.0%}, "
        f"weight copies {i8_weight_dequants}, "
        f"{'PASS' if i8_ok else 'FAIL'})"
    )

    # ------------------------------------------------------------------
    # Deadline-aware scheduling: SLO attainment vs the fixed-window policy
    # on the same jittered arrival trace, in deterministic virtual time.
    # The per-batch service time is calibrated from the measured batched
    # run at the acceptance window.
    # ------------------------------------------------------------------
    window_metrics = serving["windows"][str(windows[0])]
    batch_seconds = window_metrics["seconds"] / max(1, calibration_batches)
    slo_requests = 128 if args.smoke else 512
    mean_gap = batch_seconds / 2  # ~4 arrivals per batch service time
    slo_tiers = {
        "tight": 3.0 * batch_seconds,
        "loose": 10.0 * batch_seconds,
    }
    trace = random_trace(
        np.random.default_rng(0),
        slo_requests,
        mean_gap=mean_gap,
        slo_choices=(None, slo_tiers["tight"], slo_tiers["loose"]),
        n_sessions=8,
    )
    policies = {}
    for name, aware in (("deadline_aware", True), ("fixed_window", False)):
        result = simulate_schedule(
            trace,
            batch_window=ACCEPTANCE_WINDOW,
            deadline_aware=aware,
            batch_timeout=8 * mean_gap,
            service_model=lambda window: batch_seconds,
            service_estimate=batch_seconds,
        )
        policies[name] = {
            "slo_attainment": result.metrics.slo_attainment,
            "slo_total": result.metrics.slo_total,
            "throughput_rps": result.throughput,
            "makespan_seconds": result.makespan,
            "mean_occupancy": result.metrics.mean_occupancy,
            "latency_p50_ms": 1e3 * result.metrics.latency_percentile(50),
            "latency_p99_ms": 1e3 * result.metrics.latency_percentile(99),
            "queue_age_p90_ms": 1e3 * result.metrics.queue_age_percentile(90),
        }
    slo_ok = (
        policies["deadline_aware"]["slo_attainment"]
        >= policies["fixed_window"]["slo_attainment"]
        and policies["deadline_aware"]["throughput_rps"]
        >= 0.9 * policies["fixed_window"]["throughput_rps"]
    )
    serving["serving_slo"] = {
        "requests": slo_requests,
        "window": ACCEPTANCE_WINDOW,
        "mean_arrival_gap_ms": 1e3 * mean_gap,
        "batch_service_ms": 1e3 * batch_seconds,
        "slo_tiers_ms": {k: 1e3 * v for k, v in slo_tiers.items()},
        "policies": policies,
        "gate_attainment_ge_fixed": slo_ok,
    }
    print(
        f"SLO (virtual):  deadline-aware "
        f"{policies['deadline_aware']['slo_attainment']:.1%} vs fixed-window "
        f"{policies['fixed_window']['slo_attainment']:.1%} attainment at "
        f"{policies['deadline_aware']['throughput_rps']:.0f} vs "
        f"{policies['fixed_window']['throughput_rps']:.0f} req/s "
        f"({'PASS' if slo_ok else 'FAIL'})"
    )

    # ------------------------------------------------------------------
    # Multi-worker engine: real wall-clock throughput at 1 vs 4 cloud
    # workers over a realtime channel (wire waits actually slept, so
    # concurrent micro-batches overlap them), plus bit-parity.
    # ------------------------------------------------------------------
    mw_requests = 64 if args.smoke else 128
    mw_stream = stream[:mw_requests]
    mw_results: dict[str, dict] = {}
    mw_logits: dict[int, list] = {}
    for workers in (1, MULTIWORKER_WORKERS):
        best = float("inf")
        occupancy: dict = {}
        for _ in range(repeats):
            engine = ServingEngine(
                bundle.model, cut, mean, std, noise=collection,
                channel=Channel(latency_ms=3.0, realtime=True),
                rng=np.random.default_rng(7),
                workers=workers, batch_window=ACCEPTANCE_WINDOW,
                batch_timeout=0.0,
            )
            begin = time.perf_counter()
            logits = engine.infer_stream(mw_stream)
            elapsed = time.perf_counter() - begin
            if elapsed < best:
                # Keep the artefacts of the run actually being reported.
                best = elapsed
                occupancy = engine.metrics.worker_occupancy()
                mw_logits[workers] = logits
            engine.close()
        mw_results[str(workers)] = {
            "seconds": best,
            "requests_per_second": mw_requests / best,
            "worker_occupancy": {str(k): v for k, v in occupancy.items()},
        }
    mw_parity = all(
        np.array_equal(a, b)
        for a, b in zip(mw_logits[1], mw_logits[MULTIWORKER_WORKERS])
    ) and all(
        np.array_equal(a, b)
        for a, b in zip(seq_logits[:mw_requests], mw_logits[MULTIWORKER_WORKERS])
    )
    mw_speedup = (
        mw_results["1"]["seconds"] / mw_results[str(MULTIWORKER_WORKERS)]["seconds"]
    )
    mw_ok = mw_parity and mw_speedup >= MULTIWORKER_SPEEDUP
    serving["serving_multiworker"] = {
        "requests": mw_requests,
        "window": ACCEPTANCE_WINDOW,
        "channel_latency_ms": 3.0,
        "workers": mw_results,
        "speedup": mw_speedup,
        "bitwise_parity": mw_parity,
        "gate_speedup_target": MULTIWORKER_SPEEDUP,
    }
    print(
        f"multi-worker:   {MULTIWORKER_WORKERS} workers "
        f"{mw_results[str(MULTIWORKER_WORKERS)]['requests_per_second']:8.0f} req/s "
        f"vs 1 worker {mw_results['1']['requests_per_second']:8.0f} req/s "
        f"({mw_speedup:.2f}x, parity={'OK' if mw_parity else 'FAIL'}, "
        f"{'PASS' if mw_ok else 'FAIL'})"
    )

    # ------------------------------------------------------------------
    # Multi-model control plane: 3 deployments sharing one worker pool vs
    # the same 3 deployments as isolated single-worker engines driven
    # concurrently.  Equal resources (3 cloud worker threads total), equal
    # work, realtime channel so wire waits genuinely overlap.
    # ------------------------------------------------------------------
    import threading

    from repro.serve import ControlPlane

    mm_per_deployment = 48 if args.smoke else 96
    mm_names = [f"dep{i}" for i in range(MULTIMODEL_DEPLOYMENTS)]
    mm_collections = {
        name: build_collection(split, members=4)
        for name in mm_names
    }
    mm_stream = stream[:mm_per_deployment]
    mm_total = mm_per_deployment * MULTIMODEL_DEPLOYMENTS

    def mm_channel() -> Channel:
        return Channel(latency_ms=3.0, realtime=True)

    def mm_rng(name: str) -> np.random.Generator:
        return np.random.default_rng(900 + mm_names.index(name))

    # Per-deployment sequential references for the parity check.
    mm_expected = {}
    for name in mm_names:
        reference = InferenceSession(
            bundle.model, cut, mean, std, noise=mm_collections[name],
            channel=Channel(), rng=mm_rng(name),
        )
        mm_expected[name] = [reference.infer(images) for images in mm_stream]

    shared_best = float("inf")
    shared_metrics: dict = {}
    shared_parity = True
    for _ in range(repeats):
        plane = ControlPlane(workers=MULTIMODEL_DEPLOYMENTS, channel=mm_channel())
        for name in mm_names:
            plane.register(
                name, bundle.model, cut, noise=mm_collections[name],
                rng=mm_rng(name), batch_window=ACCEPTANCE_WINDOW,
                batch_timeout=0.0,
            )
        handles: dict[str, list] = {name: [] for name in mm_names}
        begin = time.perf_counter()
        for index in range(mm_per_deployment):
            for name in mm_names:
                handles[name].append(
                    plane.submit(
                        mm_stream[index], deployment=name,
                        session_id=f"{name}-user-{index % 4}",
                    )
                )
        plane.drain()
        elapsed = time.perf_counter() - begin
        logits = {
            name: [plane.result(handle) for handle in handles[name]]
            for name in mm_names
        }
        if elapsed < shared_best:
            shared_best = elapsed
            shared_metrics = {
                name: metrics.as_dict()
                for name, metrics in plane.metrics_by_deployment().items()
            }
            shared_parity = all(
                np.array_equal(a, b)
                for name in mm_names
                for a, b in zip(mm_expected[name], logits[name])
            )
        plane.close()

    isolated_best = float("inf")
    for _ in range(repeats):
        engines = {
            name: ServingEngine(
                bundle.model, cut, mean, std, noise=mm_collections[name],
                channel=mm_channel(), rng=mm_rng(name),
                workers=1, batch_window=ACCEPTANCE_WINDOW, batch_timeout=0.0,
            )
            for name in mm_names
        }
        threads = [
            threading.Thread(
                target=engines[name].infer_stream,
                args=(mm_stream,),
                kwargs={"session_ids": [
                    f"{name}-user-{i % 4}" for i in range(mm_per_deployment)
                ]},
            )
            for name in mm_names
        ]
        begin = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        isolated_best = min(isolated_best, time.perf_counter() - begin)
        for engine in engines.values():
            engine.close()

    mm_shared_rps = mm_total / shared_best
    mm_isolated_rps = mm_total / isolated_best
    mm_ratio = mm_shared_rps / mm_isolated_rps
    mm_ok = shared_parity and mm_ratio >= MULTIMODEL_RATIO
    serving["serving_multimodel"] = {
        "deployments": MULTIMODEL_DEPLOYMENTS,
        "requests_per_deployment": mm_per_deployment,
        "window": ACCEPTANCE_WINDOW,
        "channel_latency_ms": 3.0,
        "shared_pool": {
            "workers": MULTIMODEL_DEPLOYMENTS,
            "seconds": shared_best,
            "aggregate_requests_per_second": mm_shared_rps,
            "per_deployment": {
                name: {
                    "requests_per_second": metrics["requests_per_second"],
                    "mean_occupancy": metrics["mean_occupancy"],
                    "mixing_index": metrics["mixing_index"],
                }
                for name, metrics in shared_metrics.items()
            },
        },
        "isolated_engines": {
            "workers_each": 1,
            "seconds": isolated_best,
            "aggregate_requests_per_second": mm_isolated_rps,
        },
        "shared_over_isolated": mm_ratio,
        "bitwise_parity": shared_parity,
        "gate_ratio_target": MULTIMODEL_RATIO,
    }
    print(
        f"multi-model:    shared pool {mm_shared_rps:8.0f} req/s vs "
        f"{MULTIMODEL_DEPLOYMENTS} isolated engines {mm_isolated_rps:8.0f} "
        f"req/s ({mm_ratio:.2f}x, target >= {MULTIMODEL_RATIO:.1f}x, "
        f"parity={'OK' if shared_parity else 'FAIL'}, "
        f"{'PASS' if mm_ok else 'FAIL'})"
    )

    # ------------------------------------------------------------------
    # Chaos + overload: a protected SLO tenant and an admission-capped
    # bulk tenant share an auto-healing elastic pool.  Phase 1 is calm;
    # phase 2 spikes the bulk tenant ~10x while a fault injector kills a
    # worker holding one of its micro-batches.  The contract: typed
    # rejections for the overload, pinned attainment for the protected
    # tenant's admitted requests, exactly-once delivery for everything
    # admitted, a healed pool, and bit parity after the heal and across a
    # post-run hot-swap.
    # ------------------------------------------------------------------
    from repro.errors import OverloadError

    chaos_workers = 2 if args.smoke else 3
    chaos_floor = (
        CHAOS_ATTAINMENT_FLOOR_SMOKE if args.smoke else CHAOS_ATTAINMENT_FLOOR
    )
    # Paced open-loop arrivals (real sleeps against the realtime channel):
    # the protected tenant offers 200 req/s throughout; the bulk tenant
    # offers 100 req/s in the calm phase, then spikes 10x to 1000 req/s.
    chaos_protected_interval = 0.005
    chaos_bulk_calm_interval = 0.010
    chaos_bulk_spike_interval = 0.001
    phase1_protected = 16 if args.smoke else 32
    phase1_bulk = 8 if args.smoke else 16
    spike_protected = 16 if args.smoke else 32
    spike_bulk = (
        spike_protected
        * int(chaos_protected_interval / chaos_bulk_spike_interval)
    )

    chaos_collections = {
        "protected": build_collection(split, members=4),
        "bulk": build_collection(split, members=4),
    }

    killed: list[int] = []

    def chaos_injector(worker_id, task):
        # One shot: die holding the first bulk micro-batch of the spike.
        if (
            not killed
            and task.deployment == "bulk"
            and any(rid >= phase1_bulk for rid in task.request_ids)
        ):
            killed.append(worker_id)
            return True
        return False

    plane = ControlPlane(
        workers=chaos_workers,
        max_workers=4,
        auto_heal=True,
        channel=Channel(latency_ms=2.0, realtime=True),
        fault_injector=chaos_injector,
    )
    # The protected tenant is latency-critical: fixed window with zero
    # timeout flushes every pump turn instead of letting the adaptive
    # batcher ride requests to the edge of their deadline slack.
    plane.register(
        "protected", bundle.model, cut,
        noise=chaos_collections["protected"],
        rng=np.random.default_rng(700),
        batch_window=4, batch_timeout=0.0, deadline_aware=False,
    )
    plane.register(
        "bulk", bundle.model, cut,
        noise=chaos_collections["bulk"],
        rng=np.random.default_rng(701),
        batch_window=8, batch_timeout=0.0,
        max_pending=32,
        admission_rate_rps=200.0,
        admission_burst=16.0,
    )
    plane.enable_autoscale(min_workers=chaos_workers, max_workers=4)

    admitted: list = []
    delivered: list = []
    protected_plan: list = []
    chaos_rejections = {"protected": 0, "bulk": 0}

    def offer(name, image, slo=None):
        try:
            handle = plane.submit(
                image, deployment=name, slo_seconds=slo, session_id=name
            )
        except OverloadError:  # AdmissionError is a subclass: typed 429
            chaos_rejections[name] += 1
            return None
        admitted.append(handle)
        if name == "protected":
            protected_plan.append((handle, image))
        return handle

    # One merged, time-stamped arrival schedule across both phases.
    phase1_end = phase1_protected * chaos_protected_interval
    schedule = [
        (i * chaos_protected_interval, "protected", stream[i % len(stream)])
        for i in range(phase1_protected + spike_protected)
    ]
    schedule += [
        (i * chaos_bulk_calm_interval, "bulk", stream[(i + 7) % len(stream)])
        for i in range(phase1_bulk)
    ]
    schedule += [
        (
            phase1_end + i * chaos_bulk_spike_interval,
            "bulk",
            stream[(i + 13) % len(stream)],
        )
        for i in range(spike_bulk)
    ]
    schedule.sort(key=lambda event: event[0])

    chaos_begin = time.perf_counter()
    for at, name, image in schedule:
        wait = at - (time.perf_counter() - chaos_begin)
        if wait > 0:
            time.sleep(wait)
        offer(name, image,
              slo=CHAOS_PROTECTED_SLO if name == "protected" else None)
        delivered += plane.pump_handles()
    delivered += plane.drain()
    chaos_elapsed = time.perf_counter() - chaos_begin

    zero_lost = sorted(delivered) == sorted(admitted)
    healed = bool(killed) and plane.pool_metrics.respawned_workers >= 1
    chaos_metrics = plane.metrics_by_deployment()
    attainment = chaos_metrics["protected"].slo_attainment
    bulk_rejected = (
        chaos_metrics["bulk"].rejected_requests
        + chaos_metrics["bulk"].shed_requests
    )

    # Post-heal parity: the protected tenant's full admitted stream must
    # be bit-identical to its sequential reference — the crash, the heal,
    # and the autoscaler's resizes must all be invisible in the logits.
    chaos_reference = InferenceSession(
        bundle.model, cut, mean, std,
        noise=chaos_collections["protected"],
        channel=Channel(), rng=np.random.default_rng(700),
    )
    heal_parity = all(
        np.array_equal(plane.result(handle), chaos_reference.infer(image))
        for handle, image in protected_plan
    )
    for handle in admitted:
        if handle.deployment == "bulk":
            plane.result(handle)  # raises if anything was silently lost

    # Post-swap parity: hot-swap the protected tenant's noise stream and
    # verify the new regime against a fresh reference.
    plane.swap("protected", rng=np.random.default_rng(4242))
    swap_handles = [
        plane.submit(stream[i % len(stream)], deployment="protected",
                     session_id="post-swap")
        for i in range(8)
    ]
    plane.drain()
    swap_reference = InferenceSession(
        bundle.model, cut, mean, std,
        noise=chaos_collections["protected"],
        channel=Channel(), rng=np.random.default_rng(4242),
    )
    swap_parity = all(
        np.array_equal(
            plane.result(handle),
            swap_reference.infer(stream[i % len(stream)]),
        )
        for i, handle in enumerate(swap_handles)
    )
    pool_samples = plane.pool_metrics.pool_size_samples
    autoscale_decisions = len(plane.autoscaler.decisions)
    respawned = plane.pool_metrics.respawned_workers
    plane.close()

    chaos_ok = (
        attainment is not None
        and attainment >= chaos_floor
        and bulk_rejected > 0
        and zero_lost
        and healed
        and heal_parity
        and swap_parity
    )
    serving["serving_chaos"] = {
        "workers": chaos_workers,
        "max_workers": 4,
        "protected_slo_seconds": CHAOS_PROTECTED_SLO,
        "phase1": {"protected": phase1_protected, "bulk": phase1_bulk},
        "spike": {"protected": spike_protected, "bulk": spike_bulk},
        "seconds": chaos_elapsed,
        "admitted": len(admitted),
        "delivered": len(delivered),
        "zero_lost": zero_lost,
        "rejected_typed": {
            "bulk": bulk_rejected,
            "protected": (
                chaos_metrics["protected"].rejected_requests
                + chaos_metrics["protected"].shed_requests
            ),
        },
        "protected_attainment": attainment,
        "protected_p90_latency_ms": (
            1e3 * chaos_metrics["protected"].latency_percentile(90)
        ),
        "worker_killed": bool(killed),
        "respawned_workers": respawned,
        "pool_size": {
            "min": min(pool_samples) if pool_samples else None,
            "max": max(pool_samples) if pool_samples else None,
        },
        "autoscale_decisions": autoscale_decisions,
        "post_heal_parity": heal_parity,
        "post_swap_parity": swap_parity,
        "gate_attainment_floor": chaos_floor,
    }
    print(
        f"chaos:          protected attainment "
        f"{(attainment or 0.0) * 100:5.1f}% (floor {chaos_floor * 100:.0f}%), "
        f"{bulk_rejected} typed rejections, "
        f"{'healed' if healed else 'NOT healed'}, "
        f"pool {min(pool_samples) if pool_samples else '?'}.."
        f"{max(pool_samples) if pool_samples else '?'} workers, "
        f"parity heal={'OK' if heal_parity else 'FAIL'} "
        f"swap={'OK' if swap_parity else 'FAIL'}, "
        f"lost={'0' if zero_lost else 'SOME'} "
        f"({'PASS' if chaos_ok else 'FAIL'})"
    )

    # ------------------------------------------------------------------
    # Process sharding: 1/2/4 subprocess shards over real sockets vs the
    # 4-thread single-process engine on identical trace-driven work.  The
    # trace comes from the open-loop load generator: bursty arrivals, a
    # million distinct users, Zipf-heavy per-user request counts — the
    # millions-of-users regime the sharded plane exists for.  Parity: the
    # reported sharded run must be bit-identical, request for request, to
    # per-shard sequential references over the routed subsequences.
    # ------------------------------------------------------------------
    sh_requests = 128 if args.smoke else 512
    sh_trace = generate_trace(
        sh_requests,
        shape="bursty",
        mean_rate_rps=1e4,
        seed=42,
        n_users=1_000_000,
        zipf_exponent=1.1,
    )
    sh_sessions = [event.session_id for event in sh_trace]
    sh_stream = [stream[i % len(stream)] for i in range(sh_requests)]
    sh_channel = {
        "latency_ms": SHARDED_CHANNEL_LATENCY_MS,
        "realtime": True,
    }

    threaded_best = float("inf")
    for _ in range(repeats):
        engine = ServingEngine(
            bundle.model, cut, mean, std, noise=collection,
            channel=Channel(**sh_channel),
            rng=np.random.default_rng(7),
            workers=SHARDED_WORKERS, batch_window=ACCEPTANCE_WINDOW,
            batch_timeout=0.0,
        )
        begin = time.perf_counter()
        engine.infer_stream(sh_stream, session_ids=sh_sessions)
        threaded_best = min(threaded_best, time.perf_counter() - begin)
        engine.close()

    sh_spec = ShardSpec.capture(
        bundle.model, cut, mean=mean, std=std, noise=collection,
        base_seed=7, workers=SHARDED_WORKERS,
        batch_window=ACCEPTANCE_WINDOW, batch_timeout=0.0,
        channel=dict(sh_channel),
    )
    sh_results: dict[str, dict] = {}
    sh_logits: list | None = None
    for n_shards in SHARDED_SHARD_COUNTS:
        best = float("inf")
        for _ in range(repeats):
            with ShardedServingEngine(sh_spec, shards=n_shards) as engine:
                begin = time.perf_counter()
                logits = engine.infer_stream(sh_stream, session_ids=sh_sessions)
                elapsed = time.perf_counter() - begin
            if elapsed < best:
                best = elapsed
                if n_shards == max(SHARDED_SHARD_COUNTS):
                    sh_logits = logits
        sh_results[str(n_shards)] = {
            "seconds": best,
            "requests_per_second": sh_requests / best,
            "speedup_vs_threaded": threaded_best / best,
        }

    # Per-shard parity: each routed subsequence against that shard's own
    # sequential reference (fresh engines are deterministic, so the best
    # timed run's logits are the reported run's logits).
    sh_max = max(SHARDED_SHARD_COUNTS)
    sh_references = [
        sh_spec.reference_session(index, sh_max) for index in range(sh_max)
    ]
    sh_parity = all(
        np.array_equal(
            produced,
            sh_references[route_session(session, sh_max)].infer(images),
        )
        for produced, images, session in zip(sh_logits, sh_stream, sh_sessions)
    )
    sh_speedup = sh_results[str(sh_max)]["speedup_vs_threaded"]
    sh_target = 1.0 if args.smoke else SHARDED_SPEEDUP
    sh_ok = sh_parity and sh_speedup >= sh_target
    sh_stats = trace_stats(sh_trace)
    serving["serving_sharded"] = {
        "requests": sh_requests,
        "window": ACCEPTANCE_WINDOW,
        "workers_per_shard": SHARDED_WORKERS,
        "channel_latency_ms": SHARDED_CHANNEL_LATENCY_MS,
        "trace": {
            "shape": "bursty",
            "seed": 42,
            "n_users": 1_000_000,
            "zipf_exponent": 1.1,
            "distinct_sessions": sh_stats["distinct_sessions"],
            "max_requests_per_user": sh_stats["max_requests_per_user"],
        },
        "threaded_baseline": {
            "workers": SHARDED_WORKERS,
            "seconds": threaded_best,
            "requests_per_second": sh_requests / threaded_best,
        },
        "shards": sh_results,
        "speedup": sh_speedup,
        "shard_parity": sh_parity,
        "gate_speedup_target": sh_target,
    }
    print(
        f"sharded:        {sh_max} shards "
        f"{sh_results[str(sh_max)]['requests_per_second']:8.0f} req/s vs "
        f"threaded-{SHARDED_WORKERS} {sh_requests/threaded_best:8.0f} req/s "
        f"({sh_speedup:.2f}x, target {sh_target:.1f}x, scaling "
        + "/".join(
            f"{sh_results[str(n)]['speedup_vs_threaded']:.2f}x"
            for n in SHARDED_SHARD_COUNTS
        )
        + f", parity={'OK' if sh_parity else 'FAIL'}, "
        f"{'PASS' if sh_ok else 'FAIL'})"
    )

    # ------------------------------------------------------------------
    # Privacy–mixing trade-off: serve one mixed-session stream with the
    # shuffler off and on (parity against the sequential reference must
    # hold in both legs — shuffling moves rows, never bits), then replay
    # the same wire composition over the tapped cut activations through
    # the empirical leakage evaluator.  The positional attacker reads the
    # micro-batch request table exactly as a curious cloud worker would;
    # shuffling must push it down to (or below) its unshuffled score.
    # ------------------------------------------------------------------
    from repro.privacy import evaluate_shuffle_leakage, sweep_mixing_tradeoff

    pm_requests = 64 if args.smoke else 192
    pm_stream = stream[:pm_requests]
    pm_sessions = [
        f"user-{i % PRIVACY_MIXING_SESSIONS}" for i in range(pm_requests)
    ]
    pm_results: dict[str, dict] = {}
    pm_logits: dict[bool, list] = {}
    pm_metrics: dict[bool, dict] = {}
    for shuffled in (False, True):
        best = float("inf")
        for _ in range(repeats):
            engine = ServingEngine(
                bundle.model, cut, mean, std, noise=collection,
                channel=Channel(), rng=np.random.default_rng(7),
                workers=2, batch_window=ACCEPTANCE_WINDOW,
                batch_timeout=0.0, shuffle=shuffled, shuffle_seed=7,
            )
            begin = time.perf_counter()
            logits = engine.infer_stream(pm_stream, session_ids=pm_sessions)
            elapsed = time.perf_counter() - begin
            if elapsed < best:
                best = elapsed
                pm_logits[shuffled] = logits
                metrics = engine.metrics
                pm_metrics[shuffled] = {
                    "mixing_index": metrics.mixing_index,
                    "shuffled_batches": metrics.shuffled_batches,
                    "anonymity_sets": list(metrics.anonymity_sets),
                    "epsilon_amplified": metrics.shuffle_amplification(1.0),
                }
            engine.close()
        pm_results["shuffled" if shuffled else "plain"] = {
            "seconds": best,
            "requests_per_second": pm_requests / best,
        }
    pm_parity = all(
        np.array_equal(a, b)
        for a, b in zip(pm_logits[True], pm_logits[False])
    ) and all(
        np.array_equal(a, b)
        for a, b in zip(seq_logits[:pm_requests], pm_logits[True])
    )
    pm_ratio = (
        pm_results["shuffled"]["requests_per_second"]
        / pm_results["plain"]["requests_per_second"]
    )

    pm_acts = split.activations(np.concatenate(pm_stream))
    pm_acts = pm_acts.reshape(pm_requests, -1).astype(np.float64)
    pm_leak = {
        label: evaluate_shuffle_leakage(
            pm_acts, pm_sessions, batch_window=ACCEPTANCE_WINDOW,
            shuffle=shuffled, shuffle_seed=7, epsilon0=1.0,
        ).as_dict()
        for label, shuffled in (("plain", False), ("shuffled", True))
    }
    pm_surface = sweep_mixing_tradeoff(
        pm_acts, pm_sessions,
        batch_windows=(2, ACCEPTANCE_WINDOW),
        shard_counts=(1, 2), worker_counts=(1,),
        isolation_policies=(False, True), shuffle_modes=(False, True),
        shuffle_seed=7, epsilon0=1.0,
    )
    pm_leak_ok = (
        pm_leak["shuffled"]["positional_accuracy"]
        <= pm_leak["plain"]["positional_accuracy"]
        and pm_leak["shuffled"]["session_mi_bits"]
        <= pm_leak["plain"]["session_mi_bits"]
        and pm_metrics[True]["shuffled_batches"] > 0
    )
    pm_ok = pm_parity and pm_leak_ok and pm_ratio >= PRIVACY_MIXING_OVERHEAD_FLOOR
    serving["privacy_mixing"] = {
        "requests": pm_requests,
        "window": ACCEPTANCE_WINDOW,
        "sessions": PRIVACY_MIXING_SESSIONS,
        "workers": 2,
        "legs": pm_results,
        "shuffle_overhead_ratio": pm_ratio,
        "bitwise_parity": pm_parity,
        "engine_metrics": {
            "plain": pm_metrics[False],
            "shuffled": pm_metrics[True],
        },
        "leakage": pm_leak,
        "tradeoff_surface": pm_surface,
        "gate_overhead_floor": PRIVACY_MIXING_OVERHEAD_FLOOR,
        "gate_leakage_not_worse": pm_leak_ok,
    }
    print(
        f"privacy-mixing: positional attacker "
        f"{pm_leak['plain']['positional_accuracy']:.2f} -> "
        f"{pm_leak['shuffled']['positional_accuracy']:.2f} "
        f"(chance {pm_leak['shuffled']['positional_chance']:.2f}), session MI "
        f"{pm_leak['plain']['session_mi_bits']:.2f} -> "
        f"{pm_leak['shuffled']['session_mi_bits']:.2f} bits, eps 1.0 -> "
        f"{pm_metrics[True]['epsilon_amplified']:.3f} at anonymity "
        f"{min(pm_metrics[True]['anonymity_sets'])}, shuffle cost "
        f"{pm_ratio:.2f}x throughput, parity={'OK' if pm_parity else 'FAIL'} "
        f"({'PASS' if pm_ok else 'FAIL'})"
    )

    # Merge into the hot-path report without clobbering other sections.
    report: dict = {}
    if args.output.exists():
        try:
            report = json.loads(args.output.read_text())
        except json.JSONDecodeError:
            report = {}
    report.setdefault("meta", {})
    report["meta"].update(
        {
            "serving_smoke": args.smoke,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        }
    )
    report["serving"] = serving
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    acceptance = serving["windows"].get(str(ACCEPTANCE_WINDOW))
    if acceptance is None:
        acceptance = serving["windows"][str(windows[0])]
    if args.smoke:
        ok = (gate_ok and acceptance["speedup"] > 1.0 and slo_ok and mw_ok
              and mm_ok and chaos_ok and kb_ok and ir_ok and i8_ok
              and sh_ok and pm_ok)
        print(
            f"smoke gate: batched beats sequential "
            f"({'PASS' if acceptance['speedup'] > 1.0 else 'FAIL'}, "
            f"{acceptance['speedup']:.2f}x), SLO attainment >= fixed "
            f"({'PASS' if slo_ok else 'FAIL'}), multi-worker >= "
            f"{MULTIWORKER_SPEEDUP:.1f}x ({'PASS' if mw_ok else 'FAIL'}), "
            f"multi-model shared >= {MULTIMODEL_RATIO:.1f}x isolated "
            f"({'PASS' if mm_ok else 'FAIL'}), chaos contract "
            f"({'PASS' if chaos_ok else 'FAIL'}), "
            f"kernel-on >= kernel-off ({'PASS' if kb_ok else 'FAIL'}), "
            f"IR rewrites-on >= rewrites-off ({'PASS' if ir_ok else 'FAIL'}), "
            f"int8 weights >= f32 ({'PASS' if i8_ok else 'FAIL'}), "
            f"sharded >= 1x threaded ({'PASS' if sh_ok else 'FAIL'}), "
            f"privacy-mixing contract ({'PASS' if pm_ok else 'FAIL'})"
        )
    else:
        ok = (
            gate_ok
            and acceptance["speedup"] >= ACCEPTANCE_SPEEDUP
            and slo_ok
            and mw_ok
            and mm_ok
            and chaos_ok
            and kb_ok
            and ir_ok
            and i8_ok
            and sh_ok
            and pm_ok
        )
        print(
            f"target: >= {ACCEPTANCE_SPEEDUP:.1f}x at window {ACCEPTANCE_WINDOW} "
            f"({'PASS' if acceptance['speedup'] >= ACCEPTANCE_SPEEDUP else 'FAIL'}, "
            f"{acceptance['speedup']:.2f}x), bitwise parity "
            f"({'PASS' if gate_ok else 'FAIL'}), SLO attainment >= fixed "
            f"({'PASS' if slo_ok else 'FAIL'}), multi-worker >= "
            f"{MULTIWORKER_SPEEDUP:.1f}x ({'PASS' if mw_ok else 'FAIL'}), "
            f"multi-model shared >= {MULTIMODEL_RATIO:.1f}x isolated "
            f"({'PASS' if mm_ok else 'FAIL'}), chaos contract "
            f"({'PASS' if chaos_ok else 'FAIL'}), "
            f"native kernels >= {KERNEL_BACKEND_SPEEDUP:.1f}x "
            f"({'PASS' if kb_ok else 'FAIL'}), "
            f"IR rewrites >= {EXECUTOR_IR_SPEEDUP:.2f}x "
            f"({'PASS' if ir_ok else 'FAIL'}), "
            f"int8 weights >= {EXECUTOR_INT8W_SPEEDUP:.1f}x "
            f"({'PASS' if i8_ok else 'FAIL'}), "
            f"sharded-{max(SHARDED_SHARD_COUNTS)} >= {SHARDED_SPEEDUP:.1f}x "
            f"threaded-{SHARDED_WORKERS} ({'PASS' if sh_ok else 'FAIL'}), "
            f"privacy-mixing contract ({'PASS' if pm_ok else 'FAIL'})"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
