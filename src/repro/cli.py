"""Command-line interface: ``python -m repro <command>``.

Wraps the eval harness so every paper artefact can be regenerated without
writing code:

.. code-block:: bash

    python -m repro table1 --scale small
    python -m repro figure3 --network lenet
    python -m repro figure4 --network alexnet
    python -m repro figure5 --network svhn
    python -m repro figure6 --network svhn
    python -m repro attacks --network lenet
    python -m repro summary --network alexnet
    python -m repro costs  --network svhn
    python -m repro collect --network lenet --out noise.npz
    python -m repro serve --network lenet --batch-window 8
    python -m repro serve --network lenet --workers 4 --slo-ms 50
    python -m repro serve --deployment a=lenet --deployment b=svhn --workers 4
    python -m repro serve --network lenet --workers 2 --max-pending 32 \\
        --admission-rate 500
    python -m repro serve --deployment a=lenet --deployment b=svhn \\
        --workers 2 --autoscale 1:4 --max-pending 64
    python -m repro serve --network lenet --shards 4 --trace bursty
    python -m repro bounds --signal-power 4.0
    python -m repro report --out results/REPORT.md
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.config import Config, get_scale


def _make_config(args: argparse.Namespace) -> Config:
    config = Config(scale=get_scale(args.scale))
    if args.seed is not None:
        config = Config(seed=args.seed, scale=config.scale)
    return config


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.eval import run_table1

    networks = args.networks or None
    result = run_table1(_make_config(args), benchmarks=networks, verbose=True)
    print()
    print(result.format())
    return 0


def _cmd_figure3(args: argparse.Namespace) -> int:
    from repro.eval import run_tradeoff

    curve = run_tradeoff(args.network, _make_config(args), verbose=True)
    print()
    print(curve.format())
    return 0


def _cmd_figure4(args: argparse.Namespace) -> int:
    from repro.eval import run_training_curves

    curves = run_training_curves(args.network, _make_config(args), verbose=True)
    print()
    print(curves.format())
    return 0


def _cmd_figure5(args: argparse.Namespace) -> int:
    from repro.eval import run_layerwise

    result = run_layerwise(
        args.network, _make_config(args), trained=args.trained, verbose=True
    )
    print()
    print(result.format())
    return 0


def _cmd_figure6(args: argparse.Namespace) -> int:
    from repro.eval import run_cutpoints

    analysis = run_cutpoints(
        args.network, _make_config(args), trained=args.trained, verbose=True
    )
    print()
    print(analysis.format())
    return 0


def _cmd_attacks(args: argparse.Namespace) -> int:
    from repro.eval import run_attack_suite

    result = run_attack_suite(args.network, _make_config(args), verbose=True)
    print()
    print(result.format())
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.models import build_model, default_width
    from repro.utils import model_summary

    config = _make_config(args)
    model = build_model(
        args.network, np.random.default_rng(config.seed), default_width(config.scale)
    )
    print(model_summary(model))
    return 0


def _cmd_costs(args: argparse.Namespace) -> int:
    from repro.eval import cost_table

    print(f"cost model for {args.network} (cumulative kMAC, communicated MB):")
    for cost in cost_table(args.network, _make_config(args)):
        print(
            f"  {cost.cut}: {cost.kilomacs:12.1f} kMAC  {cost.megabytes:10.5f} MB"
            f"  product {cost.product:.5f}"
        )
    if args.device:
        import numpy as np

        from repro.edge import PROFILES, energy_table
        from repro.models import build_model, default_width

        config = _make_config(args)
        model = build_model(
            args.network, np.random.default_rng(config.seed), default_width(config.scale)
        )
        profile = PROFILES[args.device]
        print(f"\nper-inference edge cost on {profile.name}:")
        for e in energy_table(model, profile):
            print(
                f"  {e.cut}: {e.total_energy_mj:10.4f} mJ "
                f"(compute {e.compute_energy_mj:.4f} + radio {e.radio_energy_mj:.4f}), "
                f"latency {e.total_latency_ms:8.2f} ms"
            )
    return 0


def _cmd_collect(args: argparse.Namespace) -> int:
    from repro.core import FittedNoiseDistribution
    from repro.eval import build_pipeline, get_benchmark, load_benchmark

    config = _make_config(args)
    bundle, benchmark = load_benchmark(args.network, config, verbose=True)
    pipeline = build_pipeline(bundle, benchmark, config)
    members = args.members or benchmark.n_members
    print(f"training {members} noise tensors for {args.network} ...")
    collection = pipeline.collect(members)
    path = collection.save(args.out)
    print(
        f"saved {len(collection)} members to {path} "
        f"(mean accuracy {collection.mean_accuracy():.1%}, "
        f"mean in-vivo privacy {collection.mean_in_vivo_privacy():.3f})"
    )
    if args.fit:
        fitted = FittedNoiseDistribution.fit(collection, family=args.fit)
        fit_path = fitted.save(str(path).replace(".npz", f".{args.fit}.npz"))
        summary = fitted.summary()
        print(
            f"fitted {summary.family} distribution saved to {fit_path} "
            f"(mean scale {summary.mean_scale:.3f})"
        )
    return 0


def _parse_autoscale(
    raw: str | None, workers: int
) -> tuple[int, int] | None:
    """Parse ``--autoscale MIN:MAX`` into validated pool bounds."""
    if raw is None:
        return None
    from repro.errors import ConfigurationError

    low, sep, high = raw.partition(":")
    try:
        bounds = (int(low), int(high)) if sep else (-1, -1)
    except ValueError:
        bounds = (-1, -1)
    if not sep or bounds[0] < 1 or bounds[1] < bounds[0]:
        raise ConfigurationError(
            f"--autoscale wants MIN:MAX with 1 <= MIN <= MAX, got {raw!r}"
        )
    if bounds[1] < workers:
        raise ConfigurationError(
            f"--autoscale MAX ({bounds[1]}) must be >= --workers ({workers})"
        )
    return bounds


def _cmd_serve_multi(args: argparse.Namespace) -> int:
    """Multi-deployment control-plane serving (``--deployment name=net:cut``)."""
    import time

    import numpy as np

    from repro.edge import Channel
    from repro.errors import ConfigurationError, OverloadError
    from repro.eval import build_pipeline, load_benchmark
    from repro.serve import ControlPlane

    config = _make_config(args)
    parsed: list[tuple[str, str, str | None]] = []
    for raw in args.deployment:
        name, sep, rest = raw.partition("=")
        if not sep or not name or not rest:
            raise ConfigurationError(
                f"--deployment wants NAME=NETWORK[:CUT], got {raw!r}"
            )
        network, _, cut = rest.partition(":")
        parsed.append((name, network, cut or None))
    autoscale = _parse_autoscale(args.autoscale, args.workers)
    channel = Channel(
        bandwidth_mbps=args.bandwidth_mbps,
        latency_ms=args.latency_ms,
        realtime=args.realtime_channel,
    )
    plane = ControlPlane(
        workers=args.workers,
        channel=channel,
        kernel_backend=args.kernel_backend,
        max_workers=autoscale[1] if autoscale else None,
        auto_heal=bool(autoscale),
    )
    if autoscale:
        plane.enable_autoscale(
            min_workers=autoscale[0], max_workers=autoscale[1]
        )
    traffic: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for name, network, cut in parsed:
        bundle, benchmark = load_benchmark(network, config, verbose=True)
        pipeline = build_pipeline(bundle, benchmark, config, cut=cut)
        members = args.members or benchmark.n_members
        print(f"[{name}] training {members} noise tensors for {network} ...")
        collection = pipeline.collect(members)
        plane.register(
            name,
            bundle.model,
            pipeline.split.cut,
            noise=collection,
            rng=np.random.default_rng(config.child_seed("serving", name)),
            batch_window=args.batch_window,
            batch_timeout=(
                args.batch_timeout_ms / 1e3
                if args.batch_timeout_ms is not None
                else 0.005
            ),
            isolate_sessions=args.batch_policy == "isolate",
            weight_bits=args.weight_bits,
            max_pending=args.max_pending,
            admission_rate_rps=args.admission_rate,
            shuffle=args.shuffle,
            shuffle_seed=args.shuffle_seed,
        )
        traffic[name] = (bundle.test_set.images, bundle.test_set.labels)
    requests = {
        name: min(args.requests, len(images))
        for name, (images, _) in traffic.items()
    }
    print(
        f"serving {sum(requests.values())} single-image requests across "
        f"{len(parsed)} deployments on {args.workers} shared workers "
        f"(window {args.batch_window}, {args.batch_policy} batches) ..."
    )
    slo = args.slo_ms / 1e3 if args.slo_ms is not None else None
    handles: dict[str, list] = {name: [] for name in traffic}
    admitted: dict[str, list[int]] = {name: [] for name in traffic}
    rejected: dict[str, int] = {name: 0 for name in traffic}
    start = time.perf_counter()
    # Round-robin interleave the tenants' request streams, 4 sessions each.
    for index in range(max(requests.values())):
        for name, (images, _) in traffic.items():
            if index >= requests[name]:
                continue
            try:
                handle = plane.submit(
                    images[index : index + 1],
                    deployment=name,
                    slo_seconds=slo,
                    session_id=f"{name}-user-{index % 4}",
                )
            except OverloadError:
                # Typed 429-style rejection: count it, keep serving.
                rejected[name] += 1
            else:
                handles[name].append(handle)
                admitted[name].append(index)
        # One dispatcher turn per round: overlaps edge/cloud work with
        # submission and steps the autoscaler under live traffic.
        plane.pump_handles()
    # Drain through pump turns rather than plane.drain(): the backlog
    # left by a closed-loop submit burst is exactly where the autoscaler
    # earns its keep, and pump_handles() is what steps it.
    while plane.pending or plane.in_flight:
        if not plane.pump_handles(flush=True):
            time.sleep(0.0005)
    elapsed = time.perf_counter() - start
    plane.close()
    for name, (_, labels) in traffic.items():
        print(f"\n=== deployment {name} ===")
        print(plane.metrics_by_deployment()[name].format())
        if handles[name]:
            predictions = np.concatenate(
                [plane.result(handle).argmax(axis=1) for handle in handles[name]]
            )
            accuracy = float(
                np.mean(predictions == labels[admitted[name]])
            )
            print(f"accuracy          {accuracy:.1%}")
        if rejected[name]:
            print(
                f"admission         {rejected[name]} of {requests[name]} "
                "requests rejected (typed OverloadError)"
            )
    total = sum(len(ids) for ids in handles.values())
    print(
        f"\naggregate         {total} admitted requests in "
        f"{elapsed*1e3:.1f} ms ({total/max(elapsed, 1e-9):.0f} req/s "
        "across the shared pool)"
    )
    pool = plane.pool_metrics
    if pool.respawned_workers or pool.pool_size_samples:
        sizes = pool.pool_size_samples or [plane.target_workers]
        print(
            f"pool              {min(sizes)}..{max(sizes)} workers "
            f"({pool.respawned_workers} respawned"
            + (
                f", {len(plane.autoscaler.decisions)} autoscale decisions"
                if plane.autoscaler is not None
                else ""
            )
            + ")"
        )
    return 0


def _cmd_serve_sharded(args: argparse.Namespace) -> int:
    """Process-sharded serving driven by the open-loop trace generator."""
    import time

    import numpy as np

    from repro.eval import build_pipeline, load_benchmark
    from repro.serve import (
        ShardSpec,
        ShardedServingEngine,
        generate_trace,
        replay_trace,
        trace_stats,
    )

    config = _make_config(args)
    bundle, benchmark = load_benchmark(args.network, config, verbose=True)
    pipeline = build_pipeline(bundle, benchmark, config)
    members = args.members or benchmark.n_members
    print(f"training {members} noise tensors for {args.network} ...")
    collection = pipeline.collect(members)

    # The bundle's datasets are already normalised (identity device
    # normalisation), matching pipeline.deploy().
    channels = bundle.model.input_shape[0]
    spec = ShardSpec.capture(
        bundle.model,
        pipeline.split.cut,
        mean=np.zeros(channels, dtype=np.float32),
        std=np.ones(channels, dtype=np.float32),
        noise=collection,
        base_seed=config.seed,
        workers=args.workers,
        batch_window=args.batch_window,
        batch_timeout=(
            args.batch_timeout_ms / 1e3
            if args.batch_timeout_ms is not None
            else 0.0
        ),
        weight_bits=args.weight_bits,
        kernel_backend=args.kernel_backend,
        shuffle=args.shuffle,
        shuffle_seed=args.shuffle_seed,
        channel={
            "bandwidth_mbps": args.bandwidth_mbps,
            "latency_ms": args.latency_ms,
            "realtime": args.realtime_channel,
        },
    )
    images = bundle.test_set.images
    labels = bundle.test_set.labels
    requests = min(args.requests, len(images))
    trace = generate_trace(
        requests,
        shape=args.trace,
        mean_rate_rps=args.trace_rate,
        seed=config.seed,
        n_users=1_000_000,
        zipf_exponent=1.1,
    )
    stats = trace_stats(trace)
    stream = [images[i : i + 1] for i in range(requests)]
    print(
        f"serving {requests} single-image requests from a {args.trace!r} "
        f"trace ({stats['distinct_sessions']} distinct users, "
        f"{stats['mean_rate_rps']:.0f} req/s offered) across "
        f"{args.shards} shards x {args.workers} workers "
        f"(window {args.batch_window}) ..."
    )
    slo = args.slo_ms / 1e3 if args.slo_ms is not None else None
    ids: list[int] = []
    with ShardedServingEngine(spec, shards=args.shards) as engine:
        iterator = iter(stream)

        def submit(event) -> None:
            ids.append(
                engine.submit(
                    next(iterator),
                    slo_seconds=slo,
                    session_id=event.session_id,
                )
            )

        start = time.perf_counter()
        replay_trace(trace, submit, on_tick=engine.poll)
        engine.drain()
        elapsed = time.perf_counter() - start
        predictions = [engine.result(request_id).argmax(axis=1) for request_id in ids]
        merged = engine.metrics()
        respawned = engine.respawned_shards
    print()
    print(merged.format())
    accuracy = float(np.mean(np.concatenate(predictions) == labels[:requests]))
    print(
        f"accuracy          {accuracy:.1%} "
        f"(clean backbone {bundle.test_accuracy:.1%})"
    )
    print(
        f"sharded           {requests} requests in {elapsed*1e3:.1f} ms "
        f"({requests/max(elapsed, 1e-9):.0f} req/s across {args.shards} "
        f"shards, {respawned} respawned)"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.edge import Channel
    from repro.eval import build_pipeline, load_benchmark

    if args.deployment:
        if args.shards is not None:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                "--shards runs the single-deployment sharded plane; it "
                "cannot be combined with --deployment"
            )
        return _cmd_serve_multi(args)
    if args.shards is not None:
        return _cmd_serve_sharded(args)
    if args.autoscale is not None:
        from repro.errors import ConfigurationError

        raise ConfigurationError(
            "--autoscale resizes the shared multi-deployment pool; use it "
            "with --deployment NAME=NET[:CUT]"
        )

    config = _make_config(args)
    bundle, benchmark = load_benchmark(args.network, config, verbose=True)
    pipeline = build_pipeline(bundle, benchmark, config)
    members = args.members or benchmark.n_members
    print(f"training {members} noise tensors for {args.network} ...")
    collection = pipeline.collect(members)

    from repro.serve import ServingEngine

    channel = Channel(
        bandwidth_mbps=args.bandwidth_mbps,
        latency_ms=args.latency_ms,
        realtime=args.realtime_channel,
    )
    session = pipeline.deploy(
        collection,
        batch_window=args.batch_window,
        workers=args.workers,
        batch_timeout=(
            args.batch_timeout_ms / 1e3
            if args.batch_timeout_ms is not None
            else None
        ),
        # An SLO implies deadline-aware scheduling (and thus the engine);
        # otherwise let deploy() decide from the other knobs.
        deadline_aware=True if args.slo_ms is not None else None,
        isolate_sessions=args.batch_policy == "isolate",
        channel=channel,
        quantize_bits=args.quantize_bits,
        weight_bits=args.weight_bits,
        kernel_backend=args.kernel_backend,
        max_pending=args.max_pending,
        admission_rate_rps=args.admission_rate,
        shuffle=args.shuffle,
        shuffle_seed=args.shuffle_seed,
    )
    engine_mode = isinstance(session, ServingEngine)
    images = bundle.test_set.images
    labels = bundle.test_set.labels
    requests = min(args.requests, len(images))
    runtime = (
        f"serving engine ({args.workers} workers)" if engine_mode
        else "batched runtime"
    )
    backend = session.device._executor.backend
    print(
        f"serving {requests} single-image requests through the {runtime} "
        f"(window {args.batch_window}, {backend} kernels"
        + (f", SLO {args.slo_ms:g} ms" if args.slo_ms is not None else "")
        + (f", {args.quantize_bits}-bit wire" if args.quantize_bits else "")
        + (f", int{args.weight_bits} weights" if args.weight_bits else "")
        + ") ..."
    )
    import time

    stream = [images[i : i + 1] for i in range(requests)]
    start = time.perf_counter()
    if engine_mode and (
        args.max_pending is not None or args.admission_rate is not None
    ):
        # Admission-gated serving: submissions can be rejected typed;
        # keep serving admitted requests and report both populations.
        from repro.errors import OverloadError

        slo = args.slo_ms / 1e3 if args.slo_ms is not None else None
        ids: list[int] = []
        admitted_idx: list[int] = []
        rejected = 0
        for i, batch in enumerate(stream):
            try:
                ids.append(session.submit(batch, slo_seconds=slo))
            except OverloadError:
                rejected += 1
            else:
                admitted_idx.append(i)
        session.drain()
        predictions = [
            session.result(request_id).argmax(axis=1) for request_id in ids
        ]
        label_slice = labels[admitted_idx]
    elif engine_mode:
        predictions = session.classify_stream(
            stream,
            slo_seconds=(
                args.slo_ms / 1e3 if args.slo_ms is not None else None
            ),
        )
        rejected = 0
        label_slice = labels[:requests]
    else:
        predictions = session.classify_stream(stream)
        rejected = 0
        label_slice = labels[:requests]
    batched_elapsed = time.perf_counter() - start
    print()
    print(session.metrics.format())
    if predictions:
        accuracy = float(np.mean(np.concatenate(predictions) == label_slice))
        print(
            f"accuracy          {accuracy:.1%} "
            f"(clean backbone {bundle.test_accuracy:.1%})"
        )
    if rejected:
        print(
            f"admission         {rejected} of {requests} requests rejected "
            "(typed OverloadError)"
        )
    if engine_mode:
        session.close()
    if args.compare_sequential:
        sequential = pipeline.deploy(
            collection, batched=False, kernel_backend=args.kernel_backend,
            weight_bits=args.weight_bits,
        )
        start = time.perf_counter()
        for i in range(requests):
            sequential.infer(images[i : i + 1])
        elapsed = time.perf_counter() - start
        # Same timing boundary on both sides: full wall clock around the
        # whole request stream (submission to collected predictions).
        print(
            f"sequential        {requests / elapsed:.0f} req/s "
            f"({elapsed * 1e3:.1f} ms wall) -> batched speedup "
            f"{elapsed / batched_elapsed:.2f}x"
        )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.eval import render_report, write_report

    if args.out:
        path = write_report(args.results_dir, args.out)
        print(f"wrote report to {path}")
    else:
        print(render_report(args.results_dir))
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    from repro.privacy import laplace_channel_bracket

    print(
        f"analytic leakage bracket per dimension "
        f"(signal power {args.signal_power:g}, Laplace noise):"
    )
    print(f"{'scale b':>10} {'SNR':>10} {'1/SNR':>10} {'MI lower':>10} {'MI upper':>10}")
    for scale in args.scales:
        bracket = laplace_channel_bracket(args.signal_power, scale)
        print(
            f"{scale:>10.3f} {bracket.snr:>10.3f} {1.0 / bracket.snr:>10.3f} "
            f"{bracket.lower_bits:>10.3f} {bracket.upper_bits:>10.3f}"
        )
    return 0


_COMMANDS: dict[str, Callable[[argparse.Namespace], int]] = {
    "table1": _cmd_table1,
    "figure3": _cmd_figure3,
    "figure4": _cmd_figure4,
    "figure5": _cmd_figure5,
    "figure6": _cmd_figure6,
    "attacks": _cmd_attacks,
    "summary": _cmd_summary,
    "costs": _cmd_costs,
    "collect": _cmd_collect,
    "bounds": _cmd_bounds,
    "report": _cmd_report,
    "serve": _cmd_serve,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the Shredder paper's tables and figures.",
    )
    parser.add_argument(
        "--scale",
        default=None,
        choices=["tiny", "small", "paper"],
        help="experiment scale (default: REPRO_SCALE or small)",
    )
    parser.add_argument("--seed", type=int, default=None, help="override the seed")
    sub = parser.add_subparsers(dest="command", required=True)

    table1 = sub.add_parser("table1", help="regenerate Table 1")
    table1.add_argument(
        "--networks", nargs="*", default=None,
        help="benchmark subset (default: all four)",
    )

    for name in ("figure3", "figure4"):
        cmd = sub.add_parser(name, help=f"regenerate {name}")
        cmd.add_argument("--network", default="lenet")

    for name in ("figure5", "figure6"):
        cmd = sub.add_parser(name, help=f"regenerate {name}")
        cmd.add_argument("--network", default="svhn")
        cmd.add_argument(
            "--trained", action="store_true",
            help="train noise per point (slower; default injects matched noise)",
        )

    attacks = sub.add_parser("attacks", help="run the attack suite (extension)")
    attacks.add_argument("--network", default="lenet")

    summary = sub.add_parser("summary", help="print a model's layer table")
    summary.add_argument("--network", default="lenet")

    costs = sub.add_parser("costs", help="print the section 3.4 cost model")
    costs.add_argument("--network", default="svhn")
    costs.add_argument(
        "--device",
        choices=["microcontroller", "mobile_cpu", "embedded_gpu"],
        default=None,
        help="also print the per-device energy/latency table",
    )

    collect = sub.add_parser(
        "collect", help="train and save a deployable noise collection (section 2.5)"
    )
    collect.add_argument("--network", default="lenet")
    collect.add_argument("--out", default="noise_collection.npz")
    collect.add_argument(
        "--members", type=int, default=None,
        help="collection size (default: the benchmark's configured size)",
    )
    collect.add_argument(
        "--fit", choices=["laplace", "gaussian"], default=None,
        help="also fit and save a parametric distribution over the members",
    )

    serve = sub.add_parser(
        "serve",
        help="run the batched split-inference serving runtime on test traffic",
    )
    serve.add_argument("--network", default="lenet")
    serve.add_argument(
        "--batch-window", type=int, default=8,
        help="requests stacked per micro-batch (default 8)",
    )
    serve.add_argument(
        "--requests", type=int, default=64,
        help="single-image requests to serve from the test set",
    )
    serve.add_argument(
        "--members", type=int, default=None,
        help="noise collection size (default: the benchmark's configured size)",
    )
    serve.add_argument(
        "--quantize-bits", type=int, default=None,
        help="quantise each stacked uplink payload to this many bits",
    )
    serve.add_argument(
        "--weight-bits", type=int, choices=[8], default=None,
        help="serve on int8-quantised weights (the opt-in int8_weights IR "
        "rewrite; label-agreement-gated, never on by default); composes "
        "with --quantize-bits for a fully integer first conv/GEMM",
    )
    serve.add_argument("--bandwidth-mbps", type=float, default=100.0)
    serve.add_argument("--latency-ms", type=float, default=10.0)
    serve.add_argument(
        "--workers", type=int, default=1,
        help="cloud worker threads draining micro-batches concurrently "
        "(> 1 selects the deadline-aware serving engine)",
    )
    serve.add_argument(
        "--slo-ms", type=float, default=None,
        help="per-request latency SLO in ms; enables deadline-aware "
        "window closing and SLO-attainment reporting",
    )
    serve.add_argument(
        "--batch-timeout-ms", type=float, default=None,
        help="longest the head request waits for its window to fill "
        "(serving engine only; default 5 ms)",
    )
    serve.add_argument(
        "--realtime-channel", action="store_true",
        help="sleep the simulated wire time so concurrent workers "
        "genuinely overlap transfers",
    )
    serve.add_argument(
        "--compare-sequential", action="store_true",
        help="also time the sequential reference path on the same stream",
    )
    serve.add_argument(
        "--kernel-backend", choices=["auto", "native", "numpy"], default="auto",
        help="forward-executor kernels: compiled C when available (auto, "
        "the default), required (native), or pure numpy (numpy); "
        "REPRO_NO_C_KERNEL=1 disables compiled kernels globally",
    )
    serve.add_argument(
        "--deployment", action="append", default=None, metavar="NAME=NET[:CUT]",
        help="serve a named deployment on the multi-model control plane "
        "(repeatable, e.g. --deployment a=lenet --deployment b=svhn:conv6); "
        "all deployments share the --workers cloud pool",
    )
    serve.add_argument(
        "--batch-policy", choices=["mixed", "isolate"], default="mixed",
        help="micro-batch composition: 'mixed' stacks any sessions together "
        "(maximal occupancy), 'isolate' never mixes two sessions in one "
        "batch (cross-user mixing index reads 0)",
    )
    serve.add_argument(
        "--shuffle", action="store_true",
        help="permute each micro-batch's rows across sessions before the "
        "uplink frame is encoded (seeded policy, inverse recorded; "
        "bit-parity preserved) — the wire frame's request table no longer "
        "reveals row ownership, and metrics report per-batch anonymity "
        "sets and the shuffle-amplification bound",
    )
    serve.add_argument(
        "--shuffle-seed", type=int, default=None, metavar="SEED",
        help="explicit shuffling-policy seed (default 0; with --shards, "
        "each shard derives its own stream from this base)",
    )
    serve.add_argument(
        "--max-pending", type=int, default=None,
        help="admission control: reject new requests (typed 429-style "
        "AdmissionError) once this many are already queued per deployment; "
        "admitted requests are never shed later",
    )
    serve.add_argument(
        "--admission-rate", type=float, default=None, metavar="RPS",
        help="admission control: per-deployment token-bucket rate in "
        "requests/second (burst = one second's tokens); submissions above "
        "the sustained rate are rejected typed instead of queued",
    )
    serve.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="serve through N subprocess shards over real sockets "
        "(deterministic session routing, per-shard noise streams; each "
        "shard runs --workers cloud worker threads)",
    )
    serve.add_argument(
        "--trace", choices=["poisson", "diurnal", "bursty"], default="poisson",
        help="arrival shape of the open-loop trace replayed against the "
        "sharded plane (with --shards; default poisson)",
    )
    serve.add_argument(
        "--trace-rate", type=float, default=2000.0, metavar="RPS",
        help="mean offered rate of the generated trace (with --shards)",
    )
    serve.add_argument(
        "--autoscale", default=None, metavar="MIN:MAX",
        help="elastic pool: autoscale the shared worker pool between MIN "
        "and MAX workers (grows on backlog/SLO pressure and measured "
        "demand, shrinks when idle; multi-deployment serving via "
        "--deployment only)",
    )

    report = sub.add_parser(
        "report", help="render results/*.csv into a markdown report"
    )
    report.add_argument("--results-dir", default="results")
    report.add_argument("--out", default=None, help="write to a file instead of stdout")

    bounds = sub.add_parser(
        "bounds", help="print the analytic SNR-to-MI leakage bracket (section 2.3)"
    )
    bounds.add_argument("--signal-power", type=float, default=1.0)
    bounds.add_argument(
        "--scales", type=float, nargs="*",
        default=[0.25, 0.5, 1.0, 2.0, 4.0],
        help="Laplace noise scales to tabulate",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
