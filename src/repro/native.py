"""Shared build–cache–load pipeline for compiled C kernel modules.

This repo ships small, self-contained C kernels for its measured hot paths
(the kNN estimator sweeps in :mod:`repro.privacy._fastknn` and the serving
executor kernels in :mod:`repro.edge._fastexec`).  Both follow the same
life cycle, implemented once here:

1. the C source is hashed (sha256) and compiled **at first use** with the
   system C compiler (``cc``/``gcc``/``clang``, ``-O3 -march=native`` with
   a portable retry) into a per-user cache directory;
2. the resulting shared object is loaded with :mod:`ctypes` and its
   signatures configured by the owning module;
3. subsequent processes reuse the cached ``.so`` keyed by the source hash,
   so a source edit transparently rebuilds while an unchanged kernel costs
   one ``stat``.

Environment contract (honoured by every kernel family):

* ``REPRO_NO_C_KERNEL=1`` disables compiled kernels entirely — callers
  fall back to their pure numpy/scipy implementations;
* ``REPRO_KERNEL_DIR`` overrides the cache directory (useful for CI
  artifact caching); the default is a per-uid directory under the system
  tempdir.

The cache directory lives under a shared tmpdir by default; loading a
``.so`` someone else could have planted there would hand them code
execution in this process, so anything not exclusively owned by this uid
(or group/other-writable) is treated as absent and rebuilt via a private
staging path.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path
from typing import Callable

DISABLE_ENV_VAR = "REPRO_NO_C_KERNEL"
DIR_ENV_VAR = "REPRO_KERNEL_DIR"

_compiler_cache: tuple[str | None] | None = None


def kernels_disabled() -> bool:
    """Whether ``REPRO_NO_C_KERNEL`` turns compiled kernels off."""
    return bool(os.environ.get(DISABLE_ENV_VAR))


def kernel_dir() -> Path:
    """The cache directory holding compiled kernel artifacts."""
    configured = os.environ.get(DIR_ENV_VAR)
    if configured:
        return Path(configured)
    return Path(tempfile.gettempdir()) / f"repro-kernels-{os.getuid()}"


def find_compiler() -> str | None:
    """The first working system C compiler (memoised per process)."""
    global _compiler_cache
    if _compiler_cache is None:
        found = None
        for candidate in ("cc", "gcc", "clang"):
            try:
                subprocess.run(
                    [candidate, "--version"], capture_output=True, check=True
                )
                found = candidate
                break
            except (OSError, subprocess.CalledProcessError):
                continue
        _compiler_cache = (found,)
    return _compiler_cache[0]


def _is_private_to_us(path: Path) -> bool:
    """Owned by this uid and not writable by group/other."""
    try:
        info = path.stat()
    except OSError:
        return False
    return info.st_uid == os.getuid() and not (info.st_mode & 0o022)


def source_digest(source: str) -> str:
    """Short content hash keying a compiled artifact to its source."""
    return hashlib.sha256(source.encode()).hexdigest()[:16]


def build_library(name: str, source: str) -> ctypes.CDLL | None:
    """Compile (or reuse) ``source`` and load it; ``None`` on any failure.

    The artifact is ``<kernel_dir>/<name>-<hash>.so``; compilation goes
    through a pid-suffixed staging file and an atomic rename so concurrent
    processes never load a half-written library.
    """
    directory = kernel_dir()
    digest = source_digest(source)
    library = directory / f"{name}-{digest}.so"
    if not (
        library.exists()
        and _is_private_to_us(directory)
        and _is_private_to_us(library)
    ):
        compiler = find_compiler()
        if compiler is None:
            return None
        directory.mkdir(parents=True, exist_ok=True, mode=0o700)
        if not _is_private_to_us(directory):
            return None
        source_path = directory / f"{name}-{digest}.c"
        source_path.write_text(source)
        staging = directory / f"{name}-{digest}-{os.getpid()}.so.tmp"
        base = [compiler, "-O3", "-shared", "-fPIC", "-o", str(staging), str(source_path)]
        native = base[:2] + ["-march=native"] + base[2:]
        try:
            subprocess.run(native, capture_output=True, check=True)
        except subprocess.CalledProcessError:
            try:
                # Retry without -march=native for compilers/targets that
                # reject it; the blocked layouts are the main win anyway.
                subprocess.run(base, capture_output=True, check=True)
            except (OSError, subprocess.CalledProcessError):
                return None
        except OSError:
            return None
        os.replace(staging, library)
    try:
        return ctypes.CDLL(str(library))
    except OSError:
        return None


class KernelModule:
    """One compiled kernel family: lazy build + load + signature setup.

    Args:
        name: Artifact file prefix (e.g. ``"fastknn"``).
        source: Complete C source; its hash keys the cached ``.so``.
        configure: Called once with the loaded library to set ``argtypes``
            / ``restype`` on its functions.
    """

    def __init__(
        self,
        name: str,
        source: str,
        configure: Callable[[ctypes.CDLL], None],
    ) -> None:
        self.name = name
        self.source = source
        self._configure = configure
        self._lib: ctypes.CDLL | None = None
        self._load_attempted = False

    def load(self) -> ctypes.CDLL | None:
        """The configured library, or ``None`` when unavailable/disabled.

        The build attempt happens once per process; the disable env var is
        re-read on every call so tests can flip it dynamically.
        """
        if kernels_disabled():
            return None
        if not self._load_attempted:
            self._load_attempted = True
            lib = build_library(self.name, self.source)
            if lib is not None:
                self._configure(lib)
            self._lib = lib
        return self._lib

    def available(self) -> bool:
        """Whether the compiled kernel can be used in this process."""
        return self.load() is not None
