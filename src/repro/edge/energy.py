"""Energy and latency model for the edge side of split inference.

Paper §3.4 reasons about the cutting point with an abstract
``Computation × Communication`` product.  This module grounds that product
in device terms: given a device profile (energy per MAC, radio energy per
byte, compute rate, uplink bandwidth), every candidate cut gets an energy
and latency estimate per inference — the quantities an edge deployment
actually budgets.

The built-in profiles are order-of-magnitude characterisations of three
device classes (microcontroller, mobile big-core, embedded-GPU board),
assembled from public energy-per-operation figures; they are meant for
*relative* cut comparisons, not absolute power claims.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.edge.costs import CutCost, cut_costs
from repro.errors import ConfigurationError
from repro.models.base import SplittableModel


@dataclass(frozen=True)
class DeviceProfile:
    """Energy/throughput characterisation of one edge device class.

    Attributes:
        name: Profile label.
        energy_per_mac_pj: Compute energy per multiply-accumulate, in pJ.
        radio_energy_per_byte_nj: Transmit energy per payload byte, in nJ.
        compute_rate_mmacs: Sustained compute rate, in millions of MACs/s.
        uplink_mbps: Radio uplink, in megabits per second.
        radio_overhead_ms: Fixed per-message radio wake/handshake latency.
    """

    name: str
    energy_per_mac_pj: float
    radio_energy_per_byte_nj: float
    compute_rate_mmacs: float
    uplink_mbps: float
    radio_overhead_ms: float = 5.0

    def __post_init__(self) -> None:
        if min(
            self.energy_per_mac_pj,
            self.radio_energy_per_byte_nj,
            self.compute_rate_mmacs,
            self.uplink_mbps,
        ) <= 0:
            raise ConfigurationError(
                f"device profile {self.name!r} needs positive rates/energies"
            )
        if self.radio_overhead_ms < 0:
            raise ConfigurationError("radio overhead cannot be negative")


#: Order-of-magnitude device classes for cut-point comparisons.
MICROCONTROLLER = DeviceProfile(
    name="microcontroller",
    energy_per_mac_pj=20.0,
    radio_energy_per_byte_nj=200.0,  # BLE-class radio
    compute_rate_mmacs=50.0,
    uplink_mbps=0.5,
    radio_overhead_ms=20.0,
)

MOBILE_CPU = DeviceProfile(
    name="mobile_cpu",
    energy_per_mac_pj=5.0,
    radio_energy_per_byte_nj=50.0,  # LTE-class radio
    compute_rate_mmacs=2000.0,
    uplink_mbps=10.0,
    radio_overhead_ms=10.0,
)

EMBEDDED_GPU = DeviceProfile(
    name="embedded_gpu",
    energy_per_mac_pj=1.0,
    radio_energy_per_byte_nj=30.0,  # WiFi-class radio
    compute_rate_mmacs=50000.0,
    uplink_mbps=50.0,
    radio_overhead_ms=2.0,
)

PROFILES: dict[str, DeviceProfile] = {
    profile.name: profile
    for profile in (MICROCONTROLLER, MOBILE_CPU, EMBEDDED_GPU)
}


@dataclass(frozen=True)
class EnergyEstimate:
    """Per-inference edge cost of one cutting point on one device.

    Attributes:
        cut: Cut-point name.
        device: Device profile name.
        compute_energy_mj: Edge compute energy, in millijoules.
        radio_energy_mj: Transmit energy, in millijoules.
        compute_latency_ms: Edge compute time, in milliseconds.
        radio_latency_ms: Transmit time (incl. fixed overhead), in ms.
    """

    cut: str
    device: str
    compute_energy_mj: float
    radio_energy_mj: float
    compute_latency_ms: float
    radio_latency_ms: float

    @property
    def total_energy_mj(self) -> float:
        """Compute plus radio energy."""
        return self.compute_energy_mj + self.radio_energy_mj

    @property
    def total_latency_ms(self) -> float:
        """Compute plus radio latency (serialised, worst case)."""
        return self.compute_latency_ms + self.radio_latency_ms


def estimate_cut(cost: CutCost, profile: DeviceProfile) -> EnergyEstimate:
    """Energy/latency of one cutting point on one device."""
    macs = cost.kilomacs * 1e3
    payload_bytes = cost.megabytes * 1e6
    compute_energy_mj = macs * profile.energy_per_mac_pj * 1e-9
    radio_energy_mj = payload_bytes * profile.radio_energy_per_byte_nj * 1e-6
    compute_latency_ms = macs / (profile.compute_rate_mmacs * 1e6) * 1e3
    radio_latency_ms = (
        payload_bytes * 8.0 / (profile.uplink_mbps * 1e6) * 1e3
        + profile.radio_overhead_ms
    )
    return EnergyEstimate(
        cut=cost.cut,
        device=profile.name,
        compute_energy_mj=compute_energy_mj,
        radio_energy_mj=radio_energy_mj,
        compute_latency_ms=compute_latency_ms,
        radio_latency_ms=radio_latency_ms,
    )


def energy_table(
    model: SplittableModel, profile: DeviceProfile
) -> list[EnergyEstimate]:
    """Energy/latency of every candidate cut of a model on one device."""
    return [estimate_cut(cost, profile) for cost in cut_costs(model)]


def cheapest_cut(
    model: SplittableModel, profile: DeviceProfile, metric: str = "energy"
) -> EnergyEstimate:
    """The cut minimising total energy (or latency) on a device.

    Args:
        metric: ``"energy"`` or ``"latency"``.
    """
    estimates = energy_table(model, profile)
    if metric == "energy":
        return min(estimates, key=lambda e: e.total_energy_mj)
    if metric == "latency":
        return min(estimates, key=lambda e: e.total_latency_ms)
    raise ConfigurationError(f"unknown metric {metric!r}; use energy or latency")


def battery_inferences(
    estimate: EnergyEstimate, battery_joules: float
) -> int:
    """How many inferences one battery charge sustains at this cut.

    Args:
        estimate: Per-inference cost.
        battery_joules: Usable battery energy (e.g. a 1 Wh budget = 3600 J).
    """
    if battery_joules <= 0:
        raise ConfigurationError(
            f"battery energy must be positive, got {battery_joules}"
        )
    per_inference_j = estimate.total_energy_mj * 1e-3
    if per_inference_j <= 0:
        raise ConfigurationError("estimate carries no positive energy cost")
    return int(battery_joules / per_inference_j)
