"""First-class op-program IR for the serving executor (schedule/lowering split).

Every forward the serving runtime performs — the edge half on the
dispatcher, the cloud half on each worker, the sequential reference path —
runs a frozen eval-mode :class:`~repro.nn.Sequential`.  Before this module
existed the network was lowered three separate times: the numpy executor
kept a per-module handler plan, :mod:`repro.edge._fastexec` owned an ad-hoc
flat op program for the compiled C kernels, and quantised uplinks were
dequantised by :mod:`repro.edge.quantization` before either saw them.
This module is the **single lowering pass** that replaces all three:

* :func:`segment_modules` splits a layer list into IR-lowerable runs and
  python-fallback runs (eval-mode BatchNorm2d/LocalResponseNorm, anything
  in training mode or unrecognised);
* :func:`lower` turns one run into a :class:`Program` — a typed op list
  (:class:`IROp`: op kind, per-sample shapes, dtypes, weight references)
  plus input/output specs — and then applies the **rewrite pipeline**;
* :func:`plan_buffers` derives the schedule's buffer lifetimes: which
  ping-pong arena each op writes, how large the arenas and the im2col /
  padded-plane scratch panel must be.  Backends allocate what the plan
  says; they do not re-derive shapes.

Both executor backends are *interpreters of the same lowered program*:
the numpy interpreter (:class:`repro.edge.executor._NumpyProgram`) walks
``Program.ops`` with batch-invariant numpy kernels, and the native backend
(:class:`repro.edge._fastexec.CompiledProgram`) translates the same ops
into the flat int64 record array its C interpreter executes.  There is no
backend-private lowering path.

Rewrites
========

A rewrite is a pure function ``Program -> Program`` that may change *how*
a result is computed but never *what* is computed beyond float32
round-off.  The pipeline (fixed order, each individually toggleable):

``fuse_relu``
    Folds a standalone ReLU into the directly preceding Conv2d/Linear
    epilogue (bitwise-neutral: the same f32 max runs at the output write).
``fuse_conv_pool``
    Collapses ``conv → [relu] → maxpool(2x2/2)`` into one fused op when
    the conv is eligible for the direct (im2col-free) kernel, so the
    activation is pooled in registers instead of being written out and
    re-read (bitwise-neutral per backend: conv elements keep their exact
    accumulation schedule, pooling is a max of identical floats).
``int8_ingest``
    When the program's input is a quantised uplink (integer codes) and the
    first compute op is a Conv2d/Linear, the op consumes the codes
    directly: codes are widened to f32 in-register (im2col panels and
    padded planes carry code *values*, padding carries the zero point,
    which dequantises to exactly 0.0) and the affine dequantisation is
    folded into the epilogue as ``out = scale·acc + (bias − scale·zp·Σw)``.
    This removes the batch-sized f32 dequantised copy entirely.  Results
    are f32-close (not bitwise) to dequantise-then-run.
``fold_epilogue_add``
    Folds a trailing per-row tensor addition (the Shredder noise add) into
    the last op's output write, removing one full traversal of the
    activation per batch (bitwise-neutral: the same f32 add runs at the
    output write).

Determinism contract (inherited from PR 4, enforced by the per-rewrite
differential fuzz in ``tests/edge/test_native_kernels.py``): for any fixed
rewrite set, each backend remains bitwise batch-invariant and run-to-run
deterministic; across backends — and across rewrite on/off togglings —
results are f32-close.  Rewrite decisions depend only on per-sample
geometry and dtypes, never on the batch size, so the sequential reference
and every batched path make identical decisions.

Environment
===========

``REPRO_NO_IR_REWRITES=1`` disables the whole rewrite pipeline (canonical
lowering only — the fallback path CI pins); ``REPRO_IR_REWRITES=a,b``
restricts it to a named subset.  Both are snapshotted at executor
construction, like ``kernel_backend``.  ``REPRO_NO_C_KERNEL=1`` disables
the native backend as before; the IR (and its rewrites) applies to the
numpy interpreter too.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

import numpy as np

from repro.edge.quantization import QuantizationParams
from repro.errors import ConfigurationError
from repro.nn import Linear
from repro.nn.im2col import conv_output_size
from repro.nn.layers.activation import ReLU
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.pooling import MaxPool2d

#: Rewrite names, in pipeline order.
FUSE_RELU = "fuse_relu"
FUSE_CONV_POOL = "fuse_conv_pool"
INT8_INGEST = "int8_ingest"
FOLD_EPILOGUE_ADD = "fold_epilogue_add"
ALL_REWRITES = (FUSE_RELU, FUSE_CONV_POOL, INT8_INGEST, FOLD_EPILOGUE_ADD)

#: Kill-switch: any non-empty value disables every IR rewrite.
DISABLE_REWRITES_ENV_VAR = "REPRO_NO_IR_REWRITES"
#: Comma-separated allowlist restricting the pipeline to a subset.
SELECT_REWRITES_ENV_VAR = "REPRO_IR_REWRITES"

#: Stride-1 convs with output rows in this width range are eligible for
#: the direct (im2col-free) native kernel — and therefore for the fused
#: conv+pool rewrite, which rides on the direct kernel's 2-row tiles.
DIRECT_CONV_MIN_OW = 8
DIRECT_CONV_MAX_OW = 64

#: Integer-code dtypes a program input may carry (quantised uplinks).
CODE_DTYPES = {8: "u8", 16: "u16"}


def default_rewrites() -> tuple[str, ...]:
    """The rewrite pipeline the environment configures.

    ``REPRO_NO_IR_REWRITES`` (any non-empty value) turns everything off;
    otherwise ``REPRO_IR_REWRITES`` may name a comma-separated subset.
    Executors snapshot this once at construction.
    """
    if os.environ.get(DISABLE_REWRITES_ENV_VAR):
        return ()
    selected = os.environ.get(SELECT_REWRITES_ENV_VAR)
    if selected is None:
        return ALL_REWRITES
    names = tuple(name.strip() for name in selected.split(",") if name.strip())
    unknown = set(names) - set(ALL_REWRITES)
    if unknown:
        raise ConfigurationError(
            f"unknown IR rewrites in ${SELECT_REWRITES_ENV_VAR}: "
            f"{sorted(unknown)} (known: {list(ALL_REWRITES)})"
        )
    return tuple(name for name in ALL_REWRITES if name in names)


# ----------------------------------------------------------------------
# IR data model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TensorSpec:
    """Per-sample shape + dtype of a value flowing between ops.

    ``dtype`` is ``"f32"`` for float activations or ``"u8"``/``"u16"``
    for quantised integer codes (only ever a *program input*; every op
    output is f32).
    """

    shape: tuple[int, ...]
    dtype: str = "f32"

    @property
    def elements(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1

    @property
    def numpy_dtype(self) -> np.dtype:
        return np.dtype({"f32": np.float32, "u8": np.uint8, "u16": np.uint16}[self.dtype])


@dataclass(frozen=True)
class IROp:
    """One op of a lowered program.

    Geometry is per-sample; the batch dimension is an interpreter
    parameter.  Epilogue state (``relu``, ``pool``, ``dequant``,
    ``add_rows``) is what the rewrite pipeline edits; canonical lowering
    emits it all unset.

    Attributes:
        kind: ``"conv2d"`` | ``"linear"`` | ``"relu"`` | ``"maxpool2d"``
            | ``"flatten"``.
        in_spec / out_spec: Value specs around this op (``out_spec`` is
            the *pooled* shape when ``pool`` is set).
        kernel / stride / padding: Conv or pool window geometry.
        oh / ow: Conv (pre-pool) or pool output height/width.
        weight / bias: Parameter references — ``weight`` is the GEMM-ready
            ``(out_features, K)`` float32 view; live arrays, not copies.
        relu: Fused ReLU in the output epilogue.
        pool: Fused eval-mode 2x2/2 max pool after the (relu'd) conv.
        dequant: When set, the op consumes integer codes of these affine
            params and folds dequantisation into its epilogue.
        add_rows: The op adds the program's extra per-row input tensor at
            its output write (the folded noise add).
        source: Layer indices (within the original Sequential) this op
            covers — cost attribution and debugging.
    """

    kind: str
    in_spec: TensorSpec
    out_spec: TensorSpec
    kernel: tuple[int, int] = (0, 0)
    stride: tuple[int, int] = (0, 0)
    padding: tuple[int, int] = (0, 0)
    oh: int = 0
    ow: int = 0
    weight: np.ndarray | None = None
    bias: np.ndarray | None = None
    relu: bool = False
    pool: bool = False
    dequant: QuantizationParams | None = None
    add_rows: bool = False
    source: tuple[int, ...] = ()

    # -- derived ------------------------------------------------------
    @property
    def macs(self) -> int:
        """Per-sample multiply-accumulates of this op (the §3.4 model)."""
        if self.kind == "conv2d":
            c_in = self.in_spec.shape[0]
            c_out = self.out_spec.shape[0]
            kh, kw = self.kernel
            # The cost model charges the conv at its own output plane even
            # when a fused pool discards the odd row/column tail — fusion
            # must not perturb the planner's Figure 6 products.
            return self.oh * self.ow * c_out * c_in * kh * kw
        if self.kind == "linear":
            return self.in_spec.elements * self.out_spec.elements
        return 0


#: How a program's extra per-row input (the noise add) is applied.
EXTRA_NONE = "none"          # no extra input
EXTRA_SEPARATE = "separate"  # interpreter adds it after the last op
EXTRA_FOLDED = "folded"      # last op absorbs it (fold_epilogue_add)


@dataclass(frozen=True)
class Program:
    """A lowered (and possibly rewritten) op program for one segment.

    Attributes:
        ops: The schedule, in execution order.
        in_spec: Per-sample input value ( ``u8``/``u16`` when the first op
            ingests quantised codes directly; otherwise callers must hand
            the interpreter a float32 input).
        out_spec: Per-sample output value (always f32).
        extra: :data:`EXTRA_NONE` / :data:`EXTRA_SEPARATE` /
            :data:`EXTRA_FOLDED` — the epilogue-add operand state.
        rewrites: The rewrite names that actually changed this program
            (diagnostics; equality of programs is structural).
    """

    ops: tuple[IROp, ...]
    in_spec: TensorSpec
    out_spec: TensorSpec
    extra: str = EXTRA_NONE
    rewrites: tuple[str, ...] = ()

    @property
    def consumes_codes(self) -> bool:
        """Whether the interpreter is handed raw quantised codes."""
        return self.in_spec.dtype != "f32"


@dataclass(frozen=True)
class BufferPlan:
    """Buffer lifetimes of a program under ping-pong arena execution.

    Every op reads its predecessor's output and writes the other arena
    (the last op writes the program output), so exactly two arenas of
    ``arena_elements`` floats per sample cover all intermediate values;
    ``scratch_elements`` sizes the shared per-sample im2col / padded-plane
    panel (with the direct kernel's fixed-width over-read slack included).

    Attributes:
        arena_elements: Per-sample float32 capacity each arena needs.
        scratch_elements: Per-sample float32 capacity of the shared panel.
        slots: Per-op destination: 0/1 for arena A/B, -1 for the program
            output buffer.
    """

    arena_elements: int
    scratch_elements: int
    slots: tuple[int, ...]


def direct_conv_eligible(op: IROp) -> bool:
    """Whether a conv op can run on the direct (im2col-free) kernel."""
    return (
        op.kind == "conv2d"
        and op.stride == (1, 1)
        and DIRECT_CONV_MIN_OW <= op.ow <= DIRECT_CONV_MAX_OW
    )


def plan_buffers(program: Program) -> BufferPlan:
    """Derive arena/scratch sizes and per-op destinations for a program.

    Pure geometry — backends allocate what this says (the numpy
    interpreter sizes its reusable output buffers from the same specs).
    """
    arena = 0
    scratch = 1
    slots: list[int] = []
    which = 0
    compute_ops = [op for op in program.ops if op.kind != "flatten"]
    for index, op in enumerate(compute_ops):
        last = index == len(compute_ops) - 1
        slots.append(-1 if last else which)
        which ^= 1
        if not last:
            arena = max(arena, op.out_spec.elements)
        if op.kind == "conv2d":
            c_in, h, w = op.in_spec.shape
            kh, kw = op.kernel
            ph, pw = op.padding
            if direct_conv_eligible(op):
                # +64 slack floats: the fixed-width direct tile loads
                # (never stores) up to 31 lanes past a row's end.
                scratch = max(scratch, c_in * (h + 2 * ph) * (w + 2 * pw) + 64)
            else:
                scratch = max(scratch, c_in * kh * kw * op.oh * op.ow)
    # Flatten-only programs still need a (degenerate) plan.
    if not compute_ops:
        slots = []
    return BufferPlan(
        arena_elements=max(arena, 1),
        scratch_elements=scratch,
        slots=tuple(slots),
    )


# ----------------------------------------------------------------------
# Segmentation: which layers the IR can absorb
# ----------------------------------------------------------------------
def supported(module) -> bool:
    """Whether the IR can absorb this layer.

    Eval-mode dropout is the identity; training-mode dropout must stay on
    the python fallback so it raises exactly like the numpy handlers.
    """
    if isinstance(module, (Conv2d, Linear, ReLU, MaxPool2d, Flatten)):
        return True
    return isinstance(module, Dropout) and not module.training


def segment_modules(rows: list[tuple]) -> list[tuple[str, list[tuple]]]:
    """Split executor plan rows into ``("ir", rows)`` / ``("python", rows)``.

    ``rows`` are the executor's ``(index, module, handler)`` tuples; the
    split is purely by :func:`supported`, preserving order.  Lowering of
    the ``"ir"`` runs happens later, per batch geometry.
    """
    segments: list[tuple[str, list[tuple]]] = []
    current_kind: str | None = None
    current: list[tuple] = []
    for row in rows:
        kind = "ir" if supported(row[1]) else "python"
        if kind != current_kind and current:
            segments.append((current_kind, current))
            current = []
        current_kind = kind
        current.append(row)
    if current:
        segments.append((current_kind, current))
    return segments


# ----------------------------------------------------------------------
# Lowering (one pass, shared by every backend)
# ----------------------------------------------------------------------
def _lower_canonical(
    rows: list[tuple], input_shape: tuple[int, ...]
) -> list[IROp]:
    """Canonical (rewrite-free) lowering of one IR segment."""
    ops: list[IROp] = []
    shape = tuple(int(s) for s in input_shape)
    for row in rows:
        index, module = row[0], row[1]
        in_spec = TensorSpec(shape)
        if isinstance(module, Conv2d):
            c_in, h, w = shape
            if c_in != module.in_channels:
                raise ConfigurationError(
                    f"conv expects {module.in_channels} channels, segment "
                    f"carries {c_in}"
                )
            kh, kw = module.kernel_size
            sh, sw = module.stride
            ph, pw = module.padding
            oh = conv_output_size(h, kh, sh, ph)
            ow = conv_output_size(w, kw, sw, pw)
            c_out = module.out_channels
            weight = module.weight.data.reshape(c_out, c_in * kh * kw)
            if not weight.flags.c_contiguous:
                weight = np.ascontiguousarray(weight)
            shape = (c_out, oh, ow)
            ops.append(
                IROp(
                    kind="conv2d",
                    in_spec=in_spec,
                    out_spec=TensorSpec(shape),
                    kernel=(kh, kw),
                    stride=(sh, sw),
                    padding=(ph, pw),
                    oh=oh,
                    ow=ow,
                    weight=weight,
                    bias=None if module.bias is None else module.bias.data,
                    source=(index,),
                )
            )
        elif isinstance(module, Linear):
            in_f = int(np.prod(shape))
            if in_f != module.in_features:
                raise ConfigurationError(
                    f"linear expects {module.in_features} features, segment "
                    f"carries {in_f}"
                )
            shape = (module.out_features,)
            ops.append(
                IROp(
                    kind="linear",
                    in_spec=TensorSpec((in_f,)),
                    out_spec=TensorSpec(shape),
                    weight=module.weight.data,
                    bias=None if module.bias is None else module.bias.data,
                    source=(index,),
                )
            )
        elif isinstance(module, ReLU):
            ops.append(
                IROp(
                    kind="relu",
                    in_spec=in_spec,
                    out_spec=in_spec,
                    source=(index,),
                )
            )
        elif isinstance(module, MaxPool2d):
            c, h, w = shape
            kh, kw = module.kernel_size
            sh, sw = module.stride
            ph, pw = module.padding
            oh = conv_output_size(h, kh, sh, ph)
            ow = conv_output_size(w, kw, sw, pw)
            shape = (c, oh, ow)
            ops.append(
                IROp(
                    kind="maxpool2d",
                    in_spec=in_spec,
                    out_spec=TensorSpec(shape),
                    kernel=(kh, kw),
                    stride=(sh, sw),
                    padding=(ph, pw),
                    oh=oh,
                    ow=ow,
                    source=(index,),
                )
            )
        elif isinstance(module, Flatten):
            shape = (int(np.prod(shape)),)
            ops.append(
                IROp(
                    kind="flatten",
                    in_spec=in_spec,
                    out_spec=TensorSpec(shape),
                    source=(index,),
                )
            )
        elif isinstance(module, Dropout) and not module.training:
            continue  # identity at inference time
        else:  # pragma: no cover - segment_modules filters these out
            raise ConfigurationError(f"IR cannot lower {type(module).__name__}")
    return ops


# ----------------------------------------------------------------------
# Rewrites (pure Program -> Program)
# ----------------------------------------------------------------------
def _rewrite_fuse_relu(ops: list[IROp]) -> tuple[list[IROp], bool]:
    out: list[IROp] = []
    changed = False
    for op in ops:
        if (
            op.kind == "relu"
            and out
            and out[-1].kind in ("conv2d", "linear")
            and not out[-1].relu
        ):
            out[-1] = replace(
                out[-1], relu=True, source=out[-1].source + op.source
            )
            changed = True
        else:
            out.append(op)
    return out, changed


def _rewrite_fuse_conv_pool(ops: list[IROp]) -> tuple[list[IROp], bool]:
    out: list[IROp] = []
    changed = False
    for op in ops:
        if (
            op.kind == "maxpool2d"
            and op.kernel == (2, 2)
            and op.stride == (2, 2)
            and op.padding == (0, 0)
            and out
            and out[-1].kind == "conv2d"
            and not out[-1].pool
            and direct_conv_eligible(out[-1])
            # A degenerate (empty) pool output stays unfused.
            and out[-1].oh >= 2
            and out[-1].ow >= 2
        ):
            conv = out[-1]
            out[-1] = replace(
                conv,
                pool=True,
                out_spec=op.out_spec,
                source=conv.source + op.source,
            )
            changed = True
        else:
            out.append(op)
    return out, changed


def _rewrite_int8_ingest(
    ops: list[IROp], quantization: QuantizationParams
) -> tuple[list[IROp], TensorSpec | None, bool]:
    """Mark the first compute op as a direct code consumer, if it can be.

    Applies when the program starts with (flattens then) a conv or linear;
    flattens are free on contiguous memory, so codes flow through them.
    Returns the (possibly) updated ops, the new program input spec (or
    ``None`` when the rewrite does not apply), and the changed flag.
    """
    code_dtype = CODE_DTYPES[8 if quantization.bits <= 8 else 16]
    first = None
    for position, op in enumerate(ops):
        if op.kind == "flatten":
            continue
        first = position
        break
    if first is None or ops[first].kind not in ("conv2d", "linear"):
        return ops, None, False
    target = ops[first]
    rewritten = list(ops)
    rewritten[first] = replace(
        target,
        dequant=quantization,
        in_spec=TensorSpec(target.in_spec.shape, code_dtype),
    )
    in_spec = TensorSpec(ops[0].in_spec.shape, dtype=code_dtype)
    # Flattens ahead of the ingest op also carry the code dtype.
    for position in range(first):
        rewritten[position] = replace(
            rewritten[position],
            in_spec=TensorSpec(rewritten[position].in_spec.shape, code_dtype),
            out_spec=TensorSpec(rewritten[position].out_spec.shape, code_dtype),
        )
    return rewritten, in_spec, True


def _rewrite_fold_epilogue_add(ops: list[IROp]) -> tuple[list[IROp], bool]:
    """Let the last op absorb the program's extra per-row input."""
    if not ops:
        return ops, False
    # Trailing flattens are free reshapes; the add folds into the last
    # compute op and the reshape happens on top of it.
    last = len(ops) - 1
    while last >= 0 and ops[last].kind == "flatten":
        last -= 1
    if last < 0:
        return ops, False
    if ops[last].kind not in ("conv2d", "linear", "relu", "maxpool2d"):
        return ops, False
    rewritten = list(ops)
    rewritten[last] = replace(rewritten[last], add_rows=True)
    return rewritten, True


def lower(
    rows: list[tuple],
    input_shape: tuple[int, ...],
    *,
    quantization: QuantizationParams | None = None,
    epilogue_add: bool = False,
    rewrites: tuple[str, ...] | None = None,
) -> Program:
    """Lower one IR segment and run the rewrite pipeline over it.

    Args:
        rows: ``(index, module, ...)`` plan rows of one ``"ir"`` segment.
        input_shape: Per-sample input shape of the segment.
        quantization: When the segment input is a quantised uplink, its
            affine params.  With the ``int8_ingest`` rewrite enabled and a
            foldable first op the returned program consumes the raw codes
            (``program.consumes_codes``); otherwise the caller must
            dequantise before interpreting (the fallback path).
        epilogue_add: Whether the caller will supply an extra per-row f32
            tensor to add to the program output (the noise add).  With
            ``fold_epilogue_add`` enabled and an absorbing last op the add
            runs inside that op's epilogue; otherwise ``program.extra`` is
            :data:`EXTRA_SEPARATE` and the interpreter adds it after.
        rewrites: Rewrite allowlist (default: :func:`default_rewrites`,
            i.e. the environment).  Order is fixed regardless of the
            listing order.

    Every decision here depends only on per-sample geometry and dtypes —
    never the batch size — which is what keeps rewrite choices identical
    between the sequential reference and any batched path.
    """
    if rewrites is None:
        rewrites = default_rewrites()
    ops = _lower_canonical(rows, input_shape)
    applied: list[str] = []
    if FUSE_RELU in rewrites:
        ops, changed = _rewrite_fuse_relu(ops)
        if changed:
            applied.append(FUSE_RELU)
    if FUSE_CONV_POOL in rewrites:
        ops, changed = _rewrite_fuse_conv_pool(ops)
        if changed:
            applied.append(FUSE_CONV_POOL)
    in_spec = TensorSpec(tuple(int(s) for s in input_shape))
    if quantization is not None and INT8_INGEST in rewrites:
        ops, code_spec, changed = _rewrite_int8_ingest(ops, quantization)
        if changed:
            in_spec = code_spec
            applied.append(INT8_INGEST)
    extra = EXTRA_NONE
    if epilogue_add:
        extra = EXTRA_SEPARATE
        if FOLD_EPILOGUE_ADD in rewrites:
            ops, changed = _rewrite_fold_epilogue_add(ops)
            if changed:
                extra = EXTRA_FOLDED
                applied.append(FOLD_EPILOGUE_ADD)
    out_spec = ops[-1].out_spec if ops else in_spec
    if ops and out_spec.dtype != "f32":  # pragma: no cover - codes never
        raise ConfigurationError("program output must be f32")  # leave a program
    return Program(
        ops=tuple(ops),
        in_spec=in_spec,
        out_spec=out_spec,
        extra=extra,
        rewrites=tuple(applied),
    )


# ----------------------------------------------------------------------
# Per-op cost model (consumed by repro.edge.costs / the planner)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OpCost:
    """Cost profile of one lowered op (per sample).

    Attributes:
        kind: Op kind.
        macs: Multiply-accumulates.
        output_elements: Elements of the op output.
        output_bytes: Bytes of the op output at its dtype width.
        source: Source layer indices.
    """

    kind: str
    macs: int
    output_elements: int
    output_bytes: int
    source: tuple[int, ...]


def op_cost(op: IROp) -> OpCost:
    """The §3.4 cost entry for one IR op."""
    return OpCost(
        kind=op.kind,
        macs=op.macs,
        output_elements=op.out_spec.elements,
        output_bytes=op.out_spec.elements * op.out_spec.numpy_dtype.itemsize,
        source=op.source,
    )


def program_costs(program: Program) -> tuple[OpCost, ...]:
    """Per-op costs of a lowered program, in schedule order."""
    return tuple(op_cost(op) for op in program.ops)


def lower_module(module, input_shape: tuple[int, ...]) -> IROp | None:
    """Canonically lower a single layer, or ``None`` if the IR can't.

    The cost model uses this to price individual layers from the same
    lowering pass the executors run, instead of re-deriving MAC formulas
    per layer type.  Eval-mode dropout lowers to nothing and returns
    ``None`` too (it is free either way).
    """
    if not supported(module):
        return None
    ops = _lower_canonical([(0, module)], input_shape)
    return ops[0] if ops else None
