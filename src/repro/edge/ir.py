"""First-class op-program IR for the serving executor (schedule/lowering split).

Every forward the serving runtime performs — the edge half on the
dispatcher, the cloud half on each worker, the sequential reference path —
runs a frozen eval-mode :class:`~repro.nn.Sequential`.  Before this module
existed the network was lowered three separate times: the numpy executor
kept a per-module handler plan, :mod:`repro.edge._fastexec` owned an ad-hoc
flat op program for the compiled C kernels, and quantised uplinks were
dequantised by :mod:`repro.edge.quantization` before either saw them.
This module is the **single lowering pass** that replaces all three:

* :func:`segment_modules` splits a layer list into IR-lowerable runs and
  python-fallback runs (eval-mode BatchNorm2d/LocalResponseNorm, anything
  in training mode or unrecognised);
* :func:`lower` turns one run into a :class:`Program` — a typed op list
  (:class:`IROp`: op kind, per-sample shapes, dtypes, weight references)
  plus input/output specs — and then applies the **rewrite pipeline**;
* :func:`plan_buffers` derives the schedule's buffer lifetimes: which
  ping-pong arena each op writes, how large the arenas and the im2col /
  padded-plane scratch panel must be.  Backends allocate what the plan
  says; they do not re-derive shapes.

Both executor backends are *interpreters of the same lowered program*:
the numpy interpreter (:class:`repro.edge.executor._NumpyProgram`) walks
``Program.ops`` with batch-invariant numpy kernels, and the native backend
(:class:`repro.edge._fastexec.CompiledProgram`) translates the same ops
into the flat int64 record array its C interpreter executes.  There is no
backend-private lowering path.

Rewrites
========

A rewrite is a pure function ``Program -> Program`` that may change *how*
a result is computed but never *what* is computed beyond float32
round-off.  The pipeline (fixed order, each individually toggleable):

``fuse_relu``
    Folds a standalone ReLU into the directly preceding Conv2d/Linear
    epilogue (bitwise-neutral: the same f32 max runs at the output write).
``fuse_conv_pool``
    Collapses ``conv → [relu] → maxpool(2x2/2)`` into one fused op when
    the conv is eligible for the direct (im2col-free) kernel, so the
    activation is pooled in registers instead of being written out and
    re-read (bitwise-neutral per backend: conv elements keep their exact
    accumulation schedule, pooling is a max of identical floats).
``int8_ingest``
    When the program's input is a quantised uplink (integer codes) and the
    first compute op is a Conv2d/Linear, the op consumes the codes
    directly: codes are widened to f32 in-register (im2col panels and
    padded planes carry code *values*, padding carries the zero point,
    which dequantises to exactly 0.0) and the affine dequantisation is
    folded into the epilogue as ``out = scale·acc + (bias − scale·zp·Σw)``.
    This removes the batch-sized f32 dequantised copy entirely.  Results
    are f32-close (not bitwise) to dequantise-then-run.
``fold_epilogue_add``
    Folds a trailing per-row tensor addition (the Shredder noise add) into
    the last op's output write, removing one full traversal of the
    activation per batch (bitwise-neutral: the same f32 add runs at the
    output write).
``int8_weights`` (opt-in, never in the default pipeline)
    Replaces every conv/linear weight reference with per-output-channel
    symmetric int8 codes (:func:`repro.edge.quantization.quantize_weights`)
    applied in the epilogue as ``out = scales[oc]·acc + bias``.  Composed
    with ``int8_ingest`` the first conv/GEMM becomes fully integer:
    u8-act × i8-weight → i32 accumulation with the combined scale
    ``scale_act·scales[oc]`` and the zero-point row-sum correction folded
    into the bias (f64 fold, stored f32).  This is the first
    *accuracy-affecting* rewrite — quantised weights change what is
    computed, not just how — so it never enters :func:`default_rewrites`
    and is requested explicitly via ``weight_bits=8`` on executor
    construction (or by naming it in ``REPRO_IR_REWRITES``).  Its
    differential gate is ≥99% label agreement vs the f32 reference, not
    f32 closeness; bitwise batch-invariance and run-to-run determinism per
    backend still hold unconditionally.

Determinism contract (inherited from PR 4, enforced by the per-rewrite
differential fuzz in ``tests/edge/test_native_kernels.py``): for any fixed
rewrite set, each backend remains bitwise batch-invariant and run-to-run
deterministic; across backends — and across rewrite on/off togglings —
results are f32-close (with the quantised-weights carve-out above: the
``int8_weights`` on↔off comparison is label-agreement-gated instead).
Rewrite decisions depend only on per-sample geometry and dtypes, never on
the batch size, so the sequential reference and every batched path make
identical decisions.

Lowered-program cache
=====================

:func:`lower` memoises its result per (module identities, per-sample
geometry, quantisation, epilogue-add, rewrite set) so ``warm()``, healing
respawns, and hot-swapped deployments stop re-lowering — and re-quantising
— the same segment; :func:`plan_buffers` memoises per program.  Entries
are evicted by weakref callback the moment a source module is collected,
so a hot-swap that *replaces* modules can never hit a stale entry.
:func:`lower_cache_info` exposes hit/miss counters.

Environment
===========

``REPRO_NO_IR_REWRITES=1`` disables the whole rewrite pipeline (canonical
lowering only — the fallback path CI pins); ``REPRO_IR_REWRITES=a,b``
restricts it to a named subset.  Both are snapshotted at executor
construction, like ``kernel_backend``.  ``REPRO_NO_C_KERNEL=1`` disables
the native backend as before; the IR (and its rewrites) applies to the
numpy interpreter too.
"""

from __future__ import annotations

import os
import weakref
from dataclasses import dataclass, replace

import numpy as np

from repro.edge.quantization import (
    QuantizationParams,
    WeightQuantization,
    quantize_weights,
)
from repro.errors import ConfigurationError
from repro.nn import Linear
from repro.nn.im2col import conv_output_size
from repro.nn.layers.activation import ReLU
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.pooling import MaxPool2d

#: Rewrite names, in pipeline order.
FUSE_RELU = "fuse_relu"
FUSE_CONV_POOL = "fuse_conv_pool"
INT8_INGEST = "int8_ingest"
FOLD_EPILOGUE_ADD = "fold_epilogue_add"
INT8_WEIGHTS = "int8_weights"
#: The default pipeline: semantics-preserving rewrites only.
ALL_REWRITES = (FUSE_RELU, INT8_INGEST, FUSE_CONV_POOL, FOLD_EPILOGUE_ADD)
#: Accuracy-affecting rewrites a caller must explicitly request.
OPT_IN_REWRITES = (INT8_WEIGHTS,)
#: Every rewrite the pipeline can run, in application order.  Both
#: int8_weights and int8_ingest run before fuse_conv_pool: direct-kernel
#: eligibility (which gates pool fusion) depends on the final weight AND
#: input regime — a fully integer conv (quantised weights composed with
#: quantised ingest) runs on the integer matmul path, so the pool must
#: not have fused into it (native backends may still merge the pool at
#: record level, where the integer kernel can express it).
PIPELINE_ORDER = (FUSE_RELU, INT8_WEIGHTS, INT8_INGEST, FUSE_CONV_POOL, FOLD_EPILOGUE_ADD)
KNOWN_REWRITES = PIPELINE_ORDER

#: Kill-switch: any non-empty value disables every IR rewrite.
DISABLE_REWRITES_ENV_VAR = "REPRO_NO_IR_REWRITES"
#: Comma-separated allowlist restricting the pipeline to a subset.
SELECT_REWRITES_ENV_VAR = "REPRO_IR_REWRITES"

#: Stride-1 convs with output rows in this width range are eligible for
#: the direct (im2col-free) native kernel — and therefore for the fused
#: conv+pool rewrite, which rides on the direct kernel's 2-row tiles.
#: The ceiling is the direct kernel's accumulator-tile capacity (128
#: lanes).  A measured sweep (single-conv nets, c_in/c_out up to 32/64,
#: k∈{3,5}, ow∈[48,128]) had direct at 0.36–0.96x the im2col GEMM's
#: wall time at every width, so the window runs to the full capacity.
DIRECT_CONV_MIN_OW = 8
DIRECT_CONV_MAX_OW = 128

#: Integer-code dtypes a program input may carry (quantised uplinks).
CODE_DTYPES = {8: "u8", 16: "u16"}

#: Largest reduction depth K for which the fully integer u8×i8 path is
#: taken: per-product magnitude is ≤ 255·127 < 2**15, so any K below this
#: keeps the i32 accumulator exact.  Deeper ops fall back to the
#: float-widening path.  A per-geometry (never per-batch) decision.
INT8_ACC_MAX_K = 1 << 16


def default_rewrites() -> tuple[str, ...]:
    """The rewrite pipeline the environment configures.

    ``REPRO_NO_IR_REWRITES`` (any non-empty value) turns everything off;
    otherwise ``REPRO_IR_REWRITES`` may name a comma-separated subset —
    including the opt-in ``int8_weights``, which is otherwise never on by
    default.  Executors snapshot this once at construction.
    """
    if os.environ.get(DISABLE_REWRITES_ENV_VAR):
        return ()
    selected = os.environ.get(SELECT_REWRITES_ENV_VAR)
    if selected is None:
        return ALL_REWRITES
    names = tuple(name.strip() for name in selected.split(",") if name.strip())
    unknown = set(names) - set(KNOWN_REWRITES)
    if unknown:
        raise ConfigurationError(
            f"unknown IR rewrites in ${SELECT_REWRITES_ENV_VAR}: "
            f"{sorted(unknown)} (known: {list(KNOWN_REWRITES)})"
        )
    return tuple(name for name in PIPELINE_ORDER if name in names)


# ----------------------------------------------------------------------
# IR data model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TensorSpec:
    """Per-sample shape + dtype of a value flowing between ops.

    ``dtype`` is ``"f32"`` for float activations or ``"u8"``/``"u16"``
    for quantised integer codes (only ever a *program input*; every op
    output is f32).
    """

    shape: tuple[int, ...]
    dtype: str = "f32"

    @property
    def elements(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1

    @property
    def numpy_dtype(self) -> np.dtype:
        return np.dtype({"f32": np.float32, "u8": np.uint8, "u16": np.uint16}[self.dtype])


@dataclass(frozen=True)
class IROp:
    """One op of a lowered program.

    Geometry is per-sample; the batch dimension is an interpreter
    parameter.  Epilogue state (``relu``, ``pool``, ``dequant``,
    ``add_rows``) is what the rewrite pipeline edits; canonical lowering
    emits it all unset.

    Attributes:
        kind: ``"conv2d"`` | ``"linear"`` | ``"relu"`` | ``"maxpool2d"``
            | ``"flatten"``.
        in_spec / out_spec: Value specs around this op (``out_spec`` is
            the *pooled* shape when ``pool`` is set).
        kernel / stride / padding: Conv or pool window geometry.
        oh / ow: Conv (pre-pool) or pool output height/width.
        weight / bias: Parameter references — ``weight`` is the GEMM-ready
            ``(out_features, K)`` float32 view; live arrays, not copies.
        relu: Fused ReLU in the output epilogue.
        pool: Fused eval-mode 2x2/2 max pool after the (relu'd) conv.
        dequant: When set, the op consumes integer codes of these affine
            params and folds dequantisation into its epilogue.
        wq: When set (``int8_weights``), the op's arithmetic weight is the
            int8 code plane ``wq.codes`` with per-output-channel
            ``wq.scales`` applied in the epilogue; ``weight`` stays the
            live f32 reference for cost pricing only — backends must not
            touch it.
        add_rows: The op adds the program's extra per-row input tensor at
            its output write (the folded noise add).
        source: Layer indices (within the original Sequential) this op
            covers — cost attribution and debugging.
    """

    kind: str
    in_spec: TensorSpec
    out_spec: TensorSpec
    kernel: tuple[int, int] = (0, 0)
    stride: tuple[int, int] = (0, 0)
    padding: tuple[int, int] = (0, 0)
    oh: int = 0
    ow: int = 0
    weight: np.ndarray | None = None
    bias: np.ndarray | None = None
    relu: bool = False
    pool: bool = False
    dequant: QuantizationParams | None = None
    wq: WeightQuantization | None = None
    add_rows: bool = False
    source: tuple[int, ...] = ()

    # -- derived ------------------------------------------------------
    @property
    def macs(self) -> int:
        """Per-sample multiply-accumulates of this op (the §3.4 model)."""
        if self.kind == "conv2d":
            c_in = self.in_spec.shape[0]
            c_out = self.out_spec.shape[0]
            kh, kw = self.kernel
            # The cost model charges the conv at its own output plane even
            # when a fused pool discards the odd row/column tail — fusion
            # must not perturb the planner's Figure 6 products.
            return self.oh * self.ow * c_out * c_in * kh * kw
        if self.kind == "linear":
            return self.in_spec.elements * self.out_spec.elements
        return 0


#: How a program's extra per-row input (the noise add) is applied.
EXTRA_NONE = "none"          # no extra input
EXTRA_SEPARATE = "separate"  # interpreter adds it after the last op
EXTRA_FOLDED = "folded"      # last op absorbs it (fold_epilogue_add)


@dataclass(frozen=True)
class Program:
    """A lowered (and possibly rewritten) op program for one segment.

    Attributes:
        ops: The schedule, in execution order.
        in_spec: Per-sample input value ( ``u8``/``u16`` when the first op
            ingests quantised codes directly; otherwise callers must hand
            the interpreter a float32 input).
        out_spec: Per-sample output value (always f32).
        extra: :data:`EXTRA_NONE` / :data:`EXTRA_SEPARATE` /
            :data:`EXTRA_FOLDED` — the epilogue-add operand state.
        rewrites: The rewrite names that actually changed this program
            (diagnostics; equality of programs is structural).
    """

    ops: tuple[IROp, ...]
    in_spec: TensorSpec
    out_spec: TensorSpec
    extra: str = EXTRA_NONE
    rewrites: tuple[str, ...] = ()

    @property
    def consumes_codes(self) -> bool:
        """Whether the interpreter is handed raw quantised codes."""
        return self.in_spec.dtype != "f32"


@dataclass(frozen=True)
class BufferPlan:
    """Buffer lifetimes of a program under ping-pong arena execution.

    Every op reads its predecessor's output and writes the other arena
    (the last op writes the program output), so exactly two arenas of
    ``arena_elements`` floats per sample cover all intermediate values;
    ``scratch_elements`` sizes the shared per-sample im2col / padded-plane
    panel (with the direct kernel's fixed-width over-read slack included).

    Attributes:
        arena_elements: Per-sample float32 capacity each arena needs.
        scratch_elements: Per-sample float32 capacity of the shared panel.
        slots: Per-op destination: 0/1 for arena A/B, -1 for the program
            output buffer.
    """

    arena_elements: int
    scratch_elements: int
    slots: tuple[int, ...]


def direct_conv_eligible(op: IROp) -> bool:
    """Whether a conv op can run on the direct (im2col-free) kernel.

    Quantised-weight convs qualify too — the direct kernel carries an
    int8-weight variant that widens each code once per broadcast (the
    weight scalar feeds a whole lane tile, so the convert is amortised
    away) with the per-channel scales applied in the epilogue.  The one
    exclusion is the fully integer path: it consumes raw u8 codes, so it
    leaves this (float-plane) kernel for the integer matmul — which the
    native backend may itself realise as a packed integer direct kernel
    at record level.  ``int8_weights`` and ``int8_ingest`` must still be
    applied *before* ``fuse_conv_pool`` asks this question, so fusion
    sees the final weight and input regime.
    """
    return (
        op.kind == "conv2d"
        and op.stride == (1, 1)
        and DIRECT_CONV_MIN_OW <= op.ow <= DIRECT_CONV_MAX_OW
        and not integer_matmul_eligible(op)
    )


def reduction_depth(op: IROp) -> int:
    """K of the op's GEMM form: ``c_in·kh·kw`` for convs, features for linears."""
    if op.kind == "conv2d":
        return op.in_spec.shape[0] * op.kernel[0] * op.kernel[1]
    if op.kind == "linear":
        return op.in_spec.elements
    return 0


def integer_matmul_eligible(op: IROp) -> bool:
    """Whether the op runs the fully integer u8-act × i8-weight path.

    Requires quantised weights, a ≤8-bit code input (u8), and a reduction
    shallow enough that the i32 accumulator cannot overflow.  Convs that
    fused their trailing pool are excluded (a defensive guard — the
    pipeline orders ``int8_ingest`` before ``fuse_conv_pool`` exactly so
    integer convs keep a standalone pool op, which the native backend is
    free to merge back at record level where its integer kernel *can*
    express the pool epilogue).  Depends only on per-sample geometry and
    dtypes, so both backends — and the sequential reference — take the
    same path for the same op.
    """
    return (
        op.wq is not None
        and op.dequant is not None
        and op.dequant.bits <= 8
        and 0 < reduction_depth(op) < INT8_ACC_MAX_K
        and not op.pool
    )


def epilogue_constants(
    op: IROp, *, ingest: bool = True
) -> tuple[float, np.ndarray | None, np.ndarray | None]:
    """The affine constants an op's epilogue applies to its raw accumulator.

    Returns ``(scale, channel_scales, bias)`` such that the op's output is
    ``relu?(scale·acc + bias)`` when ``channel_scales`` is ``None``, or
    ``relu?(channel_scales[oc]·acc + bias[oc])`` otherwise.  All folds run
    in f64 and are stored f32 (the contract established by ``int8_ingest``):

    * plain op: ``(1.0, None, bias)``;
    * code ingest only: scalar dequant scale, bias corrected by
      ``−scale·zp·rowsum(W)``;
    * quantised weights only: per-channel ``wq.scales``, bias untouched
      (symmetric codes have zero point 0);
    * both composed: combined per-channel ``scale_act·wq.scales``, bias
      corrected by ``−comb·zp·rowsum(codes)``.

    ``ingest=False`` prices the epilogue as if the input were already
    dequantised f32 — the numpy fallback path that dequantises the code
    tensor before the op uses this.
    """
    dequant = op.dequant if ingest else None
    if op.wq is None and dequant is None:
        return 1.0, None, op.bias
    base = 0.0 if op.bias is None else op.bias.astype(np.float64)
    if op.wq is None:
        scale = float(dequant.scale)
        rowsum = op.weight.astype(np.float64).sum(axis=1)
        bias = np.ascontiguousarray(
            (base - scale * dequant.zero_point * rowsum).astype(np.float32)
        )
        return scale, None, bias
    w_scales = op.wq.scales.astype(np.float64)
    if dequant is None:
        return 1.0, np.ascontiguousarray(op.wq.scales), op.bias
    comb = float(dequant.scale) * w_scales
    rowsum = op.wq.codes.astype(np.float64).sum(axis=1)
    bias = np.ascontiguousarray(
        (base - comb * dequant.zero_point * rowsum).astype(np.float32)
    )
    return 1.0, np.ascontiguousarray(comb.astype(np.float32)), bias


def plan_buffers(program: Program) -> BufferPlan:
    """Derive arena/scratch sizes and per-op destinations for a program.

    Pure geometry — backends allocate what this says (the numpy
    interpreter sizes its reusable output buffers from the same specs).
    Memoised per program object (programs are frozen), so the plan is
    derived once however many executors interpret the same cached program.
    """
    entry = _PLAN_CACHE.get(id(program))
    if entry is not None and entry[0]() is program:
        return entry[1]
    plan = _plan_buffers_uncached(program)
    try:
        ref = weakref.ref(
            program, lambda _ref, key=id(program): _PLAN_CACHE.pop(key, None)
        )
    except TypeError:  # pragma: no cover - dataclasses are weakrefable
        return plan
    _PLAN_CACHE[id(program)] = (ref, plan)
    return plan


def _plan_buffers_uncached(program: Program) -> BufferPlan:
    arena = 0
    scratch = 1
    slots: list[int] = []
    which = 0
    compute_ops = [op for op in program.ops if op.kind != "flatten"]
    for index, op in enumerate(compute_ops):
        last = index == len(compute_ops) - 1
        slots.append(-1 if last else which)
        which ^= 1
        if not last:
            arena = max(arena, op.out_spec.elements)
        if op.kind == "conv2d":
            c_in, h, w = op.in_spec.shape
            kh, kw = op.kernel
            ph, pw = op.padding
            if direct_conv_eligible(op):
                # +64 slack floats: the fixed-width direct tile loads
                # (never stores) up to 31 lanes past a row's end.
                scratch = max(scratch, c_in * (h + 2 * ph) * (w + 2 * pw) + 64)
            else:
                scratch = max(scratch, c_in * kh * kw * op.oh * op.ow)
                if integer_matmul_eligible(op):
                    # The native backend may route this conv to its
                    # packed integer direct kernel, which stages a raw
                    # u8 padded-plane copy (quarter-width) plus vector
                    # over-read slack in the same scratch panel.
                    scratch = max(
                        scratch, c_in * (h + 2 * ph) * (w + 2 * pw) + 64
                    )
    # Flatten-only programs still need a (degenerate) plan.
    if not compute_ops:
        slots = []
    return BufferPlan(
        arena_elements=max(arena, 1),
        scratch_elements=scratch,
        slots=tuple(slots),
    )


# ----------------------------------------------------------------------
# Segmentation: which layers the IR can absorb
# ----------------------------------------------------------------------
def supported(module) -> bool:
    """Whether the IR can absorb this layer.

    Eval-mode dropout is the identity; training-mode dropout must stay on
    the python fallback so it raises exactly like the numpy handlers.
    """
    if isinstance(module, (Conv2d, Linear, ReLU, MaxPool2d, Flatten)):
        return True
    return isinstance(module, Dropout) and not module.training


def segment_modules(rows: list[tuple]) -> list[tuple[str, list[tuple]]]:
    """Split executor plan rows into ``("ir", rows)`` / ``("python", rows)``.

    ``rows`` are the executor's ``(index, module, handler)`` tuples; the
    split is purely by :func:`supported`, preserving order.  Lowering of
    the ``"ir"`` runs happens later, per batch geometry.
    """
    segments: list[tuple[str, list[tuple]]] = []
    current_kind: str | None = None
    current: list[tuple] = []
    for row in rows:
        kind = "ir" if supported(row[1]) else "python"
        if kind != current_kind and current:
            segments.append((current_kind, current))
            current = []
        current_kind = kind
        current.append(row)
    if current:
        segments.append((current_kind, current))
    return segments


# ----------------------------------------------------------------------
# Lowering (one pass, shared by every backend)
# ----------------------------------------------------------------------
def _lower_canonical(
    rows: list[tuple], input_shape: tuple[int, ...]
) -> list[IROp]:
    """Canonical (rewrite-free) lowering of one IR segment."""
    ops: list[IROp] = []
    shape = tuple(int(s) for s in input_shape)
    for row in rows:
        index, module = row[0], row[1]
        in_spec = TensorSpec(shape)
        if isinstance(module, Conv2d):
            c_in, h, w = shape
            if c_in != module.in_channels:
                raise ConfigurationError(
                    f"conv expects {module.in_channels} channels, segment "
                    f"carries {c_in}"
                )
            kh, kw = module.kernel_size
            sh, sw = module.stride
            ph, pw = module.padding
            oh = conv_output_size(h, kh, sh, ph)
            ow = conv_output_size(w, kw, sw, pw)
            c_out = module.out_channels
            weight = module.weight.data.reshape(c_out, c_in * kh * kw)
            if not weight.flags.c_contiguous:
                weight = np.ascontiguousarray(weight)
            shape = (c_out, oh, ow)
            ops.append(
                IROp(
                    kind="conv2d",
                    in_spec=in_spec,
                    out_spec=TensorSpec(shape),
                    kernel=(kh, kw),
                    stride=(sh, sw),
                    padding=(ph, pw),
                    oh=oh,
                    ow=ow,
                    weight=weight,
                    bias=None if module.bias is None else module.bias.data,
                    source=(index,),
                )
            )
        elif isinstance(module, Linear):
            in_f = int(np.prod(shape))
            if in_f != module.in_features:
                raise ConfigurationError(
                    f"linear expects {module.in_features} features, segment "
                    f"carries {in_f}"
                )
            shape = (module.out_features,)
            ops.append(
                IROp(
                    kind="linear",
                    in_spec=TensorSpec((in_f,)),
                    out_spec=TensorSpec(shape),
                    weight=module.weight.data,
                    bias=None if module.bias is None else module.bias.data,
                    source=(index,),
                )
            )
        elif isinstance(module, ReLU):
            ops.append(
                IROp(
                    kind="relu",
                    in_spec=in_spec,
                    out_spec=in_spec,
                    source=(index,),
                )
            )
        elif isinstance(module, MaxPool2d):
            c, h, w = shape
            kh, kw = module.kernel_size
            sh, sw = module.stride
            ph, pw = module.padding
            oh = conv_output_size(h, kh, sh, ph)
            ow = conv_output_size(w, kw, sw, pw)
            shape = (c, oh, ow)
            ops.append(
                IROp(
                    kind="maxpool2d",
                    in_spec=in_spec,
                    out_spec=TensorSpec(shape),
                    kernel=(kh, kw),
                    stride=(sh, sw),
                    padding=(ph, pw),
                    oh=oh,
                    ow=ow,
                    source=(index,),
                )
            )
        elif isinstance(module, Flatten):
            shape = (int(np.prod(shape)),)
            ops.append(
                IROp(
                    kind="flatten",
                    in_spec=in_spec,
                    out_spec=TensorSpec(shape),
                    source=(index,),
                )
            )
        elif isinstance(module, Dropout) and not module.training:
            continue  # identity at inference time
        else:  # pragma: no cover - segment_modules filters these out
            raise ConfigurationError(f"IR cannot lower {type(module).__name__}")
    return ops


# ----------------------------------------------------------------------
# Rewrites (pure Program -> Program)
# ----------------------------------------------------------------------
def _rewrite_fuse_relu(ops: list[IROp]) -> tuple[list[IROp], bool]:
    out: list[IROp] = []
    changed = False
    for op in ops:
        if (
            op.kind == "relu"
            and out
            and out[-1].kind in ("conv2d", "linear")
            and not out[-1].relu
        ):
            out[-1] = replace(
                out[-1], relu=True, source=out[-1].source + op.source
            )
            changed = True
        else:
            out.append(op)
    return out, changed


def _rewrite_int8_weights(ops: list[IROp]) -> tuple[list[IROp], bool]:
    """Quantise every conv/linear weight to per-channel int8 codes.

    Runs before ``fuse_conv_pool`` (as does ``int8_ingest``) so the
    pool-fusion pass judges direct-kernel eligibility against the final
    weight and input regime (fully integer convs leave the direct path;
    widened int8-weight convs keep it).  ``op.weight`` is kept as the
    live f32 reference (cost pricing); the arithmetic weight becomes
    ``op.wq.codes``.
    """
    out: list[IROp] = []
    changed = False
    for op in ops:
        if op.kind in ("conv2d", "linear") and op.weight is not None and op.wq is None:
            out.append(replace(op, wq=quantize_weights(op.weight, bits=8)))
            changed = True
        else:
            out.append(op)
    return out, changed


def _rewrite_fuse_conv_pool(ops: list[IROp]) -> tuple[list[IROp], bool]:
    out: list[IROp] = []
    changed = False
    for op in ops:
        if (
            op.kind == "maxpool2d"
            and op.kernel == (2, 2)
            and op.stride == (2, 2)
            and op.padding == (0, 0)
            and out
            and out[-1].kind == "conv2d"
            and not out[-1].pool
            and direct_conv_eligible(out[-1])
            # A degenerate (empty) pool output stays unfused.
            and out[-1].oh >= 2
            and out[-1].ow >= 2
        ):
            conv = out[-1]
            out[-1] = replace(
                conv,
                pool=True,
                out_spec=op.out_spec,
                source=conv.source + op.source,
            )
            changed = True
        else:
            out.append(op)
    return out, changed


def _rewrite_int8_ingest(
    ops: list[IROp], quantization: QuantizationParams
) -> tuple[list[IROp], TensorSpec | None, bool]:
    """Mark the first compute op as a direct code consumer, if it can be.

    Applies when the program starts with (flattens then) a conv or linear;
    flattens are free on contiguous memory, so codes flow through them.
    Returns the (possibly) updated ops, the new program input spec (or
    ``None`` when the rewrite does not apply), and the changed flag.
    """
    code_dtype = CODE_DTYPES[8 if quantization.bits <= 8 else 16]
    first = None
    for position, op in enumerate(ops):
        if op.kind == "flatten":
            continue
        first = position
        break
    if first is None or ops[first].kind not in ("conv2d", "linear"):
        return ops, None, False
    target = ops[first]
    rewritten = list(ops)
    rewritten[first] = replace(
        target,
        dequant=quantization,
        in_spec=TensorSpec(target.in_spec.shape, code_dtype),
    )
    in_spec = TensorSpec(ops[0].in_spec.shape, dtype=code_dtype)
    # Flattens ahead of the ingest op also carry the code dtype.
    for position in range(first):
        rewritten[position] = replace(
            rewritten[position],
            in_spec=TensorSpec(rewritten[position].in_spec.shape, code_dtype),
            out_spec=TensorSpec(rewritten[position].out_spec.shape, code_dtype),
        )
    return rewritten, in_spec, True


def _rewrite_fold_epilogue_add(ops: list[IROp]) -> tuple[list[IROp], bool]:
    """Let the last op absorb the program's extra per-row input."""
    if not ops:
        return ops, False
    # Trailing flattens are free reshapes; the add folds into the last
    # compute op and the reshape happens on top of it.
    last = len(ops) - 1
    while last >= 0 and ops[last].kind == "flatten":
        last -= 1
    if last < 0:
        return ops, False
    if ops[last].kind not in ("conv2d", "linear", "relu", "maxpool2d"):
        return ops, False
    rewritten = list(ops)
    rewritten[last] = replace(rewritten[last], add_rows=True)
    return rewritten, True


# ----------------------------------------------------------------------
# Lowered-program cache
# ----------------------------------------------------------------------
_LOWER_CACHE: dict[tuple, Program] = {}
_MODULE_REFS: dict[int, weakref.ref] = {}
_MODULE_KEYS: dict[int, set[tuple]] = {}
_PLAN_CACHE: dict[int, tuple[weakref.ref, BufferPlan]] = {}
_CACHE_COUNTERS = {"hits": 0, "misses": 0}


def _evict_module(module_id: int) -> None:
    """Drop every cached program that lowered this (now collected) module."""
    for key in _MODULE_KEYS.pop(module_id, ()):
        _LOWER_CACHE.pop(key, None)
    _MODULE_REFS.pop(module_id, None)


def _lower_cache_key(
    rows: list[tuple],
    input_shape: tuple[int, ...],
    quantization: QuantizationParams | None,
    epilogue_add: bool,
    rewrites: tuple[str, ...],
) -> tuple | None:
    """Cache key for one lowering request, or ``None`` if uncacheable.

    Module *identity* stands in for the module fingerprint: weights are
    live references, so the same module object always lowers to the same
    program.  A weakref callback per module evicts its keys on collection,
    which makes id reuse by a later module harmless.
    """
    try:
        for row in rows:
            module_id = id(row[1])
            if module_id not in _MODULE_REFS:
                _MODULE_REFS[module_id] = weakref.ref(
                    row[1], lambda _ref, module_id=module_id: _evict_module(module_id)
                )
    except TypeError:  # pragma: no cover - all repro layers are weakrefable
        return None
    return (
        tuple((int(row[0]), id(row[1])) for row in rows),
        tuple(int(s) for s in input_shape),
        quantization,
        bool(epilogue_add),
        tuple(rewrites),
    )


def lower_cache_info() -> dict[str, int]:
    """Hit/miss counters and current size of the lowered-program cache."""
    return {
        "hits": _CACHE_COUNTERS["hits"],
        "misses": _CACHE_COUNTERS["misses"],
        "size": len(_LOWER_CACHE),
    }


def lower_cache_clear() -> None:
    """Drop every cached program/plan and reset the counters (tests)."""
    _LOWER_CACHE.clear()
    _MODULE_REFS.clear()
    _MODULE_KEYS.clear()
    _PLAN_CACHE.clear()
    _CACHE_COUNTERS["hits"] = 0
    _CACHE_COUNTERS["misses"] = 0


def lower(
    rows: list[tuple],
    input_shape: tuple[int, ...],
    *,
    quantization: QuantizationParams | None = None,
    epilogue_add: bool = False,
    rewrites: tuple[str, ...] | None = None,
) -> Program:
    """Lower one IR segment and run the rewrite pipeline over it.

    Args:
        rows: ``(index, module, ...)`` plan rows of one ``"ir"`` segment.
        input_shape: Per-sample input shape of the segment.
        quantization: When the segment input is a quantised uplink, its
            affine params.  With the ``int8_ingest`` rewrite enabled and a
            foldable first op the returned program consumes the raw codes
            (``program.consumes_codes``); otherwise the caller must
            dequantise before interpreting (the fallback path).
        epilogue_add: Whether the caller will supply an extra per-row f32
            tensor to add to the program output (the noise add).  With
            ``fold_epilogue_add`` enabled and an absorbing last op the add
            runs inside that op's epilogue; otherwise ``program.extra`` is
            :data:`EXTRA_SEPARATE` and the interpreter adds it after.
        rewrites: Rewrite allowlist (default: :func:`default_rewrites`,
            i.e. the environment).  Order is fixed regardless of the
            listing order.

    Every decision here depends only on per-sample geometry and dtypes —
    never the batch size — which is what keeps rewrite choices identical
    between the sequential reference and any batched path.

    Results are memoised per (module identities, geometry, quantisation,
    epilogue-add, rewrites); see the module docstring and
    :func:`lower_cache_info`.
    """
    if rewrites is None:
        rewrites = default_rewrites()
    key = _lower_cache_key(rows, input_shape, quantization, epilogue_add, rewrites)
    if key is not None:
        cached = _LOWER_CACHE.get(key)
        if cached is not None:
            _CACHE_COUNTERS["hits"] += 1
            return cached
        _CACHE_COUNTERS["misses"] += 1
    program = _lower_uncached(
        rows,
        input_shape,
        quantization=quantization,
        epilogue_add=epilogue_add,
        rewrites=rewrites,
    )
    if key is not None:
        _LOWER_CACHE[key] = program
        for _index, module_id in key[0]:
            _MODULE_KEYS.setdefault(module_id, set()).add(key)
    return program


def _lower_uncached(
    rows: list[tuple],
    input_shape: tuple[int, ...],
    *,
    quantization: QuantizationParams | None,
    epilogue_add: bool,
    rewrites: tuple[str, ...],
) -> Program:
    ops = _lower_canonical(rows, input_shape)
    applied: list[str] = []
    if FUSE_RELU in rewrites:
        ops, changed = _rewrite_fuse_relu(ops)
        if changed:
            applied.append(FUSE_RELU)
    if INT8_WEIGHTS in rewrites:
        ops, changed = _rewrite_int8_weights(ops)
        if changed:
            applied.append(INT8_WEIGHTS)
    in_spec = TensorSpec(tuple(int(s) for s in input_shape))
    if quantization is not None and INT8_INGEST in rewrites:
        ops, code_spec, changed = _rewrite_int8_ingest(ops, quantization)
        if changed:
            in_spec = code_spec
            applied.append(INT8_INGEST)
    if FUSE_CONV_POOL in rewrites:
        ops, changed = _rewrite_fuse_conv_pool(ops)
        if changed:
            applied.append(FUSE_CONV_POOL)
    extra = EXTRA_NONE
    if epilogue_add:
        extra = EXTRA_SEPARATE
        if FOLD_EPILOGUE_ADD in rewrites:
            ops, changed = _rewrite_fold_epilogue_add(ops)
            if changed:
                extra = EXTRA_FOLDED
                applied.append(FOLD_EPILOGUE_ADD)
    out_spec = ops[-1].out_spec if ops else in_spec
    if ops and out_spec.dtype != "f32":  # pragma: no cover - codes never
        raise ConfigurationError("program output must be f32")  # leave a program
    return Program(
        ops=tuple(ops),
        in_spec=in_spec,
        out_spec=out_spec,
        extra=extra,
        rewrites=tuple(applied),
    )


# ----------------------------------------------------------------------
# Per-op cost model (consumed by repro.edge.costs / the planner)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OpCost:
    """Cost profile of one lowered op (per sample).

    Attributes:
        kind: Op kind.
        macs: Multiply-accumulates.
        output_elements: Elements of the op output.
        output_bytes: Bytes of the op output at its dtype width.
        weight_bytes: Bytes of the op's parameters at their *storage*
            dtype — 1 byte/element for int8-quantised weights (plus the
            f32 per-channel scales), 4 bytes/element otherwise.  This is
            the working-set figure the planner prices.
        source: Source layer indices.
    """

    kind: str
    macs: int
    output_elements: int
    output_bytes: int
    weight_bytes: int
    source: tuple[int, ...]


def op_weight_bytes(op: IROp) -> int:
    """Parameter bytes of one op at its arithmetic storage width."""
    total = 0
    if op.wq is not None:
        total += op.wq.code_bytes + op.wq.scales.size * 4
    elif op.weight is not None:
        total += int(op.weight.size) * 4
    if op.bias is not None:
        total += int(op.bias.size) * 4
    return total


def op_cost(op: IROp) -> OpCost:
    """The §3.4 cost entry for one IR op."""
    return OpCost(
        kind=op.kind,
        macs=op.macs,
        output_elements=op.out_spec.elements,
        output_bytes=op.out_spec.elements * op.out_spec.numpy_dtype.itemsize,
        weight_bytes=op_weight_bytes(op),
        source=op.source,
    )


def program_costs(program: Program) -> tuple[OpCost, ...]:
    """Per-op costs of a lowered program, in schedule order."""
    return tuple(op_cost(op) for op in program.ops)


def lower_module(
    module, input_shape: tuple[int, ...], *, weight_bits: int | None = None
) -> IROp | None:
    """Canonically lower a single layer, or ``None`` if the IR can't.

    The cost model uses this to price individual layers from the same
    lowering pass the executors run, instead of re-deriving MAC formulas
    per layer type.  Eval-mode dropout lowers to nothing and returns
    ``None`` too (it is free either way).  ``weight_bits=8`` prices the
    layer as the ``int8_weights`` rewrite would execute it (quantised
    storage width in :func:`op_cost`).
    """
    if not supported(module):
        return None
    ops = _lower_canonical([(0, module)], input_shape)
    if weight_bits == 8:
        ops, _changed = _rewrite_int8_weights(ops)
    return ops[0] if ops else None
