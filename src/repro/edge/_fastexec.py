"""Native IR interpreter for the serving executor (optional fast path).

The serving hot path runs a frozen eval-mode :class:`~repro.nn.Sequential`
over micro-batches of a few stacked requests.  At that scale the numpy
executor is dominated by per-op dispatch, the im2col materialisation, and
separate bias/ReLU/pool/noise passes — not by arithmetic.  This module
compiles (at first use, through :mod:`repro.native`) a small C library
that executes a **lowered op program** (:class:`repro.edge.ir.Program`)
in one call: the shared lowering pass in :mod:`repro.edge.ir` produces
the typed schedule, :class:`CompiledProgram` translates it into a flat
int64 record array for a fixed ``(batch, input_shape)``, and the C
interpreter runs it over ping-pong scratch arenas.  This backend owns no
lowering or fusion logic of its own — every rewrite decision is made on
the IR, which the numpy interpreter executes identically.

Kernels (float32 out; input may be f32 or quantised u8/u16 codes):

* ``conv2d`` — per-sample im2col into a scratch panel, then a
  register-blocked GEMM (4 output channels x 32 columns per tile, float
  accumulators) with the op epilogue fused into the tile: affine scale
  (folded dequantisation), bias, optional ReLU, optional per-row extra
  add.  Single-position convs (``OH*OW == 1``) reroute to the dot kernel.
* ``conv2d direct`` — stride-1 convs in the :data:`repro.edge.ir` direct
  eligibility window skip im2col and convolve a zero-padded plane copy
  (4 output channels x 2 output rows x <= 128 columns per tile); the same
  epilogue, plus an optional fused eval-mode 2x2/2 max pool reduced
  in-register over the 2-row tile before anything is stored.
* ``linear`` — row-blocked dot products (4 output features x 16 fixed
  lanes per row) with the same fused epilogue.
* ``maxpool2d`` / ``relu`` — standalone passes for ops the rewrite
  pipeline could not fuse, each absorbing the extra add when flagged.

Quantised ingest: when a record's input dtype is u8/u16, im2col panels
and padded planes are widened to float *code values* in-register (padding
carries the zero point, which dequantises to exactly 0.0) and the affine
dequantisation rides the epilogue as ``out = scale·acc + bias`` — the
bias having been pre-corrected by ``−scale·zp·Σw`` on the Python side.
No f32 dequantised copy of the activation ever exists.

Quantised weights (the opt-in ``int8_weights`` rewrite): a record whose
op carries int8 weight codes sets its weight-mode field and the GEMM/dot
kernels read the code plane directly — ``gemm_w8``/``linear_*_w8`` widen
int8 codes to float in-register against the float (or float-widened
code) panel (the linear variants convert each 256-term weight chunk once
per 16-sample block, bit-identical to the per-sample form), while the
fully integer variants (taken when composed with quantised ingest and
the reduction depth keeps an i32 accumulator exact — see
:func:`repro.edge.ir.integer_matmul_eligible`) multiply raw u8
activation codes against i8 weight codes with exact int32 accumulation:
``gemm_u8w8``/``linear_u8_i8`` on the im2col/dot path, and — where the
build host has AVX-512 VNNI — ``conv_vnni_u8i8``, a packed integer
direct conv that shuffles each padded u8 plane row into sliding 4-byte
windows (``vpermb``) and accumulates them against broadcast 4-tap weight
groups (``vpdpbusd``), with an optional record-level re-merge of the
trailing eval-mode 2x2/2 max pool into its epilogue.  Exact integer
accumulation makes every such schedule bit-identical, so the kernel
choice is free.  Either way the per-output-channel dequantisation scale
(and, composed, the combined activation·weight scale plus zero-point
row-sum correction) rides the same epilogue as a per-channel scale
vector.  No f32 dequantised copy of any weight ever exists in this
backend.  Whole-input convs (no padding, kernel == input plane) lower to
the batched linear record, skipping the per-sample im2col.

Determinism contract (what the serving parity guarantee needs): every
output element is produced by a *fixed* accumulation schedule — the GEMM
accumulates over ``k`` sequentially per element, the dot kernel uses a
fixed 16-lane split of ``k`` reduced in a fixed order — and conv/pool
kernels loop samples independently.  The epilogue is a fixed op sequence
(scale, bias, ReLU, pool max, extra add) whose disabled stages are exact
identities (``1.0f*x == x``), so results are bit-identical no matter how
requests are grouped into micro-batches (the batch-invariance property),
and identical across runs.  The native backend is *not* bit-identical to
the numpy backend (both are f32-exact to ~1e-6 relative of the float64
result); a deployment picks one backend at executor construction and
every path through it then agrees bitwise.

``REPRO_NO_C_KERNEL=1`` disables the library (callers keep the numpy
interpreter); ``REPRO_KERNEL_DIR`` relocates the compiled artifact cache.
"""

from __future__ import annotations

import ctypes

import numpy as np

from repro import native
from repro.edge import ir

#: Op codes understood by ``run_program`` (must match the C enum).
OP_CONV2D = 0
OP_LINEAR = 1
OP_RELU = 2
OP_MAXPOOL2D = 3
OP_CONV2D_DIRECT = 4

#: Direct-kernel eligibility window (owned by the IR; re-exported for the
#: differential tests that pin which lowering a geometry takes).
DIRECT_CONV_MIN_OW = ir.DIRECT_CONV_MIN_OW
DIRECT_CONV_MAX_OW = ir.DIRECT_CONV_MAX_OW

#: int64 fields per program record (op code + geometry + epilogue flags).
RECORD_FIELDS = 24

#: Record input-dtype codes (index 16): matches the C interpreter switch.
_DTYPE_CODES = {"f32": 0, "u8": 1, "u16": 2}

_SOURCE = r"""
#include <math.h>
#include <stdint.h>
#include <string.h>

/* ------------------------------------------------------------------ */
/* im2col: one sample (c_in, h, w) -> (c_in*kh*kw, oh*ow).  Generated  */
/* per (input dtype, panel dtype); integer codes widen to float in-    */
/* register on the float panels, stay raw codes on the u8 panel (the   */
/* fully integer path), and the padding value is the quantiser zero    */
/* point (0.0f for f32 inputs).                                        */
/* ------------------------------------------------------------------ */
#define DEF_IM2COL(NAME, TYPE, OTYPE)                                      \
static void NAME(const TYPE *restrict x,                                   \
                 int64_t c_in, int64_t h, int64_t w,                       \
                 int64_t kh, int64_t kw, int64_t sh, int64_t sw,           \
                 int64_t ph, int64_t pw, int64_t oh, int64_t ow,           \
                 float padv, OTYPE *restrict cols) {                       \
    /* Rows are short (tens of floats); inline copy loops beat the call   \
       overhead of memcpy/memset at this size. */                          \
    int64_t m = oh * ow;                                                   \
    OTYPE pv = (OTYPE)padv;                                                \
    for (int64_t c = 0; c < c_in; c++) {                                   \
        const TYPE *plane = x + c * h * w;                                 \
        for (int64_t ki = 0; ki < kh; ki++)                                \
            for (int64_t kj = 0; kj < kw; kj++) {                          \
                OTYPE *row = cols + ((c * kh + ki) * kw + kj) * m;         \
                for (int64_t oy = 0; oy < oh; oy++) {                      \
                    int64_t iy = oy * sh - ph + ki;                        \
                    OTYPE *restrict dst = row + oy * ow;                   \
                    if (iy < 0 || iy >= h) {                               \
                        for (int64_t j = 0; j < ow; j++) dst[j] = pv;      \
                        continue;                                          \
                    }                                                      \
                    const TYPE *src = plane + iy * w;                      \
                    if (sw == 1) {                                         \
                        int64_t ox0 = pw - kj;                             \
                        if (ox0 < 0) ox0 = 0;                              \
                        int64_t ox1 = w + pw - kj;                         \
                        if (ox1 > ow) ox1 = ow;                            \
                        const TYPE *restrict s = src - pw + kj;            \
                        for (int64_t j = 0; j < ox0; j++) dst[j] = pv;     \
                        for (int64_t j = ox0; j < ox1; j++)                \
                            dst[j] = (OTYPE)s[j];                          \
                        for (int64_t j = ox1; j < ow; j++) dst[j] = pv;    \
                    } else {                                               \
                        for (int64_t ox = 0; ox < ow; ox++) {              \
                            int64_t ix = ox * sw - pw + kj;                \
                            dst[ox] = (ix >= 0 && ix < w)                  \
                                          ? (OTYPE)src[ix] : pv;           \
                        }                                                  \
                    }                                                      \
                }                                                          \
            }                                                              \
    }                                                                      \
}

DEF_IM2COL(im2col_f32, float, float)
DEF_IM2COL(im2col_u8, uint8_t, float)
DEF_IM2COL(im2col_u16, uint16_t, float)
DEF_IM2COL(im2col_u8c, uint8_t, uint8_t)

/* Zero-padded plane copy feeding the direct conv kernel, also generated
   per input dtype with the zero point as the padding value. */
#define DEF_PADPLANE(NAME, TYPE)                                           \
static void NAME(const TYPE *restrict x, int64_t c_in, int64_t h,          \
                 int64_t w, int64_t ph, int64_t pw, float padv,            \
                 float *restrict xp) {                                     \
    int64_t hp = h + 2 * ph, wp = w + 2 * pw;                              \
    if (ph == 0 && pw == 0) {                                              \
        for (int64_t j = 0; j < c_in * h * w; j++) xp[j] = (float)x[j];    \
        return;                                                            \
    }                                                                      \
    for (int64_t j = 0; j < c_in * hp * wp; j++) xp[j] = padv;             \
    for (int64_t c = 0; c < c_in; c++)                                     \
        for (int64_t y = 0; y < h; y++) {                                  \
            float *restrict dst = xp + (c * hp + y + ph) * wp + pw;        \
            const TYPE *restrict src = x + (c * h + y) * w;                \
            for (int64_t j = 0; j < w; j++) dst[j] = (float)src[j];        \
        }                                                                  \
}

DEF_PADPLANE(pad_plane_f32, float)
DEF_PADPLANE(pad_plane_u8, uint8_t)
DEF_PADPLANE(pad_plane_u16, uint16_t)

/* Raw u8 plane copy (no widening) feeding the packed integer direct
   kernel; the padding byte is the quantiser zero point (which the
   folded row-sum correction dequantises to exactly 0).  Always copies
   — even unpadded — so the kernel's 64-byte vector over-reads land in
   scratch slack, never past the caller's input array. */
static void pad_plane_u8_raw(const uint8_t *restrict x, int64_t c_in,
                             int64_t h, int64_t w, int64_t ph, int64_t pw,
                             uint8_t padv, uint8_t *restrict xp) {
    int64_t hp = h + 2 * ph, wp = w + 2 * pw;
    if (ph == 0 && pw == 0) {
        memcpy(xp, x, (size_t)(c_in * h * w));
        return;
    }
    memset(xp, padv, (size_t)(c_in * hp * wp));
    for (int64_t c = 0; c < c_in; c++)
        for (int64_t y = 0; y < h; y++)
            memcpy(xp + (c * hp + y + ph) * wp + pw, x + (c * h + y) * w,
                   (size_t)w);
}

/* ------------------------------------------------------------------ */
/* GEMM out(c_out, m) = wmat(c_out, K) @ cols(K, m), epilogue fused:   */
/* scale (folded dequant — per-channel when cscale is non-NULL, the    */
/* int8-weight path), bias, ReLU, extra add.  4x32 register tiles;     */
/* every output element accumulates over k in fixed ascending order,   */
/* so results never depend on tile neighbours.  scale == 1.0f is an    */
/* exact identity, keeping the unquantised path bit-stable.  Generated */
/* per (weight dtype, panel dtype, accumulator): f32xf32->f32 (the     */
/* historical kernel, arithmetic unchanged), i8-weight x f32-panel     */
/* (codes widened in-register, f32 accumulation), and the fully        */
/* integer u8-panel x i8-weight with exact i32 accumulation (adds are  */
/* associative, so batch invariance holds by arithmetic alone).        */
/* ------------------------------------------------------------------ */
#define DEF_GEMM(NAME, WTYPE, BTYPE, ACC)                                  \
static void NAME##_tile(const WTYPE *restrict wmat,                        \
                        const BTYPE *restrict cols,                        \
                        const float *restrict bias,                        \
                        const float *restrict cscale, int64_t c_out,       \
                        int64_t K, int64_t m, int64_t oc, int64_t nr,      \
                        int64_t jb, int64_t mb, int relu, float scale,     \
                        const float *restrict extra,                       \
                        float *restrict out) {                             \
    ACC acc[4][32] __attribute__((aligned(64)));                           \
    for (int64_t r = 0; r < 4; r++)                                        \
        memset(acc[r], 0, mb * sizeof(ACC));                               \
    const WTYPE *w0 = wmat + oc * K;                                       \
    const WTYPE *w1 = wmat + (oc + (nr > 1)) * K;                          \
    const WTYPE *w2 = wmat + (oc + 2 * (nr > 2)) * K;                      \
    const WTYPE *w3 = wmat + (oc + 3 * (nr > 3)) * K;                      \
    if (mb == 32) {                                                        \
        for (int64_t k = 0; k < K; k++) {                                  \
            const BTYPE *restrict b = cols + k * m + jb;                   \
            ACC a0 = (ACC)w0[k], a1 = (ACC)w1[k];                          \
            ACC a2 = (ACC)w2[k], a3 = (ACC)w3[k];                          \
            for (int64_t j = 0; j < 32; j++) {                             \
                ACC v = (ACC)b[j];                                         \
                acc[0][j] += a0 * v;                                       \
                acc[1][j] += a1 * v;                                       \
                acc[2][j] += a2 * v;                                       \
                acc[3][j] += a3 * v;                                       \
            }                                                              \
        }                                                                  \
    } else {                                                               \
        for (int64_t k = 0; k < K; k++) {                                  \
            const BTYPE *restrict b = cols + k * m + jb;                   \
            ACC a0 = (ACC)w0[k], a1 = (ACC)w1[k];                          \
            ACC a2 = (ACC)w2[k], a3 = (ACC)w3[k];                          \
            for (int64_t j = 0; j < mb; j++) {                             \
                ACC v = (ACC)b[j];                                         \
                acc[0][j] += a0 * v;                                       \
                acc[1][j] += a1 * v;                                       \
                acc[2][j] += a2 * v;                                       \
                acc[3][j] += a3 * v;                                       \
            }                                                              \
        }                                                                  \
    }                                                                      \
    for (int64_t r = 0; r < nr; r++) {                                     \
        float bv = bias ? bias[oc + r] : 0.0f;                             \
        float sc = cscale ? cscale[oc + r] : scale;                        \
        float *restrict dst = out + (oc + r) * m + jb;                     \
        const float *restrict ex = extra ? extra + (oc + r) * m + jb : 0;  \
        const ACC *restrict a = acc[r];                                    \
        for (int64_t j = 0; j < mb; j++) {                                 \
            float v = sc * (float)a[j] + bv;                               \
            if (relu && v < 0.0f) v = 0.0f;                                \
            if (ex) v += ex[j];                                            \
            dst[j] = v;                                                    \
        }                                                                  \
    }                                                                      \
}                                                                          \
static void NAME(const WTYPE *restrict wmat, const BTYPE *restrict cols,   \
                 const float *restrict bias, const float *restrict cscale, \
                 int64_t c_out, int64_t K, int64_t m, int relu,            \
                 float scale, const float *restrict extra,                 \
                 float *restrict out) {                                    \
    for (int64_t jb = 0; jb < m; jb += 32) {                               \
        int64_t mb = m - jb;                                               \
        if (mb > 32) mb = 32;                                              \
        for (int64_t oc = 0; oc < c_out; oc += 4) {                        \
            int64_t nr = c_out - oc;                                       \
            if (nr > 4) nr = 4;                                            \
            NAME##_tile(wmat, cols, bias, cscale, c_out, K, m, oc, nr,     \
                        jb, mb, relu, scale, extra, out);                  \
        }                                                                  \
    }                                                                      \
}

DEF_GEMM(gemm_f32, float, float, float)
DEF_GEMM(gemm_w8, int8_t, float, float)
DEF_GEMM(gemm_u8w8, int8_t, uint8_t, int32_t)

/* ------------------------------------------------------------------ */
/* Row dot products: out(n, out_f) = x(n, in_f) @ wmat(out_f, in_f)^T */
/* 4 output features share each row load; 16 fixed accumulation lanes */
/* per dot product (lane of term k is k mod 16 — independent of n).   */
/* Generated per input dtype for quantised-code ingest.               */
/* ------------------------------------------------------------------ */
#define DEF_LINEAR(NAME, TYPE, WTYPE)                                      \
static void NAME(const TYPE *restrict x, const WTYPE *restrict wmat,       \
                 const float *restrict bias, const float *restrict cscale, \
                 int64_t n, int64_t in_f, int64_t out_f, int relu,         \
                 float scale, const float *restrict extra,                 \
                 float *restrict out) {                                    \
    for (int64_t i = 0; i < n; i++) {                                      \
        const TYPE *restrict row = x + i * in_f;                           \
        for (int64_t oc = 0; oc < out_f; oc += 4) {                        \
            int64_t nr = out_f - oc;                                       \
            if (nr > 4) nr = 4;                                            \
            const WTYPE *w0 = wmat + oc * in_f;                            \
            const WTYPE *w1 = wmat + (oc + (nr > 1)) * in_f;               \
            const WTYPE *w2 = wmat + (oc + 2 * (nr > 2)) * in_f;           \
            const WTYPE *w3 = wmat + (oc + 3 * (nr > 3)) * in_f;           \
            float l0[16] __attribute__((aligned(64))) = {0};               \
            float l1[16] __attribute__((aligned(64))) = {0};               \
            float l2[16] __attribute__((aligned(64))) = {0};               \
            float l3[16] __attribute__((aligned(64))) = {0};               \
            int64_t k = 0;                                                 \
            for (; k + 16 <= in_f; k += 16)                                \
                for (int64_t l = 0; l < 16; l++) {                         \
                    float v = (float)row[k + l];                           \
                    l0[l] += (float)w0[k + l] * v;                         \
                    l1[l] += (float)w1[k + l] * v;                         \
                    l2[l] += (float)w2[k + l] * v;                         \
                    l3[l] += (float)w3[k + l] * v;                         \
                }                                                          \
            if (k < in_f) {                                                \
                /* Zero-padded tail: the same 16-wide op sequence, so a    \
                   term's lane depends only on its k index. */             \
                float rb[16] __attribute__((aligned(64))) = {0};           \
                float wb0[16] = {0}, wb1[16] = {0};                        \
                float wb2[16] = {0}, wb3[16] = {0};                        \
                int64_t rem = in_f - k;                                    \
                for (int64_t l = 0; l < rem; l++) {                        \
                    rb[l] = (float)row[k + l];                             \
                    wb0[l] = (float)w0[k + l];                             \
                    wb1[l] = (float)w1[k + l];                             \
                    wb2[l] = (float)w2[k + l];                             \
                    wb3[l] = (float)w3[k + l];                             \
                }                                                          \
                for (int64_t l = 0; l < 16; l++) {                         \
                    float v = rb[l];                                       \
                    l0[l] += wb0[l] * v;                                   \
                    l1[l] += wb1[l] * v;                                   \
                    l2[l] += wb2[l] * v;                                   \
                    l3[l] += wb3[l] * v;                                   \
                }                                                          \
            }                                                              \
            float *lanes[4] = {l0, l1, l2, l3};                            \
            for (int64_t r = 0; r < nr; r++) {                             \
                const float *a = lanes[r];                                 \
                float s = 0.0f;                                            \
                for (int64_t l = 0; l < 16; l++) s += a[l];                \
                float sc = cscale ? cscale[oc + r] : scale;                \
                s = sc * s + (bias ? bias[oc + r] : 0.0f);                 \
                if (relu && s < 0.0f) s = 0.0f;                            \
                if (extra) s += extra[i * out_f + oc + r];                 \
                out[i * out_f + oc + r] = s;                               \
            }                                                              \
        }                                                                  \
    }                                                                      \
}

DEF_LINEAR(linear_f32, float, float)
DEF_LINEAR(linear_u8, uint8_t, float)
DEF_LINEAR(linear_u16, uint16_t, float)

/* int8-weight row dots, restructured so the code widening is shared:
   16-sample blocks x 4 output features x 256-term k chunks.  Each
   chunk's four weight rows are converted once into stack buffers and
   reused by every sample in the block (DEF_LINEAR would reconvert them
   per sample — the dominant cost of the widened path).  Per-sample
   accumulators keep DEF_LINEAR's exact 16-lane (k mod 16) discipline
   (chunks are 256 = 16*16 terms, so lane indices line up across chunk
   boundaries) and the zero-padded tail reproduces its 16-wide op
   sequence, so outputs are bit-identical to the per-sample form and
   batch invariance is unchanged.  Generated per input dtype for
   quantised-code ingest. */
#define DEF_LINEAR_W8(NAME, TYPE)                                           \
static void NAME(const TYPE *restrict x, const int8_t *restrict wmat,      \
                 const float *restrict bias, const float *restrict cscale, \
                 int64_t n, int64_t in_f, int64_t out_f, int relu,         \
                 float scale, const float *restrict extra,                 \
                 float *restrict out) {                                    \
    for (int64_t ib = 0; ib < n; ib += 16) {                               \
        int64_t ni = n - ib < 16 ? n - ib : 16;                            \
        for (int64_t oc = 0; oc < out_f; oc += 4) {                        \
            int64_t nr = out_f - oc;                                       \
            if (nr > 4) nr = 4;                                            \
            const int8_t *w0 = wmat + oc * in_f;                           \
            const int8_t *w1 = wmat + (oc + (nr > 1)) * in_f;              \
            const int8_t *w2 = wmat + (oc + 2 * (nr > 2)) * in_f;          \
            const int8_t *w3 = wmat + (oc + 3 * (nr > 3)) * in_f;          \
            float lanes[16][4][16] __attribute__((aligned(64)));           \
            memset(lanes, 0, sizeof(float) * (size_t)ni * 64);             \
            for (int64_t kb = 0; kb < in_f; kb += 256) {                   \
                int64_t kc = in_f - kb < 256 ? in_f - kb : 256;            \
                int64_t kfull = kc & ~(int64_t)15;                         \
                float wb0[256] __attribute__((aligned(64)));               \
                float wb1[256] __attribute__((aligned(64)));               \
                float wb2[256] __attribute__((aligned(64)));               \
                float wb3[256] __attribute__((aligned(64)));               \
                for (int64_t t = 0; t < kc; t++) {                         \
                    wb0[t] = (float)w0[kb + t];                            \
                    wb1[t] = (float)w1[kb + t];                            \
                    wb2[t] = (float)w2[kb + t];                            \
                    wb3[t] = (float)w3[kb + t];                            \
                }                                                          \
                for (int64_t t = kc; t < ((kc + 15) & ~(int64_t)15); t++) {\
                    wb0[t] = 0.0f; wb1[t] = 0.0f;                          \
                    wb2[t] = 0.0f; wb3[t] = 0.0f;                          \
                }                                                          \
                for (int64_t ii = 0; ii < ni; ii++) {                      \
                    const TYPE *restrict row = x + (ib + ii) * in_f + kb;  \
                    float (*restrict ln)[16] = lanes[ii];                  \
                    int64_t t = 0;                                         \
                    for (; t < kfull; t += 16)                             \
                        for (int64_t l = 0; l < 16; l++) {                 \
                            float v = (float)row[t + l];                   \
                            ln[0][l] += wb0[t + l] * v;                    \
                            ln[1][l] += wb1[t + l] * v;                    \
                            ln[2][l] += wb2[t + l] * v;                    \
                            ln[3][l] += wb3[t + l] * v;                    \
                        }                                                  \
                    if (t < kc) {                                          \
                        /* Zero-padded tail: the same 16-wide op          \
                           sequence, so a term's lane depends only on     \
                           its k index. */                                 \
                        float rb[16] __attribute__((aligned(64))) = {0};   \
                        for (int64_t l = 0; l < kc - t; l++)               \
                            rb[l] = (float)row[t + l];                     \
                        for (int64_t l = 0; l < 16; l++) {                 \
                            float v = rb[l];                               \
                            ln[0][l] += wb0[t + l] * v;                    \
                            ln[1][l] += wb1[t + l] * v;                    \
                            ln[2][l] += wb2[t + l] * v;                    \
                            ln[3][l] += wb3[t + l] * v;                    \
                        }                                                  \
                    }                                                      \
                }                                                          \
            }                                                              \
            for (int64_t ii = 0; ii < ni; ii++)                            \
                for (int64_t r = 0; r < nr; r++) {                         \
                    const float *a = lanes[ii][r];                         \
                    float s = 0.0f;                                        \
                    for (int64_t l = 0; l < 16; l++) s += a[l];            \
                    float sc = cscale ? cscale[oc + r] : scale;            \
                    s = sc * s + (bias ? bias[oc + r] : 0.0f);             \
                    if (relu && s < 0.0f) s = 0.0f;                        \
                    if (extra) s += extra[(ib + ii) * out_f + oc + r];     \
                    out[(ib + ii) * out_f + oc + r] = s;                   \
                }                                                          \
        }                                                                  \
    }                                                                      \
}

DEF_LINEAR_W8(linear_f32_w8, float)
DEF_LINEAR_W8(linear_u8_w8, uint8_t)
DEF_LINEAR_W8(linear_u16_w8, uint16_t)

/* Fully integer row dot products: u8 activation codes x i8 weight codes
   with exact int32 accumulation (a simple ascending-k loop — integer
   adds are associative, so no lane discipline is needed for batch
   invariance), per-channel scale + corrected bias in the f32 epilogue. */
static void linear_u8_i8(const uint8_t *restrict x,
                         const int8_t *restrict wmat,
                         const float *restrict bias,
                         const float *restrict cscale, int64_t n,
                         int64_t in_f, int64_t out_f, int relu, float scale,
                         const float *restrict extra, float *restrict out) {
    for (int64_t i = 0; i < n; i++) {
        const uint8_t *restrict row = x + i * in_f;
        for (int64_t oc = 0; oc < out_f; oc++) {
            const int8_t *restrict wr = wmat + oc * in_f;
            int32_t acc = 0;
            for (int64_t k = 0; k < in_f; k++)
                acc += (int32_t)wr[k] * (int32_t)row[k];
            float sc = cscale ? cscale[oc] : scale;
            float s = sc * (float)acc + (bias ? bias[oc] : 0.0f);
            if (relu && s < 0.0f) s = 0.0f;
            if (extra) s += extra[i * out_f + oc];
            out[i * out_f + oc] = s;
        }
    }
}

/* ------------------------------------------------------------------ */
/* Direct stride-1 conv from a zero-padded plane copy: same ascending */
/* (c, ki, kj) accumulation per output element as the GEMM path, but  */
/* no column panel — early layers are scratch-bandwidth bound, not    */
/* FLOP bound.  Tiles: 4 output channels x 2 output rows x <=128 cols */
/* (the eligibility window in repro.edge.ir caps ow at exactly that). */
/* An optional fused eval-mode 2x2/2 max pool reduces the 2-row tile  */
/* in-register: each pooled value is the max of the four epilogue     */
/* values the unfused conv would have stored, in the same compare     */
/* order the standalone pool uses — so fusion is bitwise neutral.     */
/* Generated per weight dtype: the int8-weight variant widens each    */
/* code once per broadcast (the scalar feeds a whole lane tile, so    */
/* the convert is amortised away) and applies the per-channel dequant */
/* scales in the epilogue (cscale non-NULL on that path).             */
/* ------------------------------------------------------------------ */
#define DEF_DIRECT_CONV(NAME, WTYPE)                                        \
static void NAME(const float *restrict xp,                                  \
                 const WTYPE *restrict wmat,                                \
                 const float *restrict bias,                                \
                 const float *restrict cscale,                              \
                 int64_t c_in, int64_t hp, int64_t wp,                      \
                 int64_t kh, int64_t kw,                                    \
                 int64_t oh, int64_t ow, int64_t c_out,                     \
                 int relu, float scale, int pool,                           \
                 int64_t poh, int64_t pow_,                                 \
                 const float *restrict extra,                               \
                 float *restrict out) {                                     \
    int64_t K = c_in * kh * kw;                                             \
    for (int64_t oc = 0; oc < c_out; oc += 4) {                             \
        int64_t nr = c_out - oc;                                            \
        if (nr > 4) nr = 4;                                                 \
        const WTYPE *w0 = wmat + oc * K;                                    \
        const WTYPE *w1 = wmat + (oc + (nr > 1)) * K;                       \
        const WTYPE *w2 = wmat + (oc + 2 * (nr > 2)) * K;                   \
        const WTYPE *w3 = wmat + (oc + 3 * (nr > 3)) * K;                   \
        for (int64_t oy = 0; oy < oh; oy += 2) {                            \
            int64_t tr = oh - oy < 2 ? oh - oy : 2;                         \
            float acc[4][2][128] __attribute__((aligned(64)));              \
            if (pool && (tr < 2 || oy / 2 >= poh)) continue; /* odd tail */ \
            if (ow <= 32) {                                                 \
                /* Fixed-width tile: lanes j >= ow compute garbage from     \
                   the scratch slack and are never stored; valid lanes      \
                   are untouched by them (independent accumulators). */     \
                for (int64_t r = 0; r < 4; r++)                             \
                    for (int64_t t = 0; t < 2; t++)                         \
                        for (int64_t j = 0; j < 32; j++)                    \
                            acc[r][t][j] = 0.0f;                            \
                int64_t k = 0;                                              \
                for (int64_t c = 0; c < c_in; c++)                          \
                    for (int64_t ki = 0; ki < kh; ki++)                     \
                        for (int64_t kj = 0; kj < kw; kj++, k++) {          \
                            float a0 = (float)w0[k], a1 = (float)w1[k];     \
                            float a2 = (float)w2[k], a3 = (float)w3[k];     \
                            const float *restrict b0 =                      \
                                xp + (c * hp + oy + ki) * wp + kj;          \
                            const float *restrict b1 = b0 + wp;             \
                            for (int64_t j = 0; j < 32; j++) {              \
                                float v = b0[j];                            \
                                acc[0][0][j] += a0 * v;                     \
                                acc[1][0][j] += a1 * v;                     \
                                acc[2][0][j] += a2 * v;                     \
                                acc[3][0][j] += a3 * v;                     \
                            }                                               \
                            if (tr == 2)                                    \
                                for (int64_t j = 0; j < 32; j++) {          \
                                    float v = b1[j];                        \
                                    acc[0][1][j] += a0 * v;                 \
                                    acc[1][1][j] += a1 * v;                 \
                                    acc[2][1][j] += a2 * v;                 \
                                    acc[3][1][j] += a3 * v;                 \
                                }                                           \
                        }                                                   \
            } else {                                                        \
                for (int64_t r = 0; r < 4; r++)                             \
                    for (int64_t t = 0; t < 2; t++)                         \
                        for (int64_t j = 0; j < ow; j++)                    \
                            acc[r][t][j] = 0.0f;                            \
                int64_t k = 0;                                              \
                for (int64_t c = 0; c < c_in; c++)                          \
                    for (int64_t ki = 0; ki < kh; ki++)                     \
                        for (int64_t kj = 0; kj < kw; kj++, k++) {          \
                            float a0 = (float)w0[k], a1 = (float)w1[k];     \
                            float a2 = (float)w2[k], a3 = (float)w3[k];     \
                            const float *restrict b0 =                      \
                                xp + (c * hp + oy + ki) * wp + kj;          \
                            const float *restrict b1 = b0 + wp;             \
                            for (int64_t j = 0; j < ow; j++) {              \
                                float v = b0[j];                            \
                                acc[0][0][j] += a0 * v;                     \
                                acc[1][0][j] += a1 * v;                     \
                                acc[2][0][j] += a2 * v;                     \
                                acc[3][0][j] += a3 * v;                     \
                            }                                               \
                            if (tr == 2)                                    \
                                for (int64_t j = 0; j < ow; j++) {          \
                                    float v = b1[j];                        \
                                    acc[0][1][j] += a0 * v;                 \
                                    acc[1][1][j] += a1 * v;                 \
                                    acc[2][1][j] += a2 * v;                 \
                                    acc[3][1][j] += a3 * v;                 \
                                }                                           \
                        }                                                   \
            }                                                               \
            for (int64_t r = 0; r < nr; r++) {                              \
                float bv = bias ? bias[oc + r] : 0.0f;                      \
                float sc = cscale ? cscale[oc + r] : scale;                 \
                if (pool) {                                                 \
                    int64_t py = oy / 2;                                    \
                    float *restrict dst =                                   \
                        out + ((oc + r) * poh + py) * pow_;                 \
                    const float *restrict ex =                              \
                        extra ? extra + ((oc + r) * poh + py) * pow_ : 0;   \
                    const float *restrict a0 = acc[r][0];                   \
                    const float *restrict a1 = acc[r][1];                   \
                    for (int64_t j = 0; j < pow_; j++) {                    \
                        float v00 = sc * a0[2 * j] + bv;                    \
                        float v01 = sc * a0[2 * j + 1] + bv;                \
                        float v10 = sc * a1[2 * j] + bv;                    \
                        float v11 = sc * a1[2 * j + 1] + bv;                \
                        if (relu) {                                         \
                            if (v00 < 0.0f) v00 = 0.0f;                     \
                            if (v01 < 0.0f) v01 = 0.0f;                     \
                            if (v10 < 0.0f) v10 = 0.0f;                     \
                            if (v11 < 0.0f) v11 = 0.0f;                     \
                        }                                                   \
                        float m0 = v00 > v01 ? v00 : v01;                   \
                        float m1 = v10 > v11 ? v10 : v11;                   \
                        float v = m0 > m1 ? m0 : m1;                        \
                        if (ex) v += ex[j];                                 \
                        dst[j] = v;                                         \
                    }                                                       \
                } else {                                                    \
                    for (int64_t t = 0; t < tr; t++) {                      \
                        float *restrict dst =                               \
                            out + ((oc + r) * oh + oy + t) * ow;            \
                        const float *restrict ex =                          \
                            extra ? extra + ((oc + r) * oh + oy + t) * ow   \
                                  : 0;                                      \
                        const float *restrict a = acc[r][t];                \
                        for (int64_t j = 0; j < ow; j++) {                  \
                            float v = sc * a[j] + bv;                       \
                            if (relu && v < 0.0f) v = 0.0f;                 \
                            if (ex) v += ex[j];                             \
                            dst[j] = v;                                     \
                        }                                                   \
                    }                                                       \
                }                                                           \
            }                                                               \
        }                                                                   \
    }                                                                       \
}

DEF_DIRECT_CONV(conv_direct_sample, float)
DEF_DIRECT_CONV(conv_direct_sample_w8, int8_t)

/* ------------------------------------------------------------------ */
/* Packed integer direct conv, compiled only where AVX-512 VNNI/VBMI   */
/* are available (has_vnni() reports it, so the record builder can     */
/* choose).  Sixteen output columns live across the i32 lanes of one   */
/* accumulator: per (channel, kernel-row) step, one unaligned 64-byte  */
/* load of the padded u8 plane row is shuffled (vpermb) into sliding   */
/* 4-byte windows, and vpdpbusd multiplies those against broadcast     */
/* 4-tap weight groups — the weights having been packed on the Python  */
/* side as (c_out, c_in*kh, G, 4) i8 with kw zero-padded to 4G taps    */
/* (zero taps add exactly 0 to the integer accumulator).  i32          */
/* accumulation is exact, hence associative, so this schedule is bit-  */
/* identical to the integer GEMM it replaces and batch-invariant by    */
/* arithmetic alone.  Tiles are 4 output channels x 2 rows x 16 cols   */
/* with the same (scale, bias, ReLU, 2x2 pool max, extra) epilogue     */
/* order as DEF_DIRECT_CONV.                                           */
/* ------------------------------------------------------------------ */
#if defined(__AVX512VNNI__) && defined(__AVX512VBMI__) && \
    defined(__AVX512VL__) && defined(__AVX512BW__)
#include <immintrin.h>
#define HAVE_VNNI 1

/* Byte 4j+t of window O selects source byte j+O+t: i32 lane j holds
   the 4 consecutive plane bytes starting at column j+O. */
#define WIN4(J, O) (uint8_t)((J) + (O)), (uint8_t)((J) + (O) + 1), \
                   (uint8_t)((J) + (O) + 2), (uint8_t)((J) + (O) + 3)
#define WIN64(O)                                                            \
    WIN4(0, O), WIN4(1, O), WIN4(2, O), WIN4(3, O), WIN4(4, O),             \
    WIN4(5, O), WIN4(6, O), WIN4(7, O), WIN4(8, O), WIN4(9, O),             \
    WIN4(10, O), WIN4(11, O), WIN4(12, O), WIN4(13, O), WIN4(14, O),        \
    WIN4(15, O)
static const uint8_t VNNI_IDX0[64] __attribute__((aligned(64))) = {WIN64(0)};
static const uint8_t VNNI_IDX1[64] __attribute__((aligned(64))) = {WIN64(4)};

static void conv_vnni_u8i8(const uint8_t *restrict xp,
                           const int8_t *restrict w4,
                           const float *restrict bias,
                           const float *restrict cscale,
                           int64_t c_in, int64_t hp, int64_t wp,
                           int64_t kh, int64_t G,
                           int64_t oh, int64_t ow, int64_t c_out,
                           int relu, float scale, int pool,
                           int64_t poh, int64_t pow_,
                           const float *restrict extra,
                           float *restrict out) {
    const __m512i idx0 = _mm512_load_si512(VNNI_IDX0);
    const __m512i idx1 = _mm512_load_si512(VNNI_IDX1);
    const int32_t *restrict wg = (const int32_t *)w4; /* (c_out, rows, G) */
    int64_t rows = c_in * kh;
    for (int64_t oc = 0; oc < c_out; oc += 4) {
        int64_t nr = c_out - oc;
        if (nr > 4) nr = 4;
        const int32_t *grows[4];
        grows[0] = wg + oc * rows * G;
        grows[1] = wg + (oc + (nr > 1)) * rows * G;
        grows[2] = wg + (oc + 2 * (nr > 2)) * rows * G;
        grows[3] = wg + (oc + 3 * (nr > 3)) * rows * G;
        for (int64_t oy = 0; oy < oh; oy += 2) {
            int64_t tr = oh - oy < 2 ? oh - oy : 2;
            if (pool && (tr < 2 || oy / 2 >= poh)) continue; /* odd tail */
            for (int64_t jb = 0; jb < ow; jb += 16) {
                int64_t nc = ow - jb < 16 ? ow - jb : 16;
                __m512i a[4][2];
                for (int64_t r = 0; r < 4; r++)
                    a[r][0] = a[r][1] = _mm512_setzero_si512();
                for (int64_t c = 0; c < c_in; c++)
                    for (int64_t ki = 0; ki < kh; ki++) {
                        const uint8_t *row0 =
                            xp + (c * hp + oy + ki) * wp + jb;
                        __m512i win0[2], win1[2];
                        __m512i v0 = _mm512_loadu_si512(row0);
                        win0[0] = _mm512_permutexvar_epi8(idx0, v0);
                        win0[1] = _mm512_permutexvar_epi8(idx1, v0);
                        if (tr == 2) {
                            __m512i v1 = _mm512_loadu_si512(row0 + wp);
                            win1[0] = _mm512_permutexvar_epi8(idx0, v1);
                            win1[1] = _mm512_permutexvar_epi8(idx1, v1);
                        }
                        int64_t kb = (c * kh + ki) * G;
                        for (int64_t g = 0; g < G; g++)
                            for (int64_t r = 0; r < 4; r++) {
                                __m512i wv =
                                    _mm512_set1_epi32(grows[r][kb + g]);
                                a[r][0] = _mm512_dpbusd_epi32(
                                    a[r][0], win0[g], wv);
                                if (tr == 2)
                                    a[r][1] = _mm512_dpbusd_epi32(
                                        a[r][1], win1[g], wv);
                            }
                    }
                int32_t acc[4][2][16] __attribute__((aligned(64)));
                for (int64_t r = 0; r < nr; r++) {
                    _mm512_store_si512(acc[r][0], a[r][0]);
                    _mm512_store_si512(acc[r][1], a[r][1]);
                }
                for (int64_t r = 0; r < nr; r++) {
                    float bv = bias ? bias[oc + r] : 0.0f;
                    float sc = cscale ? cscale[oc + r] : scale;
                    if (pool) {
                        /* jb is even (16-col tiles), so 2x2 pool pairs
                           never straddle a tile. */
                        int64_t py = oy / 2;
                        float *restrict dst =
                            out + ((oc + r) * poh + py) * pow_;
                        const float *restrict ex =
                            extra ? extra + ((oc + r) * poh + py) * pow_
                                  : 0;
                        int64_t jend = (jb + nc) / 2;
                        if (jend > pow_) jend = pow_;
                        for (int64_t j = jb / 2; j < jend; j++) {
                            int64_t x0 = 2 * j - jb;
                            float v00 = sc * (float)acc[r][0][x0] + bv;
                            float v01 = sc * (float)acc[r][0][x0 + 1] + bv;
                            float v10 = sc * (float)acc[r][1][x0] + bv;
                            float v11 = sc * (float)acc[r][1][x0 + 1] + bv;
                            if (relu) {
                                if (v00 < 0.0f) v00 = 0.0f;
                                if (v01 < 0.0f) v01 = 0.0f;
                                if (v10 < 0.0f) v10 = 0.0f;
                                if (v11 < 0.0f) v11 = 0.0f;
                            }
                            float m0 = v00 > v01 ? v00 : v01;
                            float m1 = v10 > v11 ? v10 : v11;
                            float v = m0 > m1 ? m0 : m1;
                            if (ex) v += ex[j];
                            dst[j] = v;
                        }
                    } else {
                        for (int64_t t = 0; t < tr; t++) {
                            float *restrict dst =
                                out + ((oc + r) * oh + oy + t) * ow + jb;
                            const float *restrict ex =
                                extra ? extra +
                                            ((oc + r) * oh + oy + t) * ow +
                                            jb
                                      : 0;
                            const int32_t *restrict av = acc[r][t];
                            for (int64_t j = 0; j < nc; j++) {
                                float v = sc * (float)av[j] + bv;
                                if (relu && v < 0.0f) v = 0.0f;
                                if (ex) v += ex[j];
                                dst[j] = v;
                            }
                        }
                    }
                }
            }
        }
    }
}
#else
#define HAVE_VNNI 0
#endif

/* Whether records may use wmode 3 (the packed VNNI integer direct
   conv).  A build-time property of this library artifact, so record
   streams are stable for the life of the process. */
int64_t has_vnni(void) { return HAVE_VNNI; }

/* ------------------------------------------------------------------ */
/* Max pooling with zero padding contributing to the max (matching    */
/* the numpy executor's padded-window reduction).                     */
/* ------------------------------------------------------------------ */
static void maxpool_planes(const float *restrict x, int64_t planes,
                           int64_t h, int64_t w, int64_t kh, int64_t kw,
                           int64_t sh, int64_t sw, int64_t ph, int64_t pw,
                           int64_t oh, int64_t ow, float *restrict out) {
    if (ph == 0 && pw == 0 && kh == 2 && kw == 2 && sh == 2 && sw == 2 &&
        2 * oh <= h && 2 * ow <= w) {
        /* The overwhelmingly common serving shape: branch-free 2x2/2. */
        for (int64_t p = 0; p < planes; p++) {
            const float *plane = x + p * h * w;
            float *restrict dst = out + p * oh * ow;
            for (int64_t oy = 0; oy < oh; oy++) {
                const float *restrict r0 = plane + 2 * oy * w;
                const float *restrict r1 = r0 + w;
                float *restrict d = dst + oy * ow;
                for (int64_t ox = 0; ox < ow; ox++) {
                    float a = r0[2 * ox], b = r0[2 * ox + 1];
                    float c = r1[2 * ox], e = r1[2 * ox + 1];
                    float m0 = a > b ? a : b;
                    float m1 = c > e ? c : e;
                    d[ox] = m0 > m1 ? m0 : m1;
                }
            }
        }
        return;
    }
    for (int64_t p = 0; p < planes; p++) {
        const float *plane = x + p * h * w;
        float *dst = out + p * oh * ow;
        for (int64_t oy = 0; oy < oh; oy++) {
            int64_t iy0 = oy * sh - ph;
            for (int64_t ox = 0; ox < ow; ox++) {
                int64_t ix0 = ox * sw - pw;
                float best = -INFINITY;
                if (iy0 >= 0 && ix0 >= 0 && iy0 + kh <= h && ix0 + kw <= w) {
                    /* Fully in bounds: no per-tap branches. */
                    for (int64_t ki = 0; ki < kh; ki++) {
                        const float *restrict src = plane + (iy0 + ki) * w + ix0;
                        for (int64_t kj = 0; kj < kw; kj++) {
                            float v = src[kj];
                            if (v > best) best = v;
                        }
                    }
                } else {
                    for (int64_t ki = 0; ki < kh; ki++) {
                        int64_t iy = iy0 + ki;
                        const float *src = plane + iy * w;
                        for (int64_t kj = 0; kj < kw; kj++) {
                            int64_t ix = ix0 + kj;
                            float v = (iy >= 0 && iy < h && ix >= 0 && ix < w)
                                          ? src[ix]
                                          : 0.0f;
                            if (v > best) best = v;
                        }
                    }
                }
                dst[oy * ow + ox] = best;
            }
        }
    }
}

/* ------------------------------------------------------------------ */
/* Program interpreter: one record per IR op, RECORD_FIELDS int64     */
/* each, plus one float (the epilogue scale) per record in fscale.    */
/* Fields: [op, relu, c_in, h, w, c_out, kh, kw, sh, sw, ph, pw, oh,  */
/*          ow, weight_index, bias_index, in_dtype, add_extra, pool,  */
/*          pool_oh, pool_ow, pad_value, wmode, cscale_index]         */
/* in_dtype (0=f32, 1=u8, 2=u16) is nonzero only on the first record  */
/* (quantised-code ingest); extra is the full-batch per-row tensor an */
/* add_extra op folds into its output write (the noise add).  wmode   */
/* (0=f32 weights, 1=i8 weight codes widened to float in-register,    */
/* 2=i8 weight codes on the fully integer u8-act path, 3=the packed   */
/* VNNI integer direct conv — only emitted when has_vnni()) selects   */
/* the kernel variant; cscale_index points into the weight table at   */
/* the per-output-channel f32 scale vector (-1: scalar fscale).       */
/* ------------------------------------------------------------------ */
#define REC 24

void run_program(const int64_t *restrict prog, const float *restrict fscale,
                 int64_t n_ops, int64_t n,
                 const void *restrict input, float *restrict output,
                 float *restrict arena_a, float *restrict arena_b,
                 float *restrict cols, const float **restrict weights,
                 const float *restrict extra) {
    const void *src = input;
    float *arenas[2] = {arena_a, arena_b};
    int which = 0;
    for (int64_t op = 0; op < n_ops; op++) {
        const int64_t *r = prog + op * REC;
        int64_t kind = r[0];
        int relu = (int)r[1];
        int64_t c_in = r[2], h = r[3], w = r[4], c_out = r[5];
        int64_t kh = r[6], kw = r[7], sh = r[8], sw = r[9];
        int64_t ph = r[10], pw = r[11], oh = r[12], ow = r[13];
        const float *wmat = r[14] >= 0 ? weights[r[14]] : 0;
        const float *bias = r[15] >= 0 ? weights[r[15]] : 0;
        int dtype = (int)r[16];
        const float *ex = r[17] ? extra : 0;
        int pool = (int)r[18];
        int64_t poh = r[19], pow_ = r[20];
        float padv = (float)r[21];
        int wmode = (int)r[22];
        const float *cscale = r[23] >= 0 ? weights[r[23]] : 0;
        float scale = fscale[op];
        float *dst = (op == n_ops - 1) ? output : arenas[which];
        which ^= 1;
        if (kind == 0) { /* conv2d via im2col + GEMM */
            int64_t m = oh * ow, K = c_in * kh * kw;
            for (int64_t s = 0; s < n; s++) {
                float *os = dst + s * c_out * m;
                const float *exs = ex ? ex + s * c_out * m : 0;
                if (wmode == 2) {
                    /* Fully integer: raw u8 codes panel (zero-point
                       padding), i8 weights, exact i32 accumulation. */
                    uint8_t *ucols = (uint8_t *)cols;
                    im2col_u8c((const uint8_t *)src + s * c_in * h * w,
                               c_in, h, w, kh, kw, sh, sw, ph, pw, oh, ow,
                               padv, ucols);
                    if (m == 1)
                        linear_u8_i8(ucols, (const int8_t *)wmat, bias,
                                     cscale, 1, K, c_out, relu, scale,
                                     exs, os);
                    else
                        gemm_u8w8((const int8_t *)wmat, ucols, bias, cscale,
                                  c_out, K, m, relu, scale, exs, os);
                    continue;
                }
                if (dtype == 1)
                    im2col_u8((const uint8_t *)src + s * c_in * h * w,
                              c_in, h, w, kh, kw, sh, sw, ph, pw, oh, ow,
                              padv, cols);
                else if (dtype == 2)
                    im2col_u16((const uint16_t *)src + s * c_in * h * w,
                               c_in, h, w, kh, kw, sh, sw, ph, pw, oh, ow,
                               padv, cols);
                else
                    im2col_f32((const float *)src + s * c_in * h * w,
                               c_in, h, w, kh, kw, sh, sw, ph, pw, oh, ow,
                               0.0f, cols);
                if (wmode == 1) {
                    if (m == 1)
                        linear_f32_w8(cols, (const int8_t *)wmat, bias,
                                      cscale, 1, K, c_out, relu, scale,
                                      exs, os);
                    else
                        gemm_w8((const int8_t *)wmat, cols, bias, cscale,
                                c_out, K, m, relu, scale, exs, os);
                } else if (m == 1)
                    linear_f32(cols, wmat, bias, cscale, 1, K, c_out, relu,
                               scale, exs, os);
                else
                    gemm_f32(wmat, cols, bias, cscale, c_out, K, m, relu,
                             scale, exs, os);
            }
        } else if (kind == 4) { /* conv2d, direct stride-1 kernel */
            int64_t out_es = pool ? c_out * poh * pow_ : c_out * oh * ow;
            int64_t hp = h + 2 * ph, wp = w + 2 * pw;
            for (int64_t s = 0; s < n; s++) {
#if HAVE_VNNI
                if (wmode == 3) { /* packed integer direct (VNNI) */
                    pad_plane_u8_raw((const uint8_t *)src + s * c_in * h * w,
                                     c_in, h, w, ph, pw, (uint8_t)r[21],
                                     (uint8_t *)cols);
                    conv_vnni_u8i8((const uint8_t *)cols,
                                   (const int8_t *)wmat, bias, cscale, c_in,
                                   hp, wp, kh, (kw + 3) / 4, oh, ow, c_out,
                                   relu, scale, pool, poh, pow_,
                                   ex ? ex + s * out_es : 0,
                                   dst + s * out_es);
                    continue;
                }
#endif
                if (dtype == 1)
                    pad_plane_u8((const uint8_t *)src + s * c_in * h * w,
                                 c_in, h, w, ph, pw, padv, cols);
                else if (dtype == 2)
                    pad_plane_u16((const uint16_t *)src + s * c_in * h * w,
                                  c_in, h, w, ph, pw, padv, cols);
                else
                    pad_plane_f32((const float *)src + s * c_in * h * w,
                                  c_in, h, w, ph, pw, 0.0f, cols);
                if (wmode == 1)
                    conv_direct_sample_w8(cols, (const int8_t *)wmat, bias,
                                          cscale, c_in, hp, wp, kh, kw, oh,
                                          ow, c_out, relu, scale, pool, poh,
                                          pow_, ex ? ex + s * out_es : 0,
                                          dst + s * out_es);
                else
                    conv_direct_sample(cols, wmat, bias, cscale, c_in, hp,
                                       wp, kh, kw, oh, ow, c_out, relu,
                                       scale, pool, poh, pow_,
                                       ex ? ex + s * out_es : 0,
                                       dst + s * out_es);
            }
        } else if (kind == 1) { /* linear: c_in = in_f, c_out = out_f */
            if (wmode == 2)
                linear_u8_i8((const uint8_t *)src, (const int8_t *)wmat,
                             bias, cscale, n, c_in, c_out, relu, scale, ex,
                             dst);
            else if (wmode == 1) {
                const int8_t *w8 = (const int8_t *)wmat;
                if (dtype == 1)
                    linear_u8_w8((const uint8_t *)src, w8, bias, cscale, n,
                                 c_in, c_out, relu, scale, ex, dst);
                else if (dtype == 2)
                    linear_u16_w8((const uint16_t *)src, w8, bias, cscale,
                                  n, c_in, c_out, relu, scale, ex, dst);
                else
                    linear_f32_w8((const float *)src, w8, bias, cscale, n,
                                  c_in, c_out, relu, scale, ex, dst);
            } else if (dtype == 1)
                linear_u8((const uint8_t *)src, wmat, bias, cscale, n, c_in,
                          c_out, relu, scale, ex, dst);
            else if (dtype == 2)
                linear_u16((const uint16_t *)src, wmat, bias, cscale, n,
                           c_in, c_out, relu, scale, ex, dst);
            else
                linear_f32((const float *)src, wmat, bias, cscale, n, c_in,
                           c_out, relu, scale, ex, dst);
        } else if (kind == 2) { /* standalone relu over c_in elems/sample */
            const float *restrict sf = (const float *)src;
            int64_t total = n * c_in;
            if (ex)
                for (int64_t j = 0; j < total; j++) {
                    float v = sf[j];
                    dst[j] = (v > 0.0f ? v : 0.0f) + ex[j];
                }
            else
                for (int64_t j = 0; j < total; j++) {
                    float v = sf[j];
                    dst[j] = v > 0.0f ? v : 0.0f;
                }
        } else { /* maxpool2d over n*c_in planes */
            maxpool_planes((const float *)src, n * c_in, h, w, kh, kw, sh,
                           sw, ph, pw, oh, ow, dst);
            if (ex) {
                int64_t total = n * c_in * oh * ow;
                for (int64_t j = 0; j < total; j++) dst[j] += ex[j];
            }
        }
        src = dst;
    }
}
"""


def _configure(lib: ctypes.CDLL) -> None:
    lib.run_program.argtypes = [
        ctypes.c_void_p,  # prog records
        ctypes.c_void_p,  # fscale (one float per record)
        ctypes.c_int64,   # n_ops
        ctypes.c_int64,   # n (batch rows)
        ctypes.c_void_p,  # input (f32 or quantised codes)
        ctypes.c_void_p,  # output
        ctypes.c_void_p,  # arena_a
        ctypes.c_void_p,  # arena_b
        ctypes.c_void_p,  # cols scratch
        ctypes.c_void_p,  # weights pointer table
        ctypes.c_void_p,  # extra per-row tensor (folded add), may be NULL
    ]
    lib.run_program.restype = None
    lib.has_vnni.argtypes = []
    lib.has_vnni.restype = ctypes.c_int64


_MODULE = native.KernelModule("fastexec", _SOURCE, _configure)


def available() -> bool:
    """Whether the compiled executor kernels can be used in this process."""
    return _MODULE.available()


def load() -> ctypes.CDLL | None:
    """The configured library (``None`` when unavailable or disabled)."""
    return _MODULE.load()


class CompiledProgram:
    """One lowered :class:`~repro.edge.ir.Program` bound to the native
    interpreter for a fixed ``(batch, input geometry)``.

    Translates the IR ops into the flat int64 record array the C side
    executes, resolves the buffer plan (:func:`repro.edge.ir.plan_buffers`)
    into ping-pong arenas and the im2col/plane scratch panel, builds the
    weight pointer table, and caches the argument list so a call is one
    dict hit plus one ctypes call.  ``flatten`` ops vanish here — the
    record stream is compute-only and the output buffer is allocated at
    the program's (possibly flattened) output spec.

    Weight/bias pointers reference the IR's live float32 arrays (views of
    the module parameters), so in-place weight updates stay visible;
    rebinding a parameter to a new array does not.  Dequant-folding and
    quantised-weight ops are the exception: their epilogue constants are
    frozen copies and their weight pointer is the int8 code plane held by
    the IR op.  Serving nets are frozen, which is the contract this
    backend is built for.  Quantised weights never get a float32 copy
    here — the code plane is the only weight operand the kernels read.
    """

    def __init__(self, program: ir.Program, n: int) -> None:
        lib = load()
        if lib is None:  # pragma: no cover - callers check available()
            raise RuntimeError("fastexec kernel unavailable")
        self._run = lib.run_program
        self.n = n
        self.program = program
        self.out_shape = program.out_spec.shape
        self.in_dtype = program.in_spec.numpy_dtype
        self.needs_extra = any(op.add_rows for op in program.ops)
        # Strong references keep the weight arrays alive behind the raw
        # pointers in the table.
        self._weight_arrays: list[np.ndarray] = []
        records: list[tuple] = []
        scales: list[float] = []

        def _index(array: np.ndarray | None) -> int:
            if array is None:
                return -1
            if array.dtype not in (np.float32, np.int8) or (
                not array.flags.c_contiguous
            ):
                raise TypeError(
                    "native kernels need contiguous float32/int8 weights"
                )
            self._weight_arrays.append(array)
            return len(self._weight_arrays) - 1

        lib_vnni = bool(lib.has_vnni())
        compute = [op for op in program.ops if op.kind != "flatten"]
        skip_next = False
        for pos, op in enumerate(compute):
            if skip_next:  # merged into the previous record
                skip_next = False
                continue
            dtype_code = _DTYPE_CODES[op.in_spec.dtype]
            add = int(op.add_rows)
            scale, cscale, bias = ir.epilogue_constants(op)
            zero_point = 0 if op.dequant is None else int(op.dequant.zero_point)
            if op.wq is not None:
                weight = op.wq.codes
                wmode = 2 if ir.integer_matmul_eligible(op) else 1
            else:
                weight, wmode = op.weight, 0
            if op.kind == "conv2d":
                c_in, h, w = op.in_spec.shape
                if op.padding == (0, 0) and op.kernel == (h, w) and not op.pool:
                    # A whole-input conv (oh == ow == 1, no padding) reads
                    # exactly the flattened sample in weight order, so it
                    # lowers to the linear record — one batched kernel
                    # call instead of an im2col + dot per sample.
                    records.append(
                        (OP_LINEAR, int(op.relu), op.in_spec.elements, 0, 0,
                         op.out_spec.elements, 0, 0, 0, 0, 0, 0, 0, 0,
                         _index(weight), _index(bias), dtype_code, add,
                         0, 0, 0, zero_point, wmode, _index(cscale))
                    )
                    scales.append(scale)
                    continue
                direct = ir.direct_conv_eligible(op)
                if op.pool and not direct:  # pragma: no cover - rewrite guard
                    raise AssertionError("fused pool requires the direct kernel")
                opcode = OP_CONV2D_DIRECT if direct else OP_CONV2D
                pool = int(op.pool)
                poh, pow_ = (op.out_spec.shape[1:] if op.pool else (0, 0))
                if (
                    wmode == 2
                    and lib_vnni
                    and op.stride == (1, 1)
                    and op.kernel[1] <= 8
                    and op.oh * op.ow > 1
                ):
                    # Upgrade the integer GEMM to the packed VNNI direct
                    # kernel: exact i32 accumulation makes the two
                    # schedules bit-identical, so this is purely a
                    # record-level choice.  The weight operand becomes a
                    # frozen (c_out, c_in*kh, G, 4) packing of the code
                    # plane with kw zero-padded to 4G taps — still int8
                    # codes, never a dequantised copy.
                    wmode = 3
                    opcode = OP_CONV2D_DIRECT
                    kh, kw = op.kernel
                    group_count = -(-kw // 4)
                    codes3 = weight.reshape(-1, c_in * kh, kw)
                    packed = np.zeros(
                        (codes3.shape[0], c_in * kh, 4 * group_count),
                        dtype=np.int8,
                    )
                    packed[:, :, :kw] = codes3
                    weight = np.ascontiguousarray(
                        packed.reshape(codes3.shape[0], -1)
                    )
                    nxt = compute[pos + 1] if pos + 1 < len(compute) else None
                    if (
                        nxt is not None
                        and nxt.kind == "maxpool2d"
                        and nxt.kernel == (2, 2)
                        and nxt.stride == (2, 2)
                        and nxt.padding == (0, 0)
                        and op.oh >= 2
                        and op.ow >= 2
                    ):
                        # The rewrite pipeline keeps integer convs
                        # unfused (the GEMM cannot pool); this kernel
                        # pools like the direct one, so merge the
                        # eval-mode 2x2/2 pool back at record level.
                        pool = 1
                        poh, pow_ = nxt.out_spec.shape[1:]
                        add = int(nxt.add_rows)
                        skip_next = True
                records.append(
                    (opcode, int(op.relu),
                     c_in, h, w, op.out_spec.shape[0], *op.kernel, *op.stride,
                     *op.padding, op.oh, op.ow, _index(weight),
                     _index(bias), dtype_code, add, pool, poh, pow_,
                     zero_point, wmode, _index(cscale))
                )
            elif op.kind == "linear":
                records.append(
                    (OP_LINEAR, int(op.relu), op.in_spec.elements, 0, 0,
                     op.out_spec.elements, 0, 0, 0, 0, 0, 0, 0, 0,
                     _index(weight), _index(bias), dtype_code, add,
                     0, 0, 0, zero_point, wmode, _index(cscale))
                )
            elif op.kind == "relu":
                records.append(
                    (OP_RELU, 0, op.in_spec.elements, 0, 0, 0, 0, 0, 0, 0,
                     0, 0, 0, 0, -1, -1, dtype_code, add, 0, 0, 0, 0, 0, -1)
                )
            elif op.kind == "maxpool2d":
                c, h, w = op.in_spec.shape
                records.append(
                    (OP_MAXPOOL2D, 0, c, h, w, 0, *op.kernel, *op.stride,
                     *op.padding, op.oh, op.ow, -1, -1, dtype_code, add,
                     0, 0, 0, 0, 0, -1)
                )
            else:  # pragma: no cover - lowering controls the op kinds
                raise ValueError(f"IR op {op.kind!r} has no native lowering")
            scales.append(scale)

        if not records:
            raise ValueError("cannot compile a program with no compute ops")
        plan = ir.plan_buffers(program)
        self._records = np.asarray(records, dtype=np.int64)
        if self._records.shape[1] != RECORD_FIELDS:  # pragma: no cover
            raise AssertionError("program record width drifted from the C side")
        self._scales = np.asarray(scales, dtype=np.float32)
        table = (ctypes.c_void_p * max(1, len(self._weight_arrays)))()
        for index, array in enumerate(self._weight_arrays):
            table[index] = array.ctypes.data
        self._weight_table = table
        self._arena_a = np.empty(n * plan.arena_elements, dtype=np.float32)
        self._arena_b = np.empty(n * plan.arena_elements, dtype=np.float32)
        # Zero-filled so the direct-conv over-read slack never sees
        # uninitialised (potentially denormal) memory.
        self._cols = np.zeros(plan.scratch_elements, dtype=np.float32)
        self._args = [
            self._records.ctypes.data,
            self._scales.ctypes.data,
            len(self._records),
            n,
            0,  # input pointer, set per call
            0,  # output pointer, set per call
            self._arena_a.ctypes.data,
            self._arena_b.ctypes.data,
            self._cols.ctypes.data,
            ctypes.addressof(self._weight_table),
            0,  # extra pointer, set per call
        ]

    def __call__(self, x: np.ndarray, extra: np.ndarray | None = None) -> np.ndarray:
        """Run the program on ``x``; returns a fresh float32 output array.

        ``extra`` is the full-batch per-row tensor a folded epilogue add
        consumes (required iff the program was lowered with one).
        """
        if self.needs_extra and extra is None:
            raise ValueError("program folds an epilogue add; extra is required")
        out = np.empty((self.n, *self.out_shape), dtype=np.float32)
        args = self._args
        args[4] = x.ctypes.data
        args[5] = out.ctypes.data
        args[10] = 0 if extra is None else extra.ctypes.data
        self._run(*args)
        return out
