"""Native inference kernels for the serving executor (optional fast path).

The serving hot path runs a frozen eval-mode :class:`~repro.nn.Sequential`
over micro-batches of a few stacked requests.  At that scale the numpy
executor is dominated by per-op dispatch, the im2col materialisation, and
separate bias/ReLU/pool passes — not by arithmetic.  This module compiles
(at first use, through :mod:`repro.native`) a small C library that runs a
whole network *segment* in **one call**: the Python side lowers the layer
list into a flat int64 op program once per (batch, shape), and the C
interpreter executes it over ping-pong scratch arenas.

Kernels (all float32 in/out):

* ``conv2d`` — per-sample im2col into a scratch panel, then a
  register-blocked GEMM (4 output channels x 32 columns per tile, float
  accumulators) with bias and optional ReLU fused into the tile epilogue.
  Single-position convs (``OH*OW == 1``) reroute to the dot kernel.
* ``linear`` — row-blocked dot products (4 output features x 16 fixed
  lanes per row) with fused bias + optional ReLU.
* ``maxpool2d`` — window max with the same zero-padding semantics as the
  numpy path (padding contributes ``0.0`` to the max).
* ``relu`` — standalone elementwise pass for activations that could not
  be fused into a producing conv/linear.

Determinism contract (what the serving parity guarantee needs): every
output element is produced by a *fixed* accumulation schedule — the GEMM
accumulates over ``k`` sequentially per element, the dot kernel uses a
fixed 16-lane split of ``k`` reduced in a fixed order — and conv/pool
kernels loop samples independently.  Results are therefore bit-identical
no matter how requests are grouped into micro-batches (the
batch-invariance property), and identical across runs.  The native
backend is *not* bit-identical to the numpy backend (both are f32-exact
to ~1e-6 relative of the float64 result); a deployment picks one backend
at executor construction and every path through it then agrees bitwise.

``REPRO_NO_C_KERNEL=1`` disables the library (callers keep the numpy
executor); ``REPRO_KERNEL_DIR`` relocates the compiled artifact cache.
"""

from __future__ import annotations

import ctypes

import numpy as np

from repro import native
from repro.nn.im2col import conv_output_size

#: Op codes understood by ``run_program`` (must match the C enum).
OP_CONV2D = 0
OP_LINEAR = 1
OP_RELU = 2
OP_MAXPOOL2D = 3
OP_CONV2D_DIRECT = 4

#: Stride-1 convs with output rows in this width range skip im2col and
#: run the direct kernel (25x less scratch traffic for early conv layers).
#: Below the minimum the fixed-width tiles waste most of their lanes and
#: the dot/GEMM path wins; above the maximum the accumulator tile spills.
DIRECT_CONV_MIN_OW = 8
DIRECT_CONV_MAX_OW = 64

#: int64 fields per program record (op code + geometry + flags).
RECORD_FIELDS = 16

_SOURCE = r"""
#include <math.h>
#include <stdint.h>
#include <string.h>

/* ------------------------------------------------------------------ */
/* im2col: one sample (c_in, h, w) -> (c_in*kh*kw, oh*ow), zero padded */
/* ------------------------------------------------------------------ */
static void im2col_sample(const float *restrict x,
                          int64_t c_in, int64_t h, int64_t w,
                          int64_t kh, int64_t kw, int64_t sh, int64_t sw,
                          int64_t ph, int64_t pw, int64_t oh, int64_t ow,
                          float *restrict cols) {
    /* Rows are short (tens of floats); inline copy loops beat the call
       overhead of memcpy/memset at this size. */
    int64_t m = oh * ow;
    for (int64_t c = 0; c < c_in; c++) {
        const float *plane = x + c * h * w;
        for (int64_t ki = 0; ki < kh; ki++)
            for (int64_t kj = 0; kj < kw; kj++) {
                float *row = cols + ((c * kh + ki) * kw + kj) * m;
                for (int64_t oy = 0; oy < oh; oy++) {
                    int64_t iy = oy * sh - ph + ki;
                    float *restrict dst = row + oy * ow;
                    if (iy < 0 || iy >= h) {
                        for (int64_t j = 0; j < ow; j++) dst[j] = 0.0f;
                        continue;
                    }
                    const float *src = plane + iy * w;
                    if (sw == 1) {
                        int64_t ox0 = pw - kj;
                        if (ox0 < 0) ox0 = 0;
                        int64_t ox1 = w + pw - kj;
                        if (ox1 > ow) ox1 = ow;
                        const float *restrict s = src - pw + kj;
                        for (int64_t j = 0; j < ox0; j++) dst[j] = 0.0f;
                        for (int64_t j = ox0; j < ox1; j++) dst[j] = s[j];
                        for (int64_t j = ox1; j < ow; j++) dst[j] = 0.0f;
                    } else {
                        for (int64_t ox = 0; ox < ow; ox++) {
                            int64_t ix = ox * sw - pw + kj;
                            dst[ox] = (ix >= 0 && ix < w) ? src[ix] : 0.0f;
                        }
                    }
                }
            }
    }
}

/* ------------------------------------------------------------------ */
/* GEMM out(c_out, m) = wmat(c_out, K) @ cols(K, m), fused bias+ReLU.  */
/* 4x32 register tiles; every output element accumulates over k in    */
/* fixed ascending order, so results never depend on tile neighbours. */
/* ------------------------------------------------------------------ */
static void gemm_tile(const float *restrict wmat, const float *restrict cols,
                      const float *restrict bias, int64_t c_out, int64_t K,
                      int64_t m, int64_t oc, int64_t nr, int64_t jb,
                      int64_t mb, int relu, float *restrict out) {
    float acc[4][32] __attribute__((aligned(64)));
    for (int64_t r = 0; r < 4; r++)
        memset(acc[r], 0, mb * sizeof(float));
    const float *w0 = wmat + oc * K;
    const float *w1 = wmat + (oc + (nr > 1)) * K;
    const float *w2 = wmat + (oc + 2 * (nr > 2)) * K;
    const float *w3 = wmat + (oc + 3 * (nr > 3)) * K;
    if (mb == 32) {
        for (int64_t k = 0; k < K; k++) {
            const float *restrict b = cols + k * m + jb;
            float a0 = w0[k], a1 = w1[k], a2 = w2[k], a3 = w3[k];
            for (int64_t j = 0; j < 32; j++) {
                float v = b[j];
                acc[0][j] += a0 * v;
                acc[1][j] += a1 * v;
                acc[2][j] += a2 * v;
                acc[3][j] += a3 * v;
            }
        }
    } else {
        for (int64_t k = 0; k < K; k++) {
            const float *restrict b = cols + k * m + jb;
            float a0 = w0[k], a1 = w1[k], a2 = w2[k], a3 = w3[k];
            for (int64_t j = 0; j < mb; j++) {
                float v = b[j];
                acc[0][j] += a0 * v;
                acc[1][j] += a1 * v;
                acc[2][j] += a2 * v;
                acc[3][j] += a3 * v;
            }
        }
    }
    for (int64_t r = 0; r < nr; r++) {
        float bv = bias ? bias[oc + r] : 0.0f;
        float *restrict dst = out + (oc + r) * m + jb;
        const float *restrict a = acc[r];
        for (int64_t j = 0; j < mb; j++) {
            float v = a[j] + bv;
            if (relu && v < 0.0f) v = 0.0f;
            dst[j] = v;
        }
    }
}

static void gemm_f32(const float *restrict wmat, const float *restrict cols,
                     const float *restrict bias, int64_t c_out, int64_t K,
                     int64_t m, int relu, float *restrict out) {
    for (int64_t jb = 0; jb < m; jb += 32) {
        int64_t mb = m - jb;
        if (mb > 32) mb = 32;
        for (int64_t oc = 0; oc < c_out; oc += 4) {
            int64_t nr = c_out - oc;
            if (nr > 4) nr = 4;
            gemm_tile(wmat, cols, bias, c_out, K, m, oc, nr, jb, mb, relu, out);
        }
    }
}

/* ------------------------------------------------------------------ */
/* Row dot products: out(n, out_f) = x(n, in_f) @ wmat(out_f, in_f)^T */
/* 4 output features share each row load; 16 fixed accumulation lanes */
/* per dot product (lane of term k is k mod 16 — independent of n).   */
/* ------------------------------------------------------------------ */
static void linear_rows(const float *restrict x, const float *restrict wmat,
                        const float *restrict bias, int64_t n, int64_t in_f,
                        int64_t out_f, int relu, float *restrict out) {
    for (int64_t i = 0; i < n; i++) {
        const float *restrict row = x + i * in_f;
        for (int64_t oc = 0; oc < out_f; oc += 4) {
            int64_t nr = out_f - oc;
            if (nr > 4) nr = 4;
            const float *w0 = wmat + oc * in_f;
            const float *w1 = wmat + (oc + (nr > 1)) * in_f;
            const float *w2 = wmat + (oc + 2 * (nr > 2)) * in_f;
            const float *w3 = wmat + (oc + 3 * (nr > 3)) * in_f;
            float l0[16] __attribute__((aligned(64))) = {0};
            float l1[16] __attribute__((aligned(64))) = {0};
            float l2[16] __attribute__((aligned(64))) = {0};
            float l3[16] __attribute__((aligned(64))) = {0};
            int64_t k = 0;
            for (; k + 16 <= in_f; k += 16)
                for (int64_t l = 0; l < 16; l++) {
                    float v = row[k + l];
                    l0[l] += w0[k + l] * v;
                    l1[l] += w1[k + l] * v;
                    l2[l] += w2[k + l] * v;
                    l3[l] += w3[k + l] * v;
                }
            if (k < in_f) {
                /* Zero-padded tail: the same 16-wide op sequence, so a
                   term's lane depends only on its k index. */
                float rb[16] __attribute__((aligned(64))) = {0};
                float wb0[16] = {0}, wb1[16] = {0}, wb2[16] = {0}, wb3[16] = {0};
                int64_t rem = in_f - k;
                memcpy(rb, row + k, rem * sizeof(float));
                memcpy(wb0, w0 + k, rem * sizeof(float));
                memcpy(wb1, w1 + k, rem * sizeof(float));
                memcpy(wb2, w2 + k, rem * sizeof(float));
                memcpy(wb3, w3 + k, rem * sizeof(float));
                for (int64_t l = 0; l < 16; l++) {
                    float v = rb[l];
                    l0[l] += wb0[l] * v;
                    l1[l] += wb1[l] * v;
                    l2[l] += wb2[l] * v;
                    l3[l] += wb3[l] * v;
                }
            }
            float *lanes[4] = {l0, l1, l2, l3};
            for (int64_t r = 0; r < nr; r++) {
                const float *a = lanes[r];
                float s = 0.0f;
                for (int64_t l = 0; l < 16; l++) s += a[l];
                if (bias) s += bias[oc + r];
                if (relu && s < 0.0f) s = 0.0f;
                out[i * out_f + oc + r] = s;
            }
        }
    }
}

/* ------------------------------------------------------------------ */
/* Direct stride-1 conv from a zero-padded plane copy: same ascending */
/* (c, ki, kj) accumulation per output element as the GEMM path, but  */
/* no column panel — early layers are scratch-bandwidth bound, not    */
/* FLOP bound.  Tiles: 4 output channels x 2 output rows x <= 64 cols.*/
/* ------------------------------------------------------------------ */
static void conv_direct_sample(const float *restrict xp,
                               const float *restrict wmat,
                               const float *restrict bias,
                               int64_t c_in, int64_t hp, int64_t wp,
                               int64_t kh, int64_t kw,
                               int64_t oh, int64_t ow, int64_t c_out,
                               int relu, float *restrict out) {
    int64_t K = c_in * kh * kw;
    for (int64_t oc = 0; oc < c_out; oc += 4) {
        int64_t nr = c_out - oc;
        if (nr > 4) nr = 4;
        const float *w0 = wmat + oc * K;
        const float *w1 = wmat + (oc + (nr > 1)) * K;
        const float *w2 = wmat + (oc + 2 * (nr > 2)) * K;
        const float *w3 = wmat + (oc + 3 * (nr > 3)) * K;
        for (int64_t oy = 0; oy < oh; oy += 2) {
            int64_t tr = oh - oy < 2 ? oh - oy : 2;
            float acc[4][2][64] __attribute__((aligned(64)));
            if (ow <= 32) {
                /* Fixed-width tile: lanes j >= ow compute garbage from the
                   scratch slack and are never stored; valid lanes are
                   untouched by them (independent accumulator chains). */
                for (int64_t r = 0; r < 4; r++)
                    for (int64_t t = 0; t < 2; t++)
                        for (int64_t j = 0; j < 32; j++) acc[r][t][j] = 0.0f;
                int64_t k = 0;
                for (int64_t c = 0; c < c_in; c++)
                    for (int64_t ki = 0; ki < kh; ki++)
                        for (int64_t kj = 0; kj < kw; kj++, k++) {
                            float a0 = w0[k], a1 = w1[k], a2 = w2[k], a3 = w3[k];
                            const float *restrict b0 =
                                xp + (c * hp + oy + ki) * wp + kj;
                            const float *restrict b1 = b0 + wp;
                            for (int64_t j = 0; j < 32; j++) {
                                float v = b0[j];
                                acc[0][0][j] += a0 * v;
                                acc[1][0][j] += a1 * v;
                                acc[2][0][j] += a2 * v;
                                acc[3][0][j] += a3 * v;
                            }
                            if (tr == 2)
                                for (int64_t j = 0; j < 32; j++) {
                                    float v = b1[j];
                                    acc[0][1][j] += a0 * v;
                                    acc[1][1][j] += a1 * v;
                                    acc[2][1][j] += a2 * v;
                                    acc[3][1][j] += a3 * v;
                                }
                        }
            } else {
                for (int64_t r = 0; r < 4; r++)
                    for (int64_t t = 0; t < 2; t++)
                        for (int64_t j = 0; j < ow; j++) acc[r][t][j] = 0.0f;
                int64_t k = 0;
                for (int64_t c = 0; c < c_in; c++)
                    for (int64_t ki = 0; ki < kh; ki++)
                        for (int64_t kj = 0; kj < kw; kj++, k++) {
                            float a0 = w0[k], a1 = w1[k], a2 = w2[k], a3 = w3[k];
                            const float *restrict b0 =
                                xp + (c * hp + oy + ki) * wp + kj;
                            const float *restrict b1 = b0 + wp;
                            for (int64_t j = 0; j < ow; j++) {
                                float v = b0[j];
                                acc[0][0][j] += a0 * v;
                                acc[1][0][j] += a1 * v;
                                acc[2][0][j] += a2 * v;
                                acc[3][0][j] += a3 * v;
                            }
                            if (tr == 2)
                                for (int64_t j = 0; j < ow; j++) {
                                    float v = b1[j];
                                    acc[0][1][j] += a0 * v;
                                    acc[1][1][j] += a1 * v;
                                    acc[2][1][j] += a2 * v;
                                    acc[3][1][j] += a3 * v;
                                }
                        }
            }
            for (int64_t r = 0; r < nr; r++) {
                float bv = bias ? bias[oc + r] : 0.0f;
                for (int64_t t = 0; t < tr; t++) {
                    float *restrict dst = out + ((oc + r) * oh + oy + t) * ow;
                    const float *restrict a = acc[r][t];
                    for (int64_t j = 0; j < ow; j++) {
                        float v = a[j] + bv;
                        if (relu && v < 0.0f) v = 0.0f;
                        dst[j] = v;
                    }
                }
            }
        }
    }
}

static void pad_plane_copy(const float *restrict x, int64_t c_in, int64_t h,
                           int64_t w, int64_t ph, int64_t pw,
                           float *restrict xp) {
    int64_t hp = h + 2 * ph, wp = w + 2 * pw;
    if (ph == 0 && pw == 0) {
        for (int64_t j = 0; j < c_in * h * w; j++) xp[j] = x[j];
        return;
    }
    for (int64_t j = 0; j < c_in * hp * wp; j++) xp[j] = 0.0f;
    for (int64_t c = 0; c < c_in; c++)
        for (int64_t y = 0; y < h; y++) {
            float *restrict dst = xp + (c * hp + y + ph) * wp + pw;
            const float *restrict src = x + (c * h + y) * w;
            for (int64_t j = 0; j < w; j++) dst[j] = src[j];
        }
}

/* ------------------------------------------------------------------ */
/* Max pooling with zero padding contributing to the max (matching    */
/* the numpy executor's padded-window reduction).                     */
/* ------------------------------------------------------------------ */
static void maxpool_planes(const float *restrict x, int64_t planes,
                           int64_t h, int64_t w, int64_t kh, int64_t kw,
                           int64_t sh, int64_t sw, int64_t ph, int64_t pw,
                           int64_t oh, int64_t ow, float *restrict out) {
    if (ph == 0 && pw == 0 && kh == 2 && kw == 2 && sh == 2 && sw == 2 &&
        2 * oh <= h && 2 * ow <= w) {
        /* The overwhelmingly common serving shape: branch-free 2x2/2. */
        for (int64_t p = 0; p < planes; p++) {
            const float *plane = x + p * h * w;
            float *restrict dst = out + p * oh * ow;
            for (int64_t oy = 0; oy < oh; oy++) {
                const float *restrict r0 = plane + 2 * oy * w;
                const float *restrict r1 = r0 + w;
                float *restrict d = dst + oy * ow;
                for (int64_t ox = 0; ox < ow; ox++) {
                    float a = r0[2 * ox], b = r0[2 * ox + 1];
                    float c = r1[2 * ox], e = r1[2 * ox + 1];
                    float m0 = a > b ? a : b;
                    float m1 = c > e ? c : e;
                    d[ox] = m0 > m1 ? m0 : m1;
                }
            }
        }
        return;
    }
    for (int64_t p = 0; p < planes; p++) {
        const float *plane = x + p * h * w;
        float *dst = out + p * oh * ow;
        for (int64_t oy = 0; oy < oh; oy++) {
            int64_t iy0 = oy * sh - ph;
            for (int64_t ox = 0; ox < ow; ox++) {
                int64_t ix0 = ox * sw - pw;
                float best = -INFINITY;
                if (iy0 >= 0 && ix0 >= 0 && iy0 + kh <= h && ix0 + kw <= w) {
                    /* Fully in bounds: no per-tap branches. */
                    for (int64_t ki = 0; ki < kh; ki++) {
                        const float *restrict src = plane + (iy0 + ki) * w + ix0;
                        for (int64_t kj = 0; kj < kw; kj++) {
                            float v = src[kj];
                            if (v > best) best = v;
                        }
                    }
                } else {
                    for (int64_t ki = 0; ki < kh; ki++) {
                        int64_t iy = iy0 + ki;
                        const float *src = plane + iy * w;
                        for (int64_t kj = 0; kj < kw; kj++) {
                            int64_t ix = ix0 + kj;
                            float v = (iy >= 0 && iy < h && ix >= 0 && ix < w)
                                          ? src[ix]
                                          : 0.0f;
                            if (v > best) best = v;
                        }
                    }
                }
                dst[oy * ow + ox] = best;
            }
        }
    }
}

/* ------------------------------------------------------------------ */
/* Program interpreter: one record per op, RECORD_FIELDS int64 each.  */
/* Fields: [op, relu, c_in, h, w, c_out, kh, kw, sh, sw, ph, pw, oh,  */
/*          ow, weight_index, bias_index]                             */
/* ------------------------------------------------------------------ */
#define REC 16

void run_program(const int64_t *restrict prog, int64_t n_ops, int64_t n,
                 const float *restrict input, float *restrict output,
                 float *restrict arena_a, float *restrict arena_b,
                 float *restrict cols, const float **restrict weights) {
    const float *src = input;
    float *arenas[2] = {arena_a, arena_b};
    int which = 0;
    for (int64_t op = 0; op < n_ops; op++) {
        const int64_t *r = prog + op * REC;
        int64_t kind = r[0];
        int relu = (int)r[1];
        int64_t c_in = r[2], h = r[3], w = r[4], c_out = r[5];
        int64_t kh = r[6], kw = r[7], sh = r[8], sw = r[9];
        int64_t ph = r[10], pw = r[11], oh = r[12], ow = r[13];
        const float *wmat = r[14] >= 0 ? weights[r[14]] : 0;
        const float *bias = r[15] >= 0 ? weights[r[15]] : 0;
        float *dst = (op == n_ops - 1) ? output : arenas[which];
        which ^= 1;
        if (kind == 0) { /* conv2d via im2col + GEMM */
            int64_t m = oh * ow, K = c_in * kh * kw;
            for (int64_t s = 0; s < n; s++) {
                const float *xs = src + s * c_in * h * w;
                float *os = dst + s * c_out * m;
                im2col_sample(xs, c_in, h, w, kh, kw, sh, sw, ph, pw, oh, ow,
                              cols);
                if (m == 1)
                    linear_rows(cols, wmat, bias, 1, K, c_out, relu, os);
                else
                    gemm_f32(wmat, cols, bias, c_out, K, m, relu, os);
            }
        } else if (kind == 4) { /* conv2d, direct stride-1 kernel */
            int64_t hp = h + 2 * ph, wp = w + 2 * pw;
            for (int64_t s = 0; s < n; s++) {
                pad_plane_copy(src + s * c_in * h * w, c_in, h, w, ph, pw,
                               cols);
                conv_direct_sample(cols, wmat, bias, c_in, hp, wp, kh, kw,
                                   oh, ow, c_out, relu,
                                   dst + s * c_out * oh * ow);
            }
        } else if (kind == 1) { /* linear: c_in = in_f, c_out = out_f */
            linear_rows(src, wmat, bias, n, c_in, c_out, relu, dst);
        } else if (kind == 2) { /* standalone relu over c_in elems/sample */
            int64_t total = n * c_in;
            for (int64_t j = 0; j < total; j++) {
                float v = src[j];
                dst[j] = v > 0.0f ? v : 0.0f;
            }
        } else { /* maxpool2d over n*c_in planes */
            maxpool_planes(src, n * c_in, h, w, kh, kw, sh, sw, ph, pw, oh,
                           ow, dst);
        }
        src = dst;
    }
}
"""


def _configure(lib: ctypes.CDLL) -> None:
    lib.run_program.argtypes = [
        ctypes.c_void_p,  # prog
        ctypes.c_int64,   # n_ops
        ctypes.c_int64,   # n (batch rows)
        ctypes.c_void_p,  # input
        ctypes.c_void_p,  # output
        ctypes.c_void_p,  # arena_a
        ctypes.c_void_p,  # arena_b
        ctypes.c_void_p,  # cols scratch
        ctypes.c_void_p,  # weights pointer table
    ]
    lib.run_program.restype = None


_MODULE = native.KernelModule("fastexec", _SOURCE, _configure)


def available() -> bool:
    """Whether the compiled executor kernels can be used in this process."""
    return _MODULE.available()


def load() -> ctypes.CDLL | None:
    """The configured library (``None`` when unavailable or disabled)."""
    return _MODULE.load()


class CompiledProgram:
    """One network segment lowered to a flat op program for a fixed
    ``(batch, input_shape)``.

    The executor hands over a list of *steps* — ``("conv", module, relu)``,
    ``("linear", module, relu)``, ``("maxpool", module)``, ``("relu",)`` —
    and this class resolves the geometry, builds the int64 record array,
    the weight pointer table, and the ping-pong scratch arenas, and caches
    the argument list so a call is one dict hit plus one ctypes call.

    Weight/bias pointers reference the modules' live float32 arrays (a
    reshape view for conv filters), so in-place weight updates stay
    visible; rebinding a parameter to a new array does not.  Serving nets
    are frozen, which is the contract this backend is built for.
    """

    def __init__(
        self, steps: list[tuple], n: int, input_shape: tuple[int, ...]
    ) -> None:
        lib = load()
        if lib is None:  # pragma: no cover - callers check available()
            raise RuntimeError("fastexec kernel unavailable")
        self._run = lib.run_program
        self.n = n
        # Strong references keep the weight arrays alive behind the raw
        # pointers in the table.
        self._weight_arrays: list[np.ndarray] = []
        records: list[tuple] = []
        shape = tuple(input_shape)
        arena_elems = 0
        cols_elems = 1

        def _index(array: np.ndarray | None) -> int:
            if array is None:
                return -1
            if array.dtype != np.float32 or not array.flags.c_contiguous:
                raise TypeError("native kernels need contiguous float32 weights")
            self._weight_arrays.append(array)
            return len(self._weight_arrays) - 1

        for step in steps:
            kind = step[0]
            if kind == "conv":
                module, relu = step[1], step[2]
                c_in, h, w = shape
                kh, kw = module.kernel_size
                sh, sw = module.stride
                ph, pw = module.padding
                oh = conv_output_size(h, kh, sh, ph)
                ow = conv_output_size(w, kw, sw, pw)
                c_out = module.out_channels
                weight = module.weight.data.reshape(c_out, c_in * kh * kw)
                if not weight.flags.c_contiguous:
                    weight = np.ascontiguousarray(weight)
                bias = None if module.bias is None else module.bias.data
                direct = (
                    sh == 1 and sw == 1
                    and DIRECT_CONV_MIN_OW <= ow <= DIRECT_CONV_MAX_OW
                )
                records.append(
                    (OP_CONV2D_DIRECT if direct else OP_CONV2D, int(relu),
                     c_in, h, w, c_out, kh, kw, sh, sw,
                     ph, pw, oh, ow, _index(weight), _index(bias))
                )
                if direct:
                    # +64 slack floats: the fixed-width direct tile loads
                    # (never stores) up to 31 lanes past a row's end.
                    cols_elems = max(
                        cols_elems, c_in * (h + 2 * ph) * (w + 2 * pw) + 64
                    )
                else:
                    cols_elems = max(cols_elems, c_in * kh * kw * oh * ow)
                shape = (c_out, oh, ow)
            elif kind == "linear":
                module, relu = step[1], step[2]
                in_f = int(np.prod(shape))
                if in_f != module.in_features:
                    raise ValueError(
                        f"linear expects {module.in_features} features, "
                        f"segment carries {in_f}"
                    )
                bias = None if module.bias is None else module.bias.data
                records.append(
                    (OP_LINEAR, int(relu), in_f, 0, 0, module.out_features,
                     0, 0, 0, 0, 0, 0, 0, 0,
                     _index(module.weight.data), _index(bias))
                )
                shape = (module.out_features,)
            elif kind == "relu":
                elems = int(np.prod(shape))
                records.append(
                    (OP_RELU, 0, elems, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, -1, -1)
                )
            elif kind == "maxpool":
                module = step[1]
                c, h, w = shape
                kh, kw = module.kernel_size
                sh, sw = module.stride
                ph, pw = module.padding
                oh = conv_output_size(h, kh, sh, ph)
                ow = conv_output_size(w, kw, sw, pw)
                records.append(
                    (OP_MAXPOOL2D, 0, c, h, w, 0, kh, kw, sh, sw, ph, pw,
                     oh, ow, -1, -1)
                )
                shape = (c, oh, ow)
            else:  # pragma: no cover - executor controls the step kinds
                raise ValueError(f"unknown native step {kind!r}")
            arena_elems = max(arena_elems, int(np.prod(shape)))

        self.out_shape = shape
        self._records = np.asarray(records, dtype=np.int64)
        if self._records.shape[1] != RECORD_FIELDS:  # pragma: no cover
            raise AssertionError("program record width drifted from the C side")
        table = (ctypes.c_void_p * max(1, len(self._weight_arrays)))()
        for index, array in enumerate(self._weight_arrays):
            table[index] = array.ctypes.data
        self._weight_table = table
        self._arena_a = np.empty(n * arena_elems, dtype=np.float32)
        self._arena_b = np.empty(n * arena_elems, dtype=np.float32)
        # Zero-filled so the direct-conv over-read slack never sees
        # uninitialised (potentially denormal) memory.
        self._cols = np.zeros(cols_elems, dtype=np.float32)
        self._args = [
            self._records.ctypes.data,
            len(self._records),
            n,
            0,  # input pointer, set per call
            0,  # output pointer, set per call
            self._arena_a.ctypes.data,
            self._arena_b.ctypes.data,
            self._cols.ctypes.data,
            ctypes.addressof(self._weight_table),
        ]

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Run the segment on ``x``; returns a fresh float32 output array."""
        out = np.empty((self.n, *self.out_shape), dtype=np.float32)
        args = self._args
        args[3] = x.ctypes.data
        args[4] = out.ctypes.data
        self._run(*args)
        return out
