"""Native IR interpreter for the serving executor (optional fast path).

The serving hot path runs a frozen eval-mode :class:`~repro.nn.Sequential`
over micro-batches of a few stacked requests.  At that scale the numpy
executor is dominated by per-op dispatch, the im2col materialisation, and
separate bias/ReLU/pool/noise passes — not by arithmetic.  This module
compiles (at first use, through :mod:`repro.native`) a small C library
that executes a **lowered op program** (:class:`repro.edge.ir.Program`)
in one call: the shared lowering pass in :mod:`repro.edge.ir` produces
the typed schedule, :class:`CompiledProgram` translates it into a flat
int64 record array for a fixed ``(batch, input_shape)``, and the C
interpreter runs it over ping-pong scratch arenas.  This backend owns no
lowering or fusion logic of its own — every rewrite decision is made on
the IR, which the numpy interpreter executes identically.

Kernels (float32 out; input may be f32 or quantised u8/u16 codes):

* ``conv2d`` — per-sample im2col into a scratch panel, then a
  register-blocked GEMM (4 output channels x 32 columns per tile, float
  accumulators) with the op epilogue fused into the tile: affine scale
  (folded dequantisation), bias, optional ReLU, optional per-row extra
  add.  Single-position convs (``OH*OW == 1``) reroute to the dot kernel.
* ``conv2d direct`` — stride-1 convs in the :data:`repro.edge.ir` direct
  eligibility window skip im2col and convolve a zero-padded plane copy
  (4 output channels x 2 output rows x <= 64 columns per tile); the same
  epilogue, plus an optional fused eval-mode 2x2/2 max pool reduced
  in-register over the 2-row tile before anything is stored.
* ``linear`` — row-blocked dot products (4 output features x 16 fixed
  lanes per row) with the same fused epilogue.
* ``maxpool2d`` / ``relu`` — standalone passes for ops the rewrite
  pipeline could not fuse, each absorbing the extra add when flagged.

Quantised ingest: when a record's input dtype is u8/u16, im2col panels
and padded planes are widened to float *code values* in-register (padding
carries the zero point, which dequantises to exactly 0.0) and the affine
dequantisation rides the epilogue as ``out = scale·acc + bias`` — the
bias having been pre-corrected by ``−scale·zp·Σw`` on the Python side.
No f32 dequantised copy of the activation ever exists.

Determinism contract (what the serving parity guarantee needs): every
output element is produced by a *fixed* accumulation schedule — the GEMM
accumulates over ``k`` sequentially per element, the dot kernel uses a
fixed 16-lane split of ``k`` reduced in a fixed order — and conv/pool
kernels loop samples independently.  The epilogue is a fixed op sequence
(scale, bias, ReLU, pool max, extra add) whose disabled stages are exact
identities (``1.0f*x == x``), so results are bit-identical no matter how
requests are grouped into micro-batches (the batch-invariance property),
and identical across runs.  The native backend is *not* bit-identical to
the numpy backend (both are f32-exact to ~1e-6 relative of the float64
result); a deployment picks one backend at executor construction and
every path through it then agrees bitwise.

``REPRO_NO_C_KERNEL=1`` disables the library (callers keep the numpy
interpreter); ``REPRO_KERNEL_DIR`` relocates the compiled artifact cache.
"""

from __future__ import annotations

import ctypes

import numpy as np

from repro import native
from repro.edge import ir

#: Op codes understood by ``run_program`` (must match the C enum).
OP_CONV2D = 0
OP_LINEAR = 1
OP_RELU = 2
OP_MAXPOOL2D = 3
OP_CONV2D_DIRECT = 4

#: Direct-kernel eligibility window (owned by the IR; re-exported for the
#: differential tests that pin which lowering a geometry takes).
DIRECT_CONV_MIN_OW = ir.DIRECT_CONV_MIN_OW
DIRECT_CONV_MAX_OW = ir.DIRECT_CONV_MAX_OW

#: int64 fields per program record (op code + geometry + epilogue flags).
RECORD_FIELDS = 24

#: Record input-dtype codes (index 16): matches the C interpreter switch.
_DTYPE_CODES = {"f32": 0, "u8": 1, "u16": 2}

_SOURCE = r"""
#include <math.h>
#include <stdint.h>
#include <string.h>

/* ------------------------------------------------------------------ */
/* im2col: one sample (c_in, h, w) -> (c_in*kh*kw, oh*ow).  Generated  */
/* per input dtype; integer codes widen to float in-register and the   */
/* padding value is the quantiser zero point (0.0f for f32 inputs).    */
/* ------------------------------------------------------------------ */
#define DEF_IM2COL(NAME, TYPE)                                             \
static void NAME(const TYPE *restrict x,                                   \
                 int64_t c_in, int64_t h, int64_t w,                       \
                 int64_t kh, int64_t kw, int64_t sh, int64_t sw,           \
                 int64_t ph, int64_t pw, int64_t oh, int64_t ow,           \
                 float padv, float *restrict cols) {                       \
    /* Rows are short (tens of floats); inline copy loops beat the call   \
       overhead of memcpy/memset at this size. */                          \
    int64_t m = oh * ow;                                                   \
    for (int64_t c = 0; c < c_in; c++) {                                   \
        const TYPE *plane = x + c * h * w;                                 \
        for (int64_t ki = 0; ki < kh; ki++)                                \
            for (int64_t kj = 0; kj < kw; kj++) {                          \
                float *row = cols + ((c * kh + ki) * kw + kj) * m;         \
                for (int64_t oy = 0; oy < oh; oy++) {                      \
                    int64_t iy = oy * sh - ph + ki;                        \
                    float *restrict dst = row + oy * ow;                   \
                    if (iy < 0 || iy >= h) {                               \
                        for (int64_t j = 0; j < ow; j++) dst[j] = padv;    \
                        continue;                                          \
                    }                                                      \
                    const TYPE *src = plane + iy * w;                      \
                    if (sw == 1) {                                         \
                        int64_t ox0 = pw - kj;                             \
                        if (ox0 < 0) ox0 = 0;                              \
                        int64_t ox1 = w + pw - kj;                         \
                        if (ox1 > ow) ox1 = ow;                            \
                        const TYPE *restrict s = src - pw + kj;            \
                        for (int64_t j = 0; j < ox0; j++) dst[j] = padv;   \
                        for (int64_t j = ox0; j < ox1; j++)                \
                            dst[j] = (float)s[j];                          \
                        for (int64_t j = ox1; j < ow; j++) dst[j] = padv;  \
                    } else {                                               \
                        for (int64_t ox = 0; ox < ow; ox++) {              \
                            int64_t ix = ox * sw - pw + kj;                \
                            dst[ox] = (ix >= 0 && ix < w)                  \
                                          ? (float)src[ix] : padv;         \
                        }                                                  \
                    }                                                      \
                }                                                          \
            }                                                              \
    }                                                                      \
}

DEF_IM2COL(im2col_f32, float)
DEF_IM2COL(im2col_u8, uint8_t)
DEF_IM2COL(im2col_u16, uint16_t)

/* Zero-padded plane copy feeding the direct conv kernel, also generated
   per input dtype with the zero point as the padding value. */
#define DEF_PADPLANE(NAME, TYPE)                                           \
static void NAME(const TYPE *restrict x, int64_t c_in, int64_t h,          \
                 int64_t w, int64_t ph, int64_t pw, float padv,            \
                 float *restrict xp) {                                     \
    int64_t hp = h + 2 * ph, wp = w + 2 * pw;                              \
    if (ph == 0 && pw == 0) {                                              \
        for (int64_t j = 0; j < c_in * h * w; j++) xp[j] = (float)x[j];    \
        return;                                                            \
    }                                                                      \
    for (int64_t j = 0; j < c_in * hp * wp; j++) xp[j] = padv;             \
    for (int64_t c = 0; c < c_in; c++)                                     \
        for (int64_t y = 0; y < h; y++) {                                  \
            float *restrict dst = xp + (c * hp + y + ph) * wp + pw;        \
            const TYPE *restrict src = x + (c * h + y) * w;                \
            for (int64_t j = 0; j < w; j++) dst[j] = (float)src[j];        \
        }                                                                  \
}

DEF_PADPLANE(pad_plane_f32, float)
DEF_PADPLANE(pad_plane_u8, uint8_t)
DEF_PADPLANE(pad_plane_u16, uint16_t)

/* ------------------------------------------------------------------ */
/* GEMM out(c_out, m) = wmat(c_out, K) @ cols(K, m), epilogue fused:   */
/* scale (folded dequant), bias, ReLU, extra add.  4x32 register      */
/* tiles; every output element accumulates over k in fixed ascending   */
/* order, so results never depend on tile neighbours.  scale == 1.0f   */
/* is an exact identity, keeping the unquantised path bit-stable.      */
/* ------------------------------------------------------------------ */
static void gemm_tile(const float *restrict wmat, const float *restrict cols,
                      const float *restrict bias, int64_t c_out, int64_t K,
                      int64_t m, int64_t oc, int64_t nr, int64_t jb,
                      int64_t mb, int relu, float scale,
                      const float *restrict extra, float *restrict out) {
    float acc[4][32] __attribute__((aligned(64)));
    for (int64_t r = 0; r < 4; r++)
        memset(acc[r], 0, mb * sizeof(float));
    const float *w0 = wmat + oc * K;
    const float *w1 = wmat + (oc + (nr > 1)) * K;
    const float *w2 = wmat + (oc + 2 * (nr > 2)) * K;
    const float *w3 = wmat + (oc + 3 * (nr > 3)) * K;
    if (mb == 32) {
        for (int64_t k = 0; k < K; k++) {
            const float *restrict b = cols + k * m + jb;
            float a0 = w0[k], a1 = w1[k], a2 = w2[k], a3 = w3[k];
            for (int64_t j = 0; j < 32; j++) {
                float v = b[j];
                acc[0][j] += a0 * v;
                acc[1][j] += a1 * v;
                acc[2][j] += a2 * v;
                acc[3][j] += a3 * v;
            }
        }
    } else {
        for (int64_t k = 0; k < K; k++) {
            const float *restrict b = cols + k * m + jb;
            float a0 = w0[k], a1 = w1[k], a2 = w2[k], a3 = w3[k];
            for (int64_t j = 0; j < mb; j++) {
                float v = b[j];
                acc[0][j] += a0 * v;
                acc[1][j] += a1 * v;
                acc[2][j] += a2 * v;
                acc[3][j] += a3 * v;
            }
        }
    }
    for (int64_t r = 0; r < nr; r++) {
        float bv = bias ? bias[oc + r] : 0.0f;
        float *restrict dst = out + (oc + r) * m + jb;
        const float *restrict ex = extra ? extra + (oc + r) * m + jb : 0;
        const float *restrict a = acc[r];
        for (int64_t j = 0; j < mb; j++) {
            float v = scale * a[j] + bv;
            if (relu && v < 0.0f) v = 0.0f;
            if (ex) v += ex[j];
            dst[j] = v;
        }
    }
}

static void gemm_f32(const float *restrict wmat, const float *restrict cols,
                     const float *restrict bias, int64_t c_out, int64_t K,
                     int64_t m, int relu, float scale,
                     const float *restrict extra, float *restrict out) {
    for (int64_t jb = 0; jb < m; jb += 32) {
        int64_t mb = m - jb;
        if (mb > 32) mb = 32;
        for (int64_t oc = 0; oc < c_out; oc += 4) {
            int64_t nr = c_out - oc;
            if (nr > 4) nr = 4;
            gemm_tile(wmat, cols, bias, c_out, K, m, oc, nr, jb, mb, relu,
                      scale, extra, out);
        }
    }
}

/* ------------------------------------------------------------------ */
/* Row dot products: out(n, out_f) = x(n, in_f) @ wmat(out_f, in_f)^T */
/* 4 output features share each row load; 16 fixed accumulation lanes */
/* per dot product (lane of term k is k mod 16 — independent of n).   */
/* Generated per input dtype for quantised-code ingest.               */
/* ------------------------------------------------------------------ */
#define DEF_LINEAR(NAME, TYPE)                                             \
static void NAME(const TYPE *restrict x, const float *restrict wmat,       \
                 const float *restrict bias, int64_t n, int64_t in_f,      \
                 int64_t out_f, int relu, float scale,                     \
                 const float *restrict extra, float *restrict out) {       \
    for (int64_t i = 0; i < n; i++) {                                      \
        const TYPE *restrict row = x + i * in_f;                           \
        for (int64_t oc = 0; oc < out_f; oc += 4) {                        \
            int64_t nr = out_f - oc;                                       \
            if (nr > 4) nr = 4;                                            \
            const float *w0 = wmat + oc * in_f;                            \
            const float *w1 = wmat + (oc + (nr > 1)) * in_f;               \
            const float *w2 = wmat + (oc + 2 * (nr > 2)) * in_f;           \
            const float *w3 = wmat + (oc + 3 * (nr > 3)) * in_f;           \
            float l0[16] __attribute__((aligned(64))) = {0};               \
            float l1[16] __attribute__((aligned(64))) = {0};               \
            float l2[16] __attribute__((aligned(64))) = {0};               \
            float l3[16] __attribute__((aligned(64))) = {0};               \
            int64_t k = 0;                                                 \
            for (; k + 16 <= in_f; k += 16)                                \
                for (int64_t l = 0; l < 16; l++) {                         \
                    float v = (float)row[k + l];                           \
                    l0[l] += w0[k + l] * v;                                \
                    l1[l] += w1[k + l] * v;                                \
                    l2[l] += w2[k + l] * v;                                \
                    l3[l] += w3[k + l] * v;                                \
                }                                                          \
            if (k < in_f) {                                                \
                /* Zero-padded tail: the same 16-wide op sequence, so a    \
                   term's lane depends only on its k index. */             \
                float rb[16] __attribute__((aligned(64))) = {0};           \
                float wb0[16] = {0}, wb1[16] = {0};                        \
                float wb2[16] = {0}, wb3[16] = {0};                        \
                int64_t rem = in_f - k;                                    \
                for (int64_t l = 0; l < rem; l++)                          \
                    rb[l] = (float)row[k + l];                             \
                memcpy(wb0, w0 + k, rem * sizeof(float));                  \
                memcpy(wb1, w1 + k, rem * sizeof(float));                  \
                memcpy(wb2, w2 + k, rem * sizeof(float));                  \
                memcpy(wb3, w3 + k, rem * sizeof(float));                  \
                for (int64_t l = 0; l < 16; l++) {                         \
                    float v = rb[l];                                       \
                    l0[l] += wb0[l] * v;                                   \
                    l1[l] += wb1[l] * v;                                   \
                    l2[l] += wb2[l] * v;                                   \
                    l3[l] += wb3[l] * v;                                   \
                }                                                          \
            }                                                              \
            float *lanes[4] = {l0, l1, l2, l3};                            \
            for (int64_t r = 0; r < nr; r++) {                             \
                const float *a = lanes[r];                                 \
                float s = 0.0f;                                            \
                for (int64_t l = 0; l < 16; l++) s += a[l];                \
                s = scale * s + (bias ? bias[oc + r] : 0.0f);              \
                if (relu && s < 0.0f) s = 0.0f;                            \
                if (extra) s += extra[i * out_f + oc + r];                 \
                out[i * out_f + oc + r] = s;                               \
            }                                                              \
        }                                                                  \
    }                                                                      \
}

DEF_LINEAR(linear_f32, float)
DEF_LINEAR(linear_u8, uint8_t)
DEF_LINEAR(linear_u16, uint16_t)

/* ------------------------------------------------------------------ */
/* Direct stride-1 conv from a zero-padded plane copy: same ascending */
/* (c, ki, kj) accumulation per output element as the GEMM path, but  */
/* no column panel — early layers are scratch-bandwidth bound, not    */
/* FLOP bound.  Tiles: 4 output channels x 2 output rows x <= 64 cols.*/
/* An optional fused eval-mode 2x2/2 max pool reduces the 2-row tile  */
/* in-register: each pooled value is the max of the four epilogue     */
/* values the unfused conv would have stored, in the same compare     */
/* order the standalone pool uses — so fusion is bitwise neutral.     */
/* ------------------------------------------------------------------ */
static void conv_direct_sample(const float *restrict xp,
                               const float *restrict wmat,
                               const float *restrict bias,
                               int64_t c_in, int64_t hp, int64_t wp,
                               int64_t kh, int64_t kw,
                               int64_t oh, int64_t ow, int64_t c_out,
                               int relu, float scale, int pool,
                               int64_t poh, int64_t pow_,
                               const float *restrict extra,
                               float *restrict out) {
    int64_t K = c_in * kh * kw;
    for (int64_t oc = 0; oc < c_out; oc += 4) {
        int64_t nr = c_out - oc;
        if (nr > 4) nr = 4;
        const float *w0 = wmat + oc * K;
        const float *w1 = wmat + (oc + (nr > 1)) * K;
        const float *w2 = wmat + (oc + 2 * (nr > 2)) * K;
        const float *w3 = wmat + (oc + 3 * (nr > 3)) * K;
        for (int64_t oy = 0; oy < oh; oy += 2) {
            int64_t tr = oh - oy < 2 ? oh - oy : 2;
            float acc[4][2][64] __attribute__((aligned(64)));
            if (pool && (tr < 2 || oy / 2 >= poh)) continue; /* odd tail row */
            if (ow <= 32) {
                /* Fixed-width tile: lanes j >= ow compute garbage from the
                   scratch slack and are never stored; valid lanes are
                   untouched by them (independent accumulator chains). */
                for (int64_t r = 0; r < 4; r++)
                    for (int64_t t = 0; t < 2; t++)
                        for (int64_t j = 0; j < 32; j++) acc[r][t][j] = 0.0f;
                int64_t k = 0;
                for (int64_t c = 0; c < c_in; c++)
                    for (int64_t ki = 0; ki < kh; ki++)
                        for (int64_t kj = 0; kj < kw; kj++, k++) {
                            float a0 = w0[k], a1 = w1[k], a2 = w2[k], a3 = w3[k];
                            const float *restrict b0 =
                                xp + (c * hp + oy + ki) * wp + kj;
                            const float *restrict b1 = b0 + wp;
                            for (int64_t j = 0; j < 32; j++) {
                                float v = b0[j];
                                acc[0][0][j] += a0 * v;
                                acc[1][0][j] += a1 * v;
                                acc[2][0][j] += a2 * v;
                                acc[3][0][j] += a3 * v;
                            }
                            if (tr == 2)
                                for (int64_t j = 0; j < 32; j++) {
                                    float v = b1[j];
                                    acc[0][1][j] += a0 * v;
                                    acc[1][1][j] += a1 * v;
                                    acc[2][1][j] += a2 * v;
                                    acc[3][1][j] += a3 * v;
                                }
                        }
            } else {
                for (int64_t r = 0; r < 4; r++)
                    for (int64_t t = 0; t < 2; t++)
                        for (int64_t j = 0; j < ow; j++) acc[r][t][j] = 0.0f;
                int64_t k = 0;
                for (int64_t c = 0; c < c_in; c++)
                    for (int64_t ki = 0; ki < kh; ki++)
                        for (int64_t kj = 0; kj < kw; kj++, k++) {
                            float a0 = w0[k], a1 = w1[k], a2 = w2[k], a3 = w3[k];
                            const float *restrict b0 =
                                xp + (c * hp + oy + ki) * wp + kj;
                            const float *restrict b1 = b0 + wp;
                            for (int64_t j = 0; j < ow; j++) {
                                float v = b0[j];
                                acc[0][0][j] += a0 * v;
                                acc[1][0][j] += a1 * v;
                                acc[2][0][j] += a2 * v;
                                acc[3][0][j] += a3 * v;
                            }
                            if (tr == 2)
                                for (int64_t j = 0; j < ow; j++) {
                                    float v = b1[j];
                                    acc[0][1][j] += a0 * v;
                                    acc[1][1][j] += a1 * v;
                                    acc[2][1][j] += a2 * v;
                                    acc[3][1][j] += a3 * v;
                                }
                        }
            }
            for (int64_t r = 0; r < nr; r++) {
                float bv = bias ? bias[oc + r] : 0.0f;
                if (pool) {
                    int64_t py = oy / 2;
                    float *restrict dst = out + ((oc + r) * poh + py) * pow_;
                    const float *restrict ex =
                        extra ? extra + ((oc + r) * poh + py) * pow_ : 0;
                    const float *restrict a0 = acc[r][0];
                    const float *restrict a1 = acc[r][1];
                    for (int64_t j = 0; j < pow_; j++) {
                        float v00 = scale * a0[2 * j] + bv;
                        float v01 = scale * a0[2 * j + 1] + bv;
                        float v10 = scale * a1[2 * j] + bv;
                        float v11 = scale * a1[2 * j + 1] + bv;
                        if (relu) {
                            if (v00 < 0.0f) v00 = 0.0f;
                            if (v01 < 0.0f) v01 = 0.0f;
                            if (v10 < 0.0f) v10 = 0.0f;
                            if (v11 < 0.0f) v11 = 0.0f;
                        }
                        float m0 = v00 > v01 ? v00 : v01;
                        float m1 = v10 > v11 ? v10 : v11;
                        float v = m0 > m1 ? m0 : m1;
                        if (ex) v += ex[j];
                        dst[j] = v;
                    }
                } else {
                    for (int64_t t = 0; t < tr; t++) {
                        float *restrict dst =
                            out + ((oc + r) * oh + oy + t) * ow;
                        const float *restrict ex =
                            extra ? extra + ((oc + r) * oh + oy + t) * ow : 0;
                        const float *restrict a = acc[r][t];
                        for (int64_t j = 0; j < ow; j++) {
                            float v = scale * a[j] + bv;
                            if (relu && v < 0.0f) v = 0.0f;
                            if (ex) v += ex[j];
                            dst[j] = v;
                        }
                    }
                }
            }
        }
    }
}

/* ------------------------------------------------------------------ */
/* Max pooling with zero padding contributing to the max (matching    */
/* the numpy executor's padded-window reduction).                     */
/* ------------------------------------------------------------------ */
static void maxpool_planes(const float *restrict x, int64_t planes,
                           int64_t h, int64_t w, int64_t kh, int64_t kw,
                           int64_t sh, int64_t sw, int64_t ph, int64_t pw,
                           int64_t oh, int64_t ow, float *restrict out) {
    if (ph == 0 && pw == 0 && kh == 2 && kw == 2 && sh == 2 && sw == 2 &&
        2 * oh <= h && 2 * ow <= w) {
        /* The overwhelmingly common serving shape: branch-free 2x2/2. */
        for (int64_t p = 0; p < planes; p++) {
            const float *plane = x + p * h * w;
            float *restrict dst = out + p * oh * ow;
            for (int64_t oy = 0; oy < oh; oy++) {
                const float *restrict r0 = plane + 2 * oy * w;
                const float *restrict r1 = r0 + w;
                float *restrict d = dst + oy * ow;
                for (int64_t ox = 0; ox < ow; ox++) {
                    float a = r0[2 * ox], b = r0[2 * ox + 1];
                    float c = r1[2 * ox], e = r1[2 * ox + 1];
                    float m0 = a > b ? a : b;
                    float m1 = c > e ? c : e;
                    d[ox] = m0 > m1 ? m0 : m1;
                }
            }
        }
        return;
    }
    for (int64_t p = 0; p < planes; p++) {
        const float *plane = x + p * h * w;
        float *dst = out + p * oh * ow;
        for (int64_t oy = 0; oy < oh; oy++) {
            int64_t iy0 = oy * sh - ph;
            for (int64_t ox = 0; ox < ow; ox++) {
                int64_t ix0 = ox * sw - pw;
                float best = -INFINITY;
                if (iy0 >= 0 && ix0 >= 0 && iy0 + kh <= h && ix0 + kw <= w) {
                    /* Fully in bounds: no per-tap branches. */
                    for (int64_t ki = 0; ki < kh; ki++) {
                        const float *restrict src = plane + (iy0 + ki) * w + ix0;
                        for (int64_t kj = 0; kj < kw; kj++) {
                            float v = src[kj];
                            if (v > best) best = v;
                        }
                    }
                } else {
                    for (int64_t ki = 0; ki < kh; ki++) {
                        int64_t iy = iy0 + ki;
                        const float *src = plane + iy * w;
                        for (int64_t kj = 0; kj < kw; kj++) {
                            int64_t ix = ix0 + kj;
                            float v = (iy >= 0 && iy < h && ix >= 0 && ix < w)
                                          ? src[ix]
                                          : 0.0f;
                            if (v > best) best = v;
                        }
                    }
                }
                dst[oy * ow + ox] = best;
            }
        }
    }
}

/* ------------------------------------------------------------------ */
/* Program interpreter: one record per IR op, RECORD_FIELDS int64     */
/* each, plus one float (the epilogue scale) per record in fscale.    */
/* Fields: [op, relu, c_in, h, w, c_out, kh, kw, sh, sw, ph, pw, oh,  */
/*          ow, weight_index, bias_index, in_dtype, add_extra, pool,  */
/*          pool_oh, pool_ow, pad_value, spare, spare]                */
/* in_dtype (0=f32, 1=u8, 2=u16) is nonzero only on the first record  */
/* (quantised-code ingest); extra is the full-batch per-row tensor an */
/* add_extra op folds into its output write (the noise add).          */
/* ------------------------------------------------------------------ */
#define REC 24

void run_program(const int64_t *restrict prog, const float *restrict fscale,
                 int64_t n_ops, int64_t n,
                 const void *restrict input, float *restrict output,
                 float *restrict arena_a, float *restrict arena_b,
                 float *restrict cols, const float **restrict weights,
                 const float *restrict extra) {
    const void *src = input;
    float *arenas[2] = {arena_a, arena_b};
    int which = 0;
    for (int64_t op = 0; op < n_ops; op++) {
        const int64_t *r = prog + op * REC;
        int64_t kind = r[0];
        int relu = (int)r[1];
        int64_t c_in = r[2], h = r[3], w = r[4], c_out = r[5];
        int64_t kh = r[6], kw = r[7], sh = r[8], sw = r[9];
        int64_t ph = r[10], pw = r[11], oh = r[12], ow = r[13];
        const float *wmat = r[14] >= 0 ? weights[r[14]] : 0;
        const float *bias = r[15] >= 0 ? weights[r[15]] : 0;
        int dtype = (int)r[16];
        const float *ex = r[17] ? extra : 0;
        int pool = (int)r[18];
        int64_t poh = r[19], pow_ = r[20];
        float padv = (float)r[21];
        float scale = fscale[op];
        float *dst = (op == n_ops - 1) ? output : arenas[which];
        which ^= 1;
        if (kind == 0) { /* conv2d via im2col + GEMM */
            int64_t m = oh * ow, K = c_in * kh * kw;
            for (int64_t s = 0; s < n; s++) {
                float *os = dst + s * c_out * m;
                const float *exs = ex ? ex + s * c_out * m : 0;
                if (dtype == 1)
                    im2col_u8((const uint8_t *)src + s * c_in * h * w,
                              c_in, h, w, kh, kw, sh, sw, ph, pw, oh, ow,
                              padv, cols);
                else if (dtype == 2)
                    im2col_u16((const uint16_t *)src + s * c_in * h * w,
                               c_in, h, w, kh, kw, sh, sw, ph, pw, oh, ow,
                               padv, cols);
                else
                    im2col_f32((const float *)src + s * c_in * h * w,
                               c_in, h, w, kh, kw, sh, sw, ph, pw, oh, ow,
                               0.0f, cols);
                if (m == 1)
                    linear_f32(cols, wmat, bias, 1, K, c_out, relu, scale,
                               exs, os);
                else
                    gemm_f32(wmat, cols, bias, c_out, K, m, relu, scale,
                             exs, os);
            }
        } else if (kind == 4) { /* conv2d, direct stride-1 kernel */
            int64_t out_es = pool ? c_out * poh * pow_ : c_out * oh * ow;
            int64_t hp = h + 2 * ph, wp = w + 2 * pw;
            for (int64_t s = 0; s < n; s++) {
                if (dtype == 1)
                    pad_plane_u8((const uint8_t *)src + s * c_in * h * w,
                                 c_in, h, w, ph, pw, padv, cols);
                else if (dtype == 2)
                    pad_plane_u16((const uint16_t *)src + s * c_in * h * w,
                                  c_in, h, w, ph, pw, padv, cols);
                else
                    pad_plane_f32((const float *)src + s * c_in * h * w,
                                  c_in, h, w, ph, pw, 0.0f, cols);
                conv_direct_sample(cols, wmat, bias, c_in, hp, wp, kh, kw,
                                   oh, ow, c_out, relu, scale, pool, poh,
                                   pow_, ex ? ex + s * out_es : 0,
                                   dst + s * out_es);
            }
        } else if (kind == 1) { /* linear: c_in = in_f, c_out = out_f */
            if (dtype == 1)
                linear_u8((const uint8_t *)src, wmat, bias, n, c_in, c_out,
                          relu, scale, ex, dst);
            else if (dtype == 2)
                linear_u16((const uint16_t *)src, wmat, bias, n, c_in, c_out,
                           relu, scale, ex, dst);
            else
                linear_f32((const float *)src, wmat, bias, n, c_in, c_out,
                           relu, scale, ex, dst);
        } else if (kind == 2) { /* standalone relu over c_in elems/sample */
            const float *restrict sf = (const float *)src;
            int64_t total = n * c_in;
            if (ex)
                for (int64_t j = 0; j < total; j++) {
                    float v = sf[j];
                    dst[j] = (v > 0.0f ? v : 0.0f) + ex[j];
                }
            else
                for (int64_t j = 0; j < total; j++) {
                    float v = sf[j];
                    dst[j] = v > 0.0f ? v : 0.0f;
                }
        } else { /* maxpool2d over n*c_in planes */
            maxpool_planes((const float *)src, n * c_in, h, w, kh, kw, sh,
                           sw, ph, pw, oh, ow, dst);
            if (ex) {
                int64_t total = n * c_in * oh * ow;
                for (int64_t j = 0; j < total; j++) dst[j] += ex[j];
            }
        }
        src = dst;
    }
}
"""


def _configure(lib: ctypes.CDLL) -> None:
    lib.run_program.argtypes = [
        ctypes.c_void_p,  # prog records
        ctypes.c_void_p,  # fscale (one float per record)
        ctypes.c_int64,   # n_ops
        ctypes.c_int64,   # n (batch rows)
        ctypes.c_void_p,  # input (f32 or quantised codes)
        ctypes.c_void_p,  # output
        ctypes.c_void_p,  # arena_a
        ctypes.c_void_p,  # arena_b
        ctypes.c_void_p,  # cols scratch
        ctypes.c_void_p,  # weights pointer table
        ctypes.c_void_p,  # extra per-row tensor (folded add), may be NULL
    ]
    lib.run_program.restype = None


_MODULE = native.KernelModule("fastexec", _SOURCE, _configure)


def available() -> bool:
    """Whether the compiled executor kernels can be used in this process."""
    return _MODULE.available()


def load() -> ctypes.CDLL | None:
    """The configured library (``None`` when unavailable or disabled)."""
    return _MODULE.load()


def _fold_dequant_bias(op: ir.IROp) -> np.ndarray:
    """The dequant-corrected bias: ``bias − scale·zp·Σw`` per output row.

    With code values ``c`` fed straight into the GEMM, the affine
    dequantisation ``scale·(c − zp)`` distributes to
    ``scale·Σ(w·c) − scale·zp·Σw + bias`` — the first term is the scale
    epilogue, the rest is this constant.  Computed in float64 and rounded
    once, like :func:`repro.edge.quantization.dequantize` rounds once.
    """
    rowsum = op.weight.astype(np.float64).sum(axis=1)
    base = 0.0 if op.bias is None else op.bias.astype(np.float64)
    correction = base - op.dequant.scale * op.dequant.zero_point * rowsum
    return np.ascontiguousarray(correction.astype(np.float32))


class CompiledProgram:
    """One lowered :class:`~repro.edge.ir.Program` bound to the native
    interpreter for a fixed ``(batch, input geometry)``.

    Translates the IR ops into the flat int64 record array the C side
    executes, resolves the buffer plan (:func:`repro.edge.ir.plan_buffers`)
    into ping-pong arenas and the im2col/plane scratch panel, builds the
    weight pointer table, and caches the argument list so a call is one
    dict hit plus one ctypes call.  ``flatten`` ops vanish here — the
    record stream is compute-only and the output buffer is allocated at
    the program's (possibly flattened) output spec.

    Weight/bias pointers reference the IR's live float32 arrays (views of
    the module parameters), so in-place weight updates stay visible;
    rebinding a parameter to a new array does not.  Dequant-folding ops
    are the exception: their corrected bias is a frozen copy.  Serving
    nets are frozen, which is the contract this backend is built for.
    """

    def __init__(self, program: ir.Program, n: int) -> None:
        lib = load()
        if lib is None:  # pragma: no cover - callers check available()
            raise RuntimeError("fastexec kernel unavailable")
        self._run = lib.run_program
        self.n = n
        self.program = program
        self.out_shape = program.out_spec.shape
        self.in_dtype = program.in_spec.numpy_dtype
        self.needs_extra = any(op.add_rows for op in program.ops)
        # Strong references keep the weight arrays alive behind the raw
        # pointers in the table.
        self._weight_arrays: list[np.ndarray] = []
        records: list[tuple] = []
        scales: list[float] = []

        def _index(array: np.ndarray | None) -> int:
            if array is None:
                return -1
            if array.dtype != np.float32 or not array.flags.c_contiguous:
                raise TypeError("native kernels need contiguous float32 weights")
            self._weight_arrays.append(array)
            return len(self._weight_arrays) - 1

        for op in program.ops:
            if op.kind == "flatten":
                continue  # free reshape; the flat record stream never sees it
            dtype_code = _DTYPE_CODES[op.in_spec.dtype]
            add = int(op.add_rows)
            scale, zero_point, bias = 1.0, 0, op.bias
            if op.dequant is not None:
                scale = float(op.dequant.scale)
                zero_point = int(op.dequant.zero_point)
                bias = _fold_dequant_bias(op)
            if op.kind == "conv2d":
                c_in, h, w = op.in_spec.shape
                direct = ir.direct_conv_eligible(op)
                if op.pool and not direct:  # pragma: no cover - rewrite guard
                    raise AssertionError("fused pool requires the direct kernel")
                poh, pow_ = (op.out_spec.shape[1:] if op.pool else (0, 0))
                records.append(
                    (OP_CONV2D_DIRECT if direct else OP_CONV2D, int(op.relu),
                     c_in, h, w, op.out_spec.shape[0], *op.kernel, *op.stride,
                     *op.padding, op.oh, op.ow, _index(op.weight),
                     _index(bias), dtype_code, add, int(op.pool), poh, pow_,
                     zero_point, 0, 0)
                )
            elif op.kind == "linear":
                records.append(
                    (OP_LINEAR, int(op.relu), op.in_spec.elements, 0, 0,
                     op.out_spec.elements, 0, 0, 0, 0, 0, 0, 0, 0,
                     _index(op.weight), _index(bias), dtype_code, add,
                     0, 0, 0, zero_point, 0, 0)
                )
            elif op.kind == "relu":
                records.append(
                    (OP_RELU, 0, op.in_spec.elements, 0, 0, 0, 0, 0, 0, 0,
                     0, 0, 0, 0, -1, -1, dtype_code, add, 0, 0, 0, 0, 0, 0)
                )
            elif op.kind == "maxpool2d":
                c, h, w = op.in_spec.shape
                records.append(
                    (OP_MAXPOOL2D, 0, c, h, w, 0, *op.kernel, *op.stride,
                     *op.padding, op.oh, op.ow, -1, -1, dtype_code, add,
                     0, 0, 0, 0, 0, 0)
                )
            else:  # pragma: no cover - lowering controls the op kinds
                raise ValueError(f"IR op {op.kind!r} has no native lowering")
            scales.append(scale)

        if not records:
            raise ValueError("cannot compile a program with no compute ops")
        plan = ir.plan_buffers(program)
        self._records = np.asarray(records, dtype=np.int64)
        if self._records.shape[1] != RECORD_FIELDS:  # pragma: no cover
            raise AssertionError("program record width drifted from the C side")
        self._scales = np.asarray(scales, dtype=np.float32)
        table = (ctypes.c_void_p * max(1, len(self._weight_arrays)))()
        for index, array in enumerate(self._weight_arrays):
            table[index] = array.ctypes.data
        self._weight_table = table
        self._arena_a = np.empty(n * plan.arena_elements, dtype=np.float32)
        self._arena_b = np.empty(n * plan.arena_elements, dtype=np.float32)
        # Zero-filled so the direct-conv over-read slack never sees
        # uninitialised (potentially denormal) memory.
        self._cols = np.zeros(plan.scratch_elements, dtype=np.float32)
        self._args = [
            self._records.ctypes.data,
            self._scales.ctypes.data,
            len(self._records),
            n,
            0,  # input pointer, set per call
            0,  # output pointer, set per call
            self._arena_a.ctypes.data,
            self._arena_b.ctypes.data,
            self._cols.ctypes.data,
            ctypes.addressof(self._weight_table),
            0,  # extra pointer, set per call
        ]

    def __call__(self, x: np.ndarray, extra: np.ndarray | None = None) -> np.ndarray:
        """Run the program on ``x``; returns a fresh float32 output array.

        ``extra`` is the full-batch per-row tensor a folded epilogue add
        consumes (required iff the program was lowered with one).
        """
        if self.needs_extra and extra is None:
            raise ValueError("program folds an epilogue add; extra is required")
        out = np.empty((self.n, *self.out_shape), dtype=np.float32)
        args = self._args
        args[4] = x.ctypes.data
        args[5] = out.ctypes.data
        args[10] = 0 if extra is None else extra.ctypes.data
        self._run(*args)
        return out
