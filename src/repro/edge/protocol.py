"""Wire protocol between the edge device and the cloud service.

A minimal length-prefixed binary format: header (magic, request id, dtype
code, shape) followed by the raw tensor bytes and a checksum.  The point is
not the format itself but that the *only* thing crossing the wire is the
noisy activation — exactly the privacy surface the paper analyses.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

import numpy as np

from repro.errors import ChannelError

_MAGIC = b"SHRD"
_DTYPES = {0: np.float32, 1: np.float64, 2: np.int64}
_DTYPE_CODES = {np.dtype(np.float32): 0, np.dtype(np.float64): 1, np.dtype(np.int64): 2}


@dataclass(frozen=True)
class ActivationMessage:
    """Edge -> cloud: the (noisy) activation for one batch."""

    request_id: int
    tensor: np.ndarray


@dataclass(frozen=True)
class PredictionMessage:
    """Cloud -> edge: logits for one batch."""

    request_id: int
    logits: np.ndarray


def encode_tensor(request_id: int, tensor: np.ndarray) -> bytes:
    """Serialise a tensor message to bytes (header + payload + CRC32)."""
    tensor = np.ascontiguousarray(tensor)
    dtype_code = _DTYPE_CODES.get(tensor.dtype)
    if dtype_code is None:
        raise ChannelError(f"unsupported wire dtype {tensor.dtype}")
    if tensor.ndim > 8:
        raise ChannelError(f"too many dimensions for the wire format: {tensor.ndim}")
    payload = tensor.tobytes()
    header = struct.pack(
        f"<4sQBB{tensor.ndim}I",
        _MAGIC,
        request_id,
        dtype_code,
        tensor.ndim,
        *tensor.shape,
    )
    checksum = struct.pack("<I", zlib.crc32(payload))
    return header + payload + checksum


def decode_tensor(blob: bytes) -> tuple[int, np.ndarray]:
    """Parse bytes produced by :func:`encode_tensor`.

    Raises:
        ChannelError: On bad magic, truncation, or checksum mismatch.
    """
    fixed = struct.calcsize("<4sQBB")
    if len(blob) < fixed:
        raise ChannelError("message truncated before header end")
    magic, request_id, dtype_code, ndim = struct.unpack("<4sQBB", blob[:fixed])
    if magic != _MAGIC:
        raise ChannelError(f"bad magic {magic!r}")
    if dtype_code not in _DTYPES:
        raise ChannelError(f"unknown dtype code {dtype_code}")
    if ndim > 8:
        raise ChannelError(f"too many dimensions in header: {ndim}")
    shape_size = struct.calcsize(f"<{ndim}I")
    if len(blob) < fixed + shape_size:
        raise ChannelError("message truncated inside the shape header")
    shape = struct.unpack(f"<{ndim}I", blob[fixed : fixed + shape_size])
    dtype = np.dtype(_DTYPES[dtype_code])
    count = int(np.prod(shape)) if ndim else 1
    payload_size = count * dtype.itemsize
    start = fixed + shape_size
    payload = blob[start : start + payload_size]
    if len(payload) != payload_size:
        raise ChannelError("message truncated inside payload")
    crc_bytes = blob[start + payload_size : start + payload_size + 4]
    if len(crc_bytes) != 4:
        raise ChannelError("message truncated inside the checksum")
    (expected_crc,) = struct.unpack("<I", crc_bytes)
    if zlib.crc32(payload) != expected_crc:
        raise ChannelError("checksum mismatch — payload corrupted in transit")
    tensor = np.frombuffer(payload, dtype=dtype).reshape(shape)
    return request_id, tensor.copy()


def encode_activation(message: ActivationMessage) -> bytes:
    """Serialise an activation message."""
    return encode_tensor(message.request_id, message.tensor)


def decode_activation(blob: bytes) -> ActivationMessage:
    """Deserialise an activation message."""
    request_id, tensor = decode_tensor(blob)
    return ActivationMessage(request_id=request_id, tensor=tensor)


def encode_prediction(message: PredictionMessage) -> bytes:
    """Serialise a prediction message."""
    return encode_tensor(message.request_id, message.logits)


def decode_prediction(blob: bytes) -> PredictionMessage:
    """Deserialise a prediction message."""
    request_id, tensor = decode_tensor(blob)
    return PredictionMessage(request_id=request_id, logits=tensor)
