"""Wire protocol between the edge device and the cloud service.

Two frame families share a length-prefixed binary style (header, raw tensor
bytes, CRC32):

* **Single-request frames** (``SHRD``): one request id and one tensor — the
  original Figure 2 deployment, retained as the sequential reference path.
* **Batched frames** (``SHRB``): the serving runtime's unit of transfer.
  One header carries N request ids and per-request row counts, followed by
  one contiguous stacked tensor payload — replacing N per-request
  encode/transmit round trips with a single frame whose header cost is
  amortised across the micro-batch.  Batched activation frames may carry an
  8/16-bit affine quantisation code (scale, zero point, bits) so the
  stacked payload is quantised once on the edge and dequantised once in the
  cloud (:mod:`repro.edge.quantization`).

The point is not the format itself but that the *only* thing crossing the
wire is the (noisy, possibly quantised) activation — exactly the privacy
surface the paper analyses.  Decoders reject malformed frames with
:class:`~repro.errors.ChannelError`; robustness is fuzz-tested.
"""

from __future__ import annotations

import struct
import zlib
from math import prod as _product
from dataclasses import dataclass

import numpy as np

from repro.edge.quantization import QuantizationParams
from repro.errors import ChannelError

_MAGIC = b"SHRD"
_BATCH_MAGIC = b"SHRB"
_DTYPES = {
    0: np.float32,
    1: np.float64,
    2: np.int64,
    3: np.uint8,
    4: np.uint16,
}
_DTYPE_CODES = {np.dtype(dtype): code for code, dtype in _DTYPES.items()}

_KIND_ACTIVATION = 0
_KIND_PREDICTION = 1

# Batched frame layout (little endian):
#   4s  magic "SHRB"
#   B   kind (0 activation, 1 prediction)
#   B   flags (bit 0: quantised payload)
#   I   n_requests
#   n_requests * Q   request ids
#   n_requests * I   per-request row counts
#   [d H B  quantisation scale / zero point / bits, when flag bit 0]
#   B   dtype code
#   B   ndim
#   ndim * I  shape (shape[0] == sum of row counts)
#   payload bytes
#   I   CRC32 of the payload
_BATCH_FIXED = struct.Struct("<4sBBI")
_QUANT_STRUCT = struct.Struct("<dHB")
_TENSOR_HEAD = struct.Struct("<BB")

_STRUCT_CACHE: dict[str, struct.Struct] = {}


def _struct(fmt: str) -> struct.Struct:
    """Compiled struct for a dynamic format (hot path: one per frame)."""
    cached = _STRUCT_CACHE.get(fmt)
    if cached is None:
        cached = _STRUCT_CACHE[fmt] = struct.Struct(fmt)
    return cached


@dataclass(frozen=True)
class ActivationMessage:
    """Edge -> cloud: the (noisy) activation for one request."""

    request_id: int
    tensor: np.ndarray


@dataclass(frozen=True)
class PredictionMessage:
    """Cloud -> edge: logits for one request."""

    request_id: int
    logits: np.ndarray


@dataclass(frozen=True)
class BatchActivationMessage:
    """Edge -> cloud: one micro-batch of stacked (noisy) activations.

    Attributes:
        request_ids: One id per request in the micro-batch.
        splits: Rows of ``tensor`` owned by each request, in order.
        tensor: ``(sum(splits), *activation_shape)`` stacked payload; when
            ``quantization`` is set these are integer codes.
        quantization: Affine code parameters when the payload is quantised.
    """

    request_ids: tuple[int, ...]
    splits: tuple[int, ...]
    tensor: np.ndarray
    quantization: QuantizationParams | None = None

    def __len__(self) -> int:
        return len(self.request_ids)


@dataclass(frozen=True)
class BatchPredictionMessage:
    """Cloud -> edge: stacked logits for one micro-batch."""

    request_ids: tuple[int, ...]
    splits: tuple[int, ...]
    logits: np.ndarray

    def __len__(self) -> int:
        return len(self.request_ids)

    def split_logits(self) -> list[np.ndarray]:
        """Demultiplex the stacked logits back to per-request arrays."""
        views: list[np.ndarray] = []
        start = 0
        for rows in self.splits:
            views.append(self.logits[start : start + rows])
            start += rows
        return views


def _dtype_code(tensor: np.ndarray) -> int:
    code = _DTYPE_CODES.get(tensor.dtype)
    if code is None:
        raise ChannelError(f"unsupported wire dtype {tensor.dtype}")
    return code


def encode_tensor(request_id: int, tensor: np.ndarray) -> bytes:
    """Serialise a single-request tensor message (header + payload + CRC32)."""
    tensor = np.ascontiguousarray(tensor)
    dtype_code = _dtype_code(tensor)
    if tensor.ndim > 8:
        raise ChannelError(f"too many dimensions for the wire format: {tensor.ndim}")
    payload = tensor.tobytes()
    header = struct.pack(
        f"<4sQBB{tensor.ndim}I",
        _MAGIC,
        request_id,
        dtype_code,
        tensor.ndim,
        *tensor.shape,
    )
    checksum = struct.pack("<I", zlib.crc32(payload))
    return header + payload + checksum


def decode_tensor(blob: bytes) -> tuple[int, np.ndarray]:
    """Parse bytes produced by :func:`encode_tensor`.

    Raises:
        ChannelError: On bad magic, truncation, or checksum mismatch.
    """
    fixed = struct.calcsize("<4sQBB")
    if len(blob) < fixed:
        raise ChannelError("message truncated before header end")
    magic, request_id, dtype_code, ndim = struct.unpack("<4sQBB", blob[:fixed])
    if magic != _MAGIC:
        raise ChannelError(f"bad magic {magic!r}")
    if dtype_code not in _DTYPES:
        raise ChannelError(f"unknown dtype code {dtype_code}")
    if ndim > 8:
        raise ChannelError(f"too many dimensions in header: {ndim}")
    shape_size = struct.calcsize(f"<{ndim}I")
    if len(blob) < fixed + shape_size:
        raise ChannelError("message truncated inside the shape header")
    shape = struct.unpack(f"<{ndim}I", blob[fixed : fixed + shape_size])
    dtype = np.dtype(_DTYPES[dtype_code])
    count = _product(shape) if ndim else 1
    payload_size = count * dtype.itemsize
    start = fixed + shape_size
    payload = blob[start : start + payload_size]
    if len(payload) != payload_size:
        raise ChannelError("message truncated inside payload")
    crc_bytes = blob[start + payload_size : start + payload_size + 4]
    if len(crc_bytes) != 4:
        raise ChannelError("message truncated inside the checksum")
    (expected_crc,) = struct.unpack("<I", crc_bytes)
    if zlib.crc32(payload) != expected_crc:
        raise ChannelError("checksum mismatch — payload corrupted in transit")
    tensor = np.frombuffer(payload, dtype=dtype).reshape(shape)
    return request_id, tensor.copy()


def encode_activation(message: ActivationMessage) -> bytes:
    """Serialise an activation message."""
    return encode_tensor(message.request_id, message.tensor)


def decode_activation(blob: bytes) -> ActivationMessage:
    """Deserialise an activation message."""
    request_id, tensor = decode_tensor(blob)
    return ActivationMessage(request_id=request_id, tensor=tensor)


def encode_prediction(message: PredictionMessage) -> bytes:
    """Serialise a prediction message."""
    return encode_tensor(message.request_id, message.logits)


def decode_prediction(blob: bytes) -> PredictionMessage:
    """Deserialise a prediction message."""
    request_id, tensor = decode_tensor(blob)
    return PredictionMessage(request_id=request_id, logits=tensor)


# ----------------------------------------------------------------------
# Batched frames (serving runtime)
# ----------------------------------------------------------------------
def batch_frame_overhead(
    n_requests: int, ndim: int = 4, quantized: bool = False
) -> int:
    """Wire bytes of a batched frame beyond the raw tensor payload.

    The cost model uses this to amortise the per-frame header across a
    micro-batch (``overhead / batch_size`` per request).
    """
    if n_requests < 1:
        raise ChannelError(f"a batched frame needs >= 1 request, got {n_requests}")
    overhead = _BATCH_FIXED.size + n_requests * (8 + 4)
    if quantized:
        overhead += _QUANT_STRUCT.size
    return overhead + _TENSOR_HEAD.size + ndim * 4 + 4  # dtype/ndim, shape, CRC


def _encode_batch(
    kind: int,
    request_ids: tuple[int, ...],
    splits: tuple[int, ...],
    tensor: np.ndarray,
    quantization: QuantizationParams | None,
) -> bytes:
    if len(request_ids) == 0:
        raise ChannelError("cannot encode an empty micro-batch")
    if len(request_ids) != len(splits):
        raise ChannelError(
            f"request ids ({len(request_ids)}) and splits ({len(splits)}) "
            "must pair up"
        )
    if any(rows < 1 for rows in splits):
        raise ChannelError(f"every request needs >= 1 row, got splits {splits}")
    tensor = np.ascontiguousarray(tensor)
    if tensor.ndim < 1 or tensor.ndim > 8:
        raise ChannelError(
            f"batched payloads must be 1..8-dimensional, got ndim {tensor.ndim}"
        )
    if int(sum(splits)) != tensor.shape[0]:
        raise ChannelError(
            f"splits sum to {int(sum(splits))} rows but the stacked payload "
            f"has {tensor.shape[0]}"
        )
    dtype_code = _dtype_code(tensor)
    flags = 1 if quantization is not None else 0
    parts = [
        _BATCH_FIXED.pack(_BATCH_MAGIC, kind, flags, len(request_ids)),
        _struct(f"<{len(request_ids)}Q").pack(*request_ids),
        _struct(f"<{len(splits)}I").pack(*splits),
    ]
    if quantization is not None:
        parts.append(
            _QUANT_STRUCT.pack(
                quantization.scale, quantization.zero_point, quantization.bits
            )
        )
    parts.append(_TENSOR_HEAD.pack(dtype_code, tensor.ndim))
    parts.append(_struct(f"<{tensor.ndim}I").pack(*tensor.shape))
    payload = tensor.tobytes()
    parts.append(payload)
    parts.append(struct.pack("<I", zlib.crc32(payload)))
    return b"".join(parts)


def _decode_batch(
    blob: bytes, expected_kind: int
) -> tuple[tuple[int, ...], tuple[int, ...], np.ndarray, QuantizationParams | None]:
    if len(blob) < _BATCH_FIXED.size:
        raise ChannelError("batched frame truncated before header end")
    magic, kind, flags, n_requests = _BATCH_FIXED.unpack_from(blob)
    if magic != _BATCH_MAGIC:
        raise ChannelError(f"bad batch magic {magic!r}")
    if kind != expected_kind:
        raise ChannelError(
            f"unexpected batched frame kind {kind} (expected {expected_kind})"
        )
    if flags > 1:
        raise ChannelError(f"unknown batch flags {flags:#x}")
    if n_requests < 1:
        raise ChannelError("batched frame declares zero requests")
    offset = _BATCH_FIXED.size
    ids_size = n_requests * 8
    splits_size = n_requests * 4
    if len(blob) < offset + ids_size + splits_size:
        raise ChannelError("batched frame truncated inside the request table")
    request_ids = _struct(f"<{n_requests}Q").unpack_from(blob, offset)
    offset += ids_size
    splits = _struct(f"<{n_requests}I").unpack_from(blob, offset)
    offset += splits_size
    if any(rows < 1 for rows in splits):
        raise ChannelError("batched frame declares an empty request slot")
    quantization: QuantizationParams | None = None
    if flags & 1:
        if len(blob) < offset + _QUANT_STRUCT.size:
            raise ChannelError("batched frame truncated inside quantisation params")
        scale, zero_point, bits = _QUANT_STRUCT.unpack_from(blob, offset)
        offset += _QUANT_STRUCT.size
        try:
            quantization = QuantizationParams(
                scale=scale, zero_point=zero_point, bits=bits
            )
        except Exception as exc:  # invalid params are a malformed frame
            raise ChannelError(f"invalid quantisation params on the wire: {exc}")
    if len(blob) < offset + _TENSOR_HEAD.size:
        raise ChannelError("batched frame truncated before the tensor header")
    dtype_code, ndim = _TENSOR_HEAD.unpack_from(blob, offset)
    offset += _TENSOR_HEAD.size
    if dtype_code not in _DTYPES:
        raise ChannelError(f"unknown dtype code {dtype_code}")
    if ndim < 1 or ndim > 8:
        raise ChannelError(f"bad payload rank in batched header: {ndim}")
    shape_size = ndim * 4
    if len(blob) < offset + shape_size:
        raise ChannelError("batched frame truncated inside the shape header")
    shape = struct.unpack_from(f"<{ndim}I", blob, offset)
    offset += shape_size
    if int(sum(splits)) != shape[0]:
        raise ChannelError(
            f"batched frame splits sum to {int(sum(splits))} rows but the "
            f"payload shape declares {shape[0]}"
        )
    dtype = np.dtype(_DTYPES[dtype_code])
    payload_size = _product(shape) * dtype.itemsize
    payload = blob[offset : offset + payload_size]
    if len(payload) != payload_size:
        raise ChannelError("batched frame truncated inside payload")
    crc_bytes = blob[offset + payload_size : offset + payload_size + 4]
    if len(crc_bytes) != 4:
        raise ChannelError("batched frame truncated inside the checksum")
    (expected_crc,) = struct.unpack("<I", crc_bytes)
    if zlib.crc32(payload) != expected_crc:
        raise ChannelError("checksum mismatch — batched payload corrupted in transit")
    # Zero-copy view of the frame bytes (read-only); the serving hot path
    # only ever reads the stacked payload.
    tensor = np.frombuffer(payload, dtype=dtype).reshape(shape)
    return request_ids, splits, tensor, quantization


def encode_activation_batch(message: BatchActivationMessage) -> bytes:
    """Serialise a micro-batch of activations as one frame."""
    return _encode_batch(
        _KIND_ACTIVATION,
        tuple(message.request_ids),
        tuple(message.splits),
        message.tensor,
        message.quantization,
    )


def decode_activation_batch(blob: bytes) -> BatchActivationMessage:
    """Deserialise a batched activation frame."""
    request_ids, splits, tensor, quantization = _decode_batch(blob, _KIND_ACTIVATION)
    return BatchActivationMessage(
        request_ids=request_ids,
        splits=splits,
        tensor=tensor,
        quantization=quantization,
    )


def encode_prediction_batch(message: BatchPredictionMessage) -> bytes:
    """Serialise a micro-batch of predictions as one frame."""
    return _encode_batch(
        _KIND_PREDICTION,
        tuple(message.request_ids),
        tuple(message.splits),
        message.logits,
        None,
    )


def decode_prediction_batch(blob: bytes) -> BatchPredictionMessage:
    """Deserialise a batched prediction frame."""
    request_ids, splits, logits, _ = _decode_batch(blob, _KIND_PREDICTION)
    return BatchPredictionMessage(request_ids=request_ids, splits=splits, logits=logits)
