"""``repro.edge`` — cost model and the edge/cloud split-inference stack.

Analytic MAC/byte accounting with a serving batch-size axis
(:mod:`repro.edge.costs`), the §3.4 cutting point planner, a binary wire
protocol with single-request and batched micro-batch frames
(:mod:`repro.edge.protocol`), affine payload quantisation, a simulated
channel, the batch-invariant forward executor
(:mod:`repro.edge.executor`), and the EdgeDevice / CloudServer runtime of
Figure 2 with both the sequential reference path and the stacked
``forward_batch`` / ``predict_batch`` paths consumed by the
throughput-oriented serving engine in :mod:`repro.serve`.
"""

from repro.edge.channel import Channel, ChannelStats
from repro.edge.costs import (
    BYTES_PER_ELEMENT,
    BatchedCutCost,
    CutCost,
    LayerCost,
    batched_cut_cost,
    batched_cut_costs,
    cut_cost,
    cut_costs,
    layer_macs,
    profile_network,
)
from repro.edge.device import CloudServer, EdgeDevice, InferenceSession, SessionReport
from repro.edge.energy import (
    EMBEDDED_GPU,
    MICROCONTROLLER,
    MOBILE_CPU,
    PROFILES,
    DeviceProfile,
    EnergyEstimate,
    battery_inferences,
    cheapest_cut,
    energy_table,
    estimate_cut,
)
from repro.edge.executor import BatchInvariantExecutor, batch_invariant_linear
from repro.edge.planner import (
    CutCandidate,
    CuttingPointPlanner,
    WindowPlan,
    plan_batch_window,
    plan_deployment_windows,
    predict_window_latency,
)
from repro.edge.quantization import (
    QuantizationParams,
    QuantizedActivation,
    calibrate,
    compress_activation,
    dequantize,
    quantization_error,
    quantize,
    wire_bytes,
)
from repro.edge.protocol import (
    ActivationMessage,
    BatchActivationMessage,
    BatchPredictionMessage,
    PredictionMessage,
    batch_frame_overhead,
    decode_activation,
    decode_activation_batch,
    decode_prediction,
    decode_prediction_batch,
    encode_activation,
    encode_activation_batch,
    encode_prediction,
    encode_prediction_batch,
)

__all__ = [
    "ActivationMessage",
    "BatchActivationMessage",
    "BatchInvariantExecutor",
    "BatchPredictionMessage",
    "BatchedCutCost",
    "BYTES_PER_ELEMENT",
    "Channel",
    "ChannelStats",
    "CloudServer",
    "CutCandidate",
    "DeviceProfile",
    "EMBEDDED_GPU",
    "EnergyEstimate",
    "MICROCONTROLLER",
    "MOBILE_CPU",
    "PROFILES",
    "battery_inferences",
    "batch_frame_overhead",
    "batch_invariant_linear",
    "batched_cut_cost",
    "batched_cut_costs",
    "cheapest_cut",
    "energy_table",
    "estimate_cut",
    "CutCost",
    "CuttingPointPlanner",
    "EdgeDevice",
    "InferenceSession",
    "LayerCost",
    "PredictionMessage",
    "QuantizationParams",
    "QuantizedActivation",
    "calibrate",
    "compress_activation",
    "dequantize",
    "quantization_error",
    "quantize",
    "wire_bytes",
    "SessionReport",
    "cut_cost",
    "cut_costs",
    "decode_activation",
    "decode_activation_batch",
    "decode_prediction",
    "decode_prediction_batch",
    "encode_activation",
    "encode_activation_batch",
    "encode_prediction",
    "encode_prediction_batch",
    "layer_macs",
    "plan_batch_window",
    "plan_deployment_windows",
    "predict_window_latency",
    "profile_network",
    "WindowPlan",
]
