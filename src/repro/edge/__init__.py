"""``repro.edge`` — cost model and simulated edge/cloud deployment.

Analytic MAC/byte accounting (:mod:`repro.edge.costs`), the §3.4 cutting
point planner, a binary wire protocol, a simulated channel, and the
EdgeDevice / CloudServer runtime of Figure 2.
"""

from repro.edge.channel import Channel, ChannelStats
from repro.edge.costs import (
    BYTES_PER_ELEMENT,
    CutCost,
    LayerCost,
    cut_cost,
    cut_costs,
    layer_macs,
    profile_network,
)
from repro.edge.device import CloudServer, EdgeDevice, InferenceSession, SessionReport
from repro.edge.energy import (
    EMBEDDED_GPU,
    MICROCONTROLLER,
    MOBILE_CPU,
    PROFILES,
    DeviceProfile,
    EnergyEstimate,
    battery_inferences,
    cheapest_cut,
    energy_table,
    estimate_cut,
)
from repro.edge.planner import CutCandidate, CuttingPointPlanner
from repro.edge.quantization import (
    QuantizationParams,
    QuantizedActivation,
    calibrate,
    compress_activation,
    dequantize,
    quantization_error,
    quantize,
    wire_bytes,
)
from repro.edge.protocol import (
    ActivationMessage,
    PredictionMessage,
    decode_activation,
    decode_prediction,
    encode_activation,
    encode_prediction,
)

__all__ = [
    "ActivationMessage",
    "BYTES_PER_ELEMENT",
    "Channel",
    "ChannelStats",
    "CloudServer",
    "CutCandidate",
    "DeviceProfile",
    "EMBEDDED_GPU",
    "EnergyEstimate",
    "MICROCONTROLLER",
    "MOBILE_CPU",
    "PROFILES",
    "battery_inferences",
    "cheapest_cut",
    "energy_table",
    "estimate_cut",
    "CutCost",
    "CuttingPointPlanner",
    "EdgeDevice",
    "InferenceSession",
    "LayerCost",
    "PredictionMessage",
    "QuantizationParams",
    "QuantizedActivation",
    "calibrate",
    "compress_activation",
    "dequantize",
    "quantization_error",
    "quantize",
    "wire_bytes",
    "SessionReport",
    "cut_cost",
    "cut_costs",
    "decode_activation",
    "decode_prediction",
    "encode_activation",
    "encode_prediction",
    "layer_macs",
    "profile_network",
]
