"""Cutting-point selection (paper §3.4) and serving-window planning.

Layer choice "is mostly an interplay of communication and computation of
the edge device": deeper cuts start from lower MI (more private) but cost
more edge compute, while communication depends non-monotonically on layer
output sizes.  The planner reproduces the paper's reasoning: Figure 6 plots
``Computation × Communication`` against ex-vivo privacy per cut, and the
chosen point is the one offering the most privacy among Pareto-reasonable
costs (SVHN: conv6 — cheapest *and* most private; LeNet: conv2 — a one
percent cost increase "worth the gained privacy level").

The serving runtime extends the same cost model with a batch-size axis,
and :func:`plan_batch_window` closes the loop for deadline-aware serving:
given a target latency SLO and an arrival rate, it walks the batched wire
costs to the largest batching window whose worst-case request latency
(window fill wait + wire transfer + stacked compute) still meets the SLO —
the window the engine should be deployed with.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.edge.channel import Channel
from repro.edge.costs import (
    BYTES_PER_ELEMENT,
    BatchedCutCost,
    CutCost,
    batched_cut_costs,
    cut_costs,
)
from repro.edge.protocol import batch_frame_overhead
from repro.errors import ConfigurationError, ModelError
from repro.models.base import SplittableModel


@dataclass(frozen=True)
class CutCandidate:
    """One cutting point with its cost and measured privacy.

    Attributes:
        cut: Cut-point name.
        cost: The §3.4 cost model entry (kMAC, MB, product) — a
            :class:`~repro.edge.costs.BatchedCutCost` when the planner was
            given a serving batch size.
        ex_vivo_privacy: Measured ``1/MI`` at this cut.
    """

    cut: str
    cost: CutCost | BatchedCutCost
    ex_vivo_privacy: float


class CuttingPointPlanner:
    """Ranks cutting points by the paper's cost/privacy trade-off.

    Args:
        model: The backbone under consideration.
        privacy_by_cut: ``{cut_name: ex vivo privacy}`` measurements (from
            :func:`repro.privacy.metrics.estimate_leakage` at each cut).
        batch_size: Serving micro-batch size; above 1 the communication
            term uses the batched wire (amortised frame header), which can
            shift the Pareto frontier for small activations.
        bytes_per_element: Wire bytes per activation element (e.g. a
            quantised payload); only consulted with the batched cost model.
    """

    def __init__(
        self,
        model: SplittableModel,
        privacy_by_cut: dict[str, float],
        batch_size: int = 1,
        bytes_per_element: float = BYTES_PER_ELEMENT,
    ) -> None:
        if batch_size == 1 and bytes_per_element == BYTES_PER_ELEMENT:
            costs: dict[str, CutCost | BatchedCutCost] = {
                cost.cut: cost for cost in cut_costs(model)
            }
        else:
            costs = {
                cost.cut: cost
                for cost in batched_cut_costs(model, batch_size, bytes_per_element)
            }
        missing = set(privacy_by_cut) - set(costs)
        if missing:
            raise ModelError(f"unknown cuts in privacy map: {sorted(missing)}")
        if not privacy_by_cut:
            raise ModelError("privacy_by_cut must not be empty")
        self.candidates = [
            CutCandidate(cut=cut, cost=costs[cut], ex_vivo_privacy=privacy)
            for cut, privacy in privacy_by_cut.items()
        ]

    # ------------------------------------------------------------------
    # Analyses
    # ------------------------------------------------------------------
    def pareto_frontier(self) -> list[CutCandidate]:
        """Candidates not dominated in (lower cost, higher privacy)."""
        frontier = []
        for candidate in self.candidates:
            dominated = any(
                other.cost.product <= candidate.cost.product
                and other.ex_vivo_privacy >= candidate.ex_vivo_privacy
                and (
                    other.cost.product < candidate.cost.product
                    or other.ex_vivo_privacy > candidate.ex_vivo_privacy
                )
                for other in self.candidates
            )
            if not dominated:
                frontier.append(candidate)
        return sorted(frontier, key=lambda c: c.cost.product)

    def recommend(self, cost_budget: float | None = None) -> CutCandidate:
        """The paper's choice: most private Pareto point within budget.

        Args:
            cost_budget: Optional upper bound on the cost product
                (kMAC × MB); ``None`` means unconstrained, in which case the
                most private frontier point wins (ties broken by cost).
        """
        frontier = self.pareto_frontier()
        if cost_budget is not None:
            affordable = [c for c in frontier if c.cost.product <= cost_budget]
            if not affordable:
                raise ModelError(
                    f"no cutting point fits the cost budget {cost_budget}"
                )
            frontier = affordable
        return max(frontier, key=lambda c: (c.ex_vivo_privacy, -c.cost.product))

    def ranked(self) -> list[CutCandidate]:
        """All candidates, most attractive (private, then cheap) first."""
        return sorted(
            self.candidates,
            key=lambda c: (-c.ex_vivo_privacy, c.cost.product),
        )


# ----------------------------------------------------------------------
# Serving-window planning (deadline-aware batching)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WindowPlan:
    """A batching window sized against a latency SLO.

    Attributes:
        cut: Cut-point the plan was evaluated at.
        window: Recommended ``batch_window`` (requests per micro-batch).
        feasible: Whether even this window meets the SLO; ``False`` means
            the SLO is unreachable at this cut/link and ``window`` is the
            latency-minimal fallback of 1.
        predicted_latency_seconds: Worst-case request latency at the
            recommended window (head-of-window fill wait + up/downlink
            transfer + stacked compute).
        fill_wait_seconds: The window-fill component of that latency.
        wire_seconds: The transfer component (uplink + downlink frames).
        compute_seconds: The stacked remote-compute component.
        per_request_wire_bytes: Uplink frame bytes amortised per request.
    """

    cut: str
    window: int
    feasible: bool
    predicted_latency_seconds: float
    fill_wait_seconds: float
    wire_seconds: float
    compute_seconds: float
    per_request_wire_bytes: float


def predict_window_latency(
    model: SplittableModel,
    cut: str,
    window: int,
    *,
    arrival_rate_rps: float,
    service_seconds_per_sample: float,
    channel: Channel | None = None,
    bytes_per_element: float = BYTES_PER_ELEMENT,
    n_classes: int = 10,
) -> tuple[float, float, float, float]:
    """Worst-case latency components of one batching window.

    The head request of a window waits for ``window - 1`` later arrivals
    (``(window-1)/rate`` at the given Poisson rate), then the whole stack
    pays one uplink frame, one stacked remote pass, and one downlink frame.

    Returns:
        ``(total, fill_wait, wire, compute)`` in seconds.
    """
    if window < 1:
        raise ConfigurationError(f"window must be >= 1, got {window}")
    if arrival_rate_rps <= 0:
        raise ConfigurationError(
            f"arrival rate must be positive, got {arrival_rate_rps}"
        )
    if service_seconds_per_sample < 0:
        raise ConfigurationError(
            f"per-sample service seconds must be >= 0, got "
            f"{service_seconds_per_sample}"
        )
    channel = channel or Channel()
    batched = next(
        cost
        for cost in batched_cut_costs(model, window, bytes_per_element)
        if cost.cut == cut
    )
    uplink_bytes = batched.wire_bytes * window  # whole frame, header included
    downlink_bytes = window * n_classes * BYTES_PER_ELEMENT + batch_frame_overhead(
        window, ndim=2
    )
    fill_wait = (window - 1) / arrival_rate_rps
    wire = channel.transfer_seconds(int(uplink_bytes)) + channel.transfer_seconds(
        int(downlink_bytes)
    )
    compute = window * service_seconds_per_sample
    return fill_wait + wire + compute, fill_wait, wire, compute


def plan_batch_window(
    model: SplittableModel,
    cut: str,
    *,
    target_slo_seconds: float,
    arrival_rate_rps: float,
    service_seconds_per_sample: float,
    channel: Channel | None = None,
    bytes_per_element: float = BYTES_PER_ELEMENT,
    max_window: int = 64,
    n_classes: int = 10,
) -> WindowPlan:
    """The largest batching window that still meets a latency SLO.

    Larger windows amortise the frame header further and raise occupancy
    (throughput), but make the head request wait longer — so under this
    cost model the worst-case latency is non-decreasing in the window and
    the SLO-optimal choice is the largest window that still fits.  When
    even a window of 1 misses the target, the plan falls back to 1 and is
    marked infeasible.

    Args:
        model / cut: The split backbone and cutting point being served.
        target_slo_seconds: The latency SLO to size against.
        arrival_rate_rps: Expected request arrival rate.
        service_seconds_per_sample: Measured (or estimated) remote compute
            seconds per stacked sample.
        channel: Link model for transfer times (default: fast clean link).
        bytes_per_element: Wire bytes per activation element (quantised
            payloads shrink this).
        max_window: Upper bound on the considered window.
        n_classes: Logit width (sizes the downlink frame).
    """
    if target_slo_seconds <= 0:
        raise ConfigurationError(
            f"target SLO must be positive, got {target_slo_seconds}"
        )
    if max_window < 1:
        raise ConfigurationError(f"max window must be >= 1, got {max_window}")
    if cut not in model.cut_names():
        raise ModelError(f"{model.model_name} has no cut point {cut!r}")

    def components(window: int) -> tuple[float, float, float, float]:
        return predict_window_latency(
            model,
            cut,
            window,
            arrival_rate_rps=arrival_rate_rps,
            service_seconds_per_sample=service_seconds_per_sample,
            channel=channel,
            bytes_per_element=bytes_per_element,
            n_classes=n_classes,
        )

    best: tuple[int, tuple[float, float, float, float]] | None = None
    for window in range(1, max_window + 1):
        latency = components(window)
        if latency[0] <= target_slo_seconds:
            best = (window, latency)
        else:
            break  # latency is non-decreasing in the window: no point on

    feasible = best is not None
    window, latency = best if best is not None else (1, components(1))
    batched = next(
        cost
        for cost in batched_cut_costs(model, window, bytes_per_element)
        if cost.cut == cut
    )
    return WindowPlan(
        cut=cut,
        window=window,
        feasible=feasible,
        predicted_latency_seconds=latency[0],
        fill_wait_seconds=latency[1],
        wire_seconds=latency[2],
        compute_seconds=latency[3],
        per_request_wire_bytes=batched.wire_bytes,
    )


def plan_deployment_windows(
    deployments: dict[str, dict],
    **shared,
) -> dict[str, WindowPlan]:
    """Size a batching window per named deployment of a control plane.

    Multi-tenant serving wants *per-deployment* windows: each tenant has
    its own cut (activation size → wire cost), arrival rate, and latency
    SLO, so one shared window either starves tight-SLO tenants or wastes
    occupancy on loose ones.  This walks :func:`plan_batch_window` once
    per deployment and returns the plans keyed by deployment name —
    exactly what :meth:`repro.core.ShredderPipeline.deploy_many` (or a
    direct :class:`~repro.serve.controlplane.ControlPlane` registration
    with ``batch_window=None``) consumes.

    Args:
        deployments: ``{name: kwargs}`` where each kwargs dict supplies
            :func:`plan_batch_window` arguments (``model``, ``cut``,
            ``target_slo_seconds``, ``arrival_rate_rps``, ...).
        **shared: Defaults merged under every deployment's kwargs (e.g.
            one ``channel`` or ``service_seconds_per_sample`` for all).
    """
    if not deployments:
        raise ConfigurationError("need at least one deployment to plan for")
    plans: dict[str, WindowPlan] = {}
    for name, overrides in deployments.items():
        kwargs = {**shared, **overrides}
        missing = {"model", "cut"} - set(kwargs)
        if missing:
            raise ConfigurationError(
                f"deployment {name!r}: planner needs {sorted(missing)}"
            )
        model = kwargs.pop("model")
        cut = kwargs.pop("cut")
        plans[name] = plan_batch_window(model, cut, **kwargs)
    return plans
