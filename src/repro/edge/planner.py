"""Cutting-point selection (paper §3.4).

Layer choice "is mostly an interplay of communication and computation of
the edge device": deeper cuts start from lower MI (more private) but cost
more edge compute, while communication depends non-monotonically on layer
output sizes.  The planner reproduces the paper's reasoning: Figure 6 plots
``Computation × Communication`` against ex-vivo privacy per cut, and the
chosen point is the one offering the most privacy among Pareto-reasonable
costs (SVHN: conv6 — cheapest *and* most private; LeNet: conv2 — a one
percent cost increase "worth the gained privacy level").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.edge.costs import (
    BYTES_PER_ELEMENT,
    BatchedCutCost,
    CutCost,
    batched_cut_costs,
    cut_costs,
)
from repro.errors import ModelError
from repro.models.base import SplittableModel


@dataclass(frozen=True)
class CutCandidate:
    """One cutting point with its cost and measured privacy.

    Attributes:
        cut: Cut-point name.
        cost: The §3.4 cost model entry (kMAC, MB, product) — a
            :class:`~repro.edge.costs.BatchedCutCost` when the planner was
            given a serving batch size.
        ex_vivo_privacy: Measured ``1/MI`` at this cut.
    """

    cut: str
    cost: CutCost | BatchedCutCost
    ex_vivo_privacy: float


class CuttingPointPlanner:
    """Ranks cutting points by the paper's cost/privacy trade-off.

    Args:
        model: The backbone under consideration.
        privacy_by_cut: ``{cut_name: ex vivo privacy}`` measurements (from
            :func:`repro.privacy.metrics.estimate_leakage` at each cut).
        batch_size: Serving micro-batch size; above 1 the communication
            term uses the batched wire (amortised frame header), which can
            shift the Pareto frontier for small activations.
        bytes_per_element: Wire bytes per activation element (e.g. a
            quantised payload); only consulted with the batched cost model.
    """

    def __init__(
        self,
        model: SplittableModel,
        privacy_by_cut: dict[str, float],
        batch_size: int = 1,
        bytes_per_element: float = BYTES_PER_ELEMENT,
    ) -> None:
        if batch_size == 1 and bytes_per_element == BYTES_PER_ELEMENT:
            costs: dict[str, CutCost | BatchedCutCost] = {
                cost.cut: cost for cost in cut_costs(model)
            }
        else:
            costs = {
                cost.cut: cost
                for cost in batched_cut_costs(model, batch_size, bytes_per_element)
            }
        missing = set(privacy_by_cut) - set(costs)
        if missing:
            raise ModelError(f"unknown cuts in privacy map: {sorted(missing)}")
        if not privacy_by_cut:
            raise ModelError("privacy_by_cut must not be empty")
        self.candidates = [
            CutCandidate(cut=cut, cost=costs[cut], ex_vivo_privacy=privacy)
            for cut, privacy in privacy_by_cut.items()
        ]

    # ------------------------------------------------------------------
    # Analyses
    # ------------------------------------------------------------------
    def pareto_frontier(self) -> list[CutCandidate]:
        """Candidates not dominated in (lower cost, higher privacy)."""
        frontier = []
        for candidate in self.candidates:
            dominated = any(
                other.cost.product <= candidate.cost.product
                and other.ex_vivo_privacy >= candidate.ex_vivo_privacy
                and (
                    other.cost.product < candidate.cost.product
                    or other.ex_vivo_privacy > candidate.ex_vivo_privacy
                )
                for other in self.candidates
            )
            if not dominated:
                frontier.append(candidate)
        return sorted(frontier, key=lambda c: c.cost.product)

    def recommend(self, cost_budget: float | None = None) -> CutCandidate:
        """The paper's choice: most private Pareto point within budget.

        Args:
            cost_budget: Optional upper bound on the cost product
                (kMAC × MB); ``None`` means unconstrained, in which case the
                most private frontier point wins (ties broken by cost).
        """
        frontier = self.pareto_frontier()
        if cost_budget is not None:
            affordable = [c for c in frontier if c.cost.product <= cost_budget]
            if not affordable:
                raise ModelError(
                    f"no cutting point fits the cost budget {cost_budget}"
                )
            frontier = affordable
        return max(frontier, key=lambda c: (c.ex_vivo_privacy, -c.cost.product))

    def ranked(self) -> list[CutCandidate]:
        """All candidates, most attractive (private, then cheap) first."""
        return sorted(
            self.candidates,
            key=lambda c: (-c.ex_vivo_privacy, c.cost.product),
        )
