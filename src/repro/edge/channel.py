"""Simulated network link between edge and cloud.

Models the communication cost the paper's §3.4 trade-off analysis reasons
about: transfer time = latency + bytes/bandwidth, with optional random drops
(retried up to a bound).  By default wall-clock time is *simulated*, not
slept, so the whole deployment story runs instantly in tests and
benchmarks; ``realtime=True`` additionally sleeps the transfer time, which
is what lets the multi-worker serving engine demonstrate real overlap of
wire waits (the dominant serving latency) across concurrent micro-batches.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ChannelError, ChannelOwnershipError, ConfigurationError


@dataclass
class ChannelStats:
    """Accumulated traffic statistics."""

    messages: int = 0
    bytes_sent: int = 0
    simulated_seconds: float = 0.0
    drops: int = 0
    per_message_seconds: list[float] = field(default_factory=list)


class Channel:
    """A lossy, bandwidth-limited, fixed-latency link.

    Args:
        bandwidth_mbps: Payload bandwidth in megabits per second.
        latency_ms: One-way latency per message in milliseconds.
        drop_rate: Probability a transmission attempt is lost.
        max_retries: Attempts before giving up with :class:`ChannelError`.
        rng: Randomness for drops.
        realtime: Sleep the simulated transfer time on every transmission
            (in addition to accounting it), emulating a real link so that
            concurrent serving workers genuinely overlap wire waits.
    """

    def __init__(
        self,
        bandwidth_mbps: float = 100.0,
        latency_ms: float = 10.0,
        drop_rate: float = 0.0,
        max_retries: int = 3,
        rng: np.random.Generator | None = None,
        realtime: bool = False,
    ) -> None:
        if bandwidth_mbps <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if latency_ms < 0:
            raise ConfigurationError("latency must be non-negative")
        if not 0.0 <= drop_rate < 1.0:
            raise ConfigurationError("drop rate must be in [0, 1)")
        self.bandwidth_mbps = bandwidth_mbps
        self.latency_ms = latency_ms
        self.drop_rate = drop_rate
        self.max_retries = max_retries
        self.realtime = realtime
        self._rng = rng or np.random.default_rng()
        self.stats = ChannelStats()
        # Stats accumulation and the drop generator are not thread-safe;
        # concurrent use is a sharing bug (each worker must hold its own
        # clone), surfaced as a typed error instead of corrupt accounting.
        self._busy = threading.Lock()

    def clone(self, rng: np.random.Generator | None = None) -> "Channel":
        """A channel with the same link parameters but fresh statistics.

        The serving engine gives every cloud worker its own clone:
        :class:`ChannelStats` accumulation is not thread-safe, and separate
        stats per worker are exactly what per-worker occupancy reporting
        wants anyway.

        Raises:
            ChannelOwnershipError: When the channel is mid-transmission on
                another thread (cloning would race the drop generator).
        """
        if not self._busy.acquire(blocking=False):
            raise ChannelOwnershipError(
                "cannot clone a channel while another thread is "
                "transmitting on it; clone from the owning thread (e.g. at "
                "deployment registration) instead"
            )
        try:
            return Channel(
                bandwidth_mbps=self.bandwidth_mbps,
                latency_ms=self.latency_ms,
                drop_rate=self.drop_rate,
                max_retries=self.max_retries,
                rng=rng or np.random.default_rng(self._rng.integers(0, 2**63)),
                realtime=self.realtime,
            )
        finally:
            self._busy.release()

    def transfer_seconds(self, n_bytes: int) -> float:
        """Simulated seconds to move ``n_bytes`` across the link once."""
        payload = (n_bytes * 8) / (self.bandwidth_mbps * 1e6)
        return self.latency_ms / 1e3 + payload

    def transmit(self, blob: bytes) -> bytes:
        """Deliver a message, simulating time and possible retries.

        Returns the delivered bytes (identity — the channel is transparent
        apart from cost and drops).

        Raises:
            ChannelError: When every retry is dropped.
            ChannelOwnershipError: When another thread is already
                transmitting on this channel (share a clone per worker,
                never the channel itself).
        """
        if not self._busy.acquire(blocking=False):
            raise ChannelOwnershipError(
                "channel used from two threads at once; every concurrent "
                "worker must transmit over its own clone()"
            )
        try:
            attempts = 0
            while True:
                attempts += 1
                elapsed = self.transfer_seconds(len(blob))
                self.stats.simulated_seconds += elapsed
                if self.realtime:
                    time.sleep(elapsed)
                if self.drop_rate and self._rng.random() < self.drop_rate:
                    self.stats.drops += 1
                    if attempts > self.max_retries:
                        raise ChannelError(
                            f"message lost after {attempts} attempts "
                            f"(drop rate {self.drop_rate})"
                        )
                    continue
                self.stats.messages += 1
                self.stats.bytes_sent += len(blob)
                self.stats.per_message_seconds.append(elapsed)
                return blob
        finally:
            self._busy.release()
