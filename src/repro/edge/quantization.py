"""Activation quantisation for the edge→cloud wire.

The paper's §3.4 cost model charges 4 bytes per activation element
(float32).  A practical split-inference deployment would quantise the
communicated tensor — an 8-bit affine code cuts communication 4× — and
because Shredder's noisy activations already tolerate large perturbation,
quantisation error is essentially free accuracy-wise.  This module
provides the uniform affine quantiser used by the deployment runtime and
the communication-ablation benchmark.  The batched serving engine
(:mod:`repro.serve`) quantises each micro-batch's *stacked* payload once —
the code parameters travel in the batched frame header (see
:mod:`repro.edge.protocol`) and the cloud executor ingests the raw codes
directly: with the ``int8_ingest`` IR rewrite active
(:mod:`repro.edge.ir`) the uint8/uint16 codes feed the first conv/GEMM
as-is, the affine map folded into that op's epilogue, so no f32
dequantised copy of the payload is ever materialised; with rewrites
disabled the executor calls :func:`dequantize` internally, exactly like
the historical path.

Quantisation interacts with privacy in one direction only: it is a
deterministic, (almost) invertible per-element map, so it cannot *increase*
mutual information; the measured leakage of the dequantised tensor is the
relevant (and conservative) quantity.

Weights can be quantised too (:func:`quantize_weights`): per-output-channel
symmetric int8 codes with float32 scales, calibration-free (the scale is the
row absmax over 127).  Unlike activation quantisation this changes *what*
the model computes, so the ``int8_weights`` IR rewrite that consumes these
codes is opt-in (``weight_bits=8``) and gated on label agreement rather than
f32 closeness — see :mod:`repro.edge.ir`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ChannelError, ConfigurationError


@dataclass(frozen=True)
class QuantizationParams:
    """Affine code parameters shared by encoder and decoder.

    ``value ≈ scale * (code − zero_point)`` with codes in ``[0, 2**bits)``.
    """

    scale: float
    zero_point: int
    bits: int

    def __post_init__(self) -> None:
        if self.bits < 2 or self.bits > 16:
            raise ConfigurationError(f"bits must be in [2, 16], got {self.bits}")
        if self.scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {self.scale}")
        levels = 1 << self.bits
        if not 0 <= self.zero_point < levels:
            raise ConfigurationError(
                f"zero point {self.zero_point} outside [0, {levels})"
            )

    @property
    def levels(self) -> int:
        """Number of representable codes."""
        return 1 << self.bits

    @property
    def bytes_per_element(self) -> int:
        """Wire bytes per element (codes are packed into whole bytes)."""
        return (self.bits + 7) // 8


def calibrate(
    tensor: np.ndarray, bits: int = 8, percentile: float = 100.0
) -> QuantizationParams:
    """Derive affine parameters covering a calibration tensor's range.

    Args:
        tensor: Representative activations (e.g. the training-set
            activations at the cut point).
        bits: Code width.
        percentile: Range coverage; below 100 clips outliers symmetrically
            (e.g. 99.9 ignores the extreme tails, shrinking the step size).
    """
    tensor = np.asarray(tensor, dtype=np.float64)
    if tensor.size == 0:
        raise ConfigurationError("cannot calibrate on an empty tensor")
    if not 0 < percentile <= 100:
        raise ConfigurationError(f"percentile must be in (0, 100], got {percentile}")
    if percentile >= 100.0:
        low, high = float(tensor.min()), float(tensor.max())
    else:
        tail = (100.0 - percentile) / 2.0
        low, high = (float(v) for v in np.percentile(tensor, [tail, 100.0 - tail]))
    # Extend the range to include zero so that a valid integer zero point
    # always exists (the TF-Lite convention); also guards degenerate ranges.
    low, high = min(low, 0.0), max(high, 0.0)
    if high <= low:
        high = low + 1e-6
    levels = 1 << bits
    scale = (high - low) / (levels - 1)
    zero_point = int(round(-low / scale))
    zero_point = int(np.clip(zero_point, 0, levels - 1))
    return QuantizationParams(scale=scale, zero_point=zero_point, bits=bits)


def quantize(tensor: np.ndarray, params: QuantizationParams) -> np.ndarray:
    """Encode a float tensor to integer codes (dtype uint16, values fit
    the configured bit width)."""
    tensor = np.asarray(tensor, dtype=np.float64)
    codes = np.round(tensor / params.scale) + params.zero_point
    return np.clip(codes, 0, params.levels - 1).astype(np.uint16)


def dequantize(codes: np.ndarray, params: QuantizationParams) -> np.ndarray:
    """Decode integer codes back to float32 values."""
    codes = np.asarray(codes)
    if codes.size and (codes.min() < 0 or codes.max() >= params.levels):
        raise ChannelError(
            f"codes outside [0, {params.levels}) for {params.bits}-bit params"
        )
    return ((codes.astype(np.float64) - params.zero_point) * params.scale).astype(
        np.float32
    )


def quantization_error(tensor: np.ndarray, params: QuantizationParams) -> float:
    """RMS round-trip error of quantising ``tensor``."""
    tensor = np.asarray(tensor, dtype=np.float64)
    round_trip = dequantize(quantize(tensor, params), params)
    return float(np.sqrt(np.mean(np.square(tensor - round_trip))))


def wire_bytes(shape: tuple[int, ...], params: QuantizationParams) -> int:
    """Payload bytes for a quantised tensor of the given shape."""
    return int(np.prod(shape)) * params.bytes_per_element


@dataclass(frozen=True)
class QuantizedActivation:
    """A quantised activation plus everything needed to decode it."""

    codes: np.ndarray
    params: QuantizationParams

    def dequantized(self) -> np.ndarray:
        """Reconstruct the float activation."""
        return dequantize(self.codes, self.params)

    @property
    def payload_bytes(self) -> int:
        """Bytes this activation occupies on the wire."""
        return wire_bytes(self.codes.shape, self.params)


def compress_activation(
    activation: np.ndarray, params: QuantizationParams
) -> QuantizedActivation:
    """Quantise one activation batch for transmission."""
    return QuantizedActivation(codes=quantize(activation, params), params=params)


@dataclass(frozen=True)
class WeightQuantization:
    """Per-output-channel symmetric weight codes.

    ``weight[oc, k] ≈ scales[oc] * codes[oc, k]`` with int8 codes in
    ``[-qmax, qmax]`` and zero point 0 by construction (symmetric).  The
    codes matrix has the canonical GEMM layout ``(out_features, K)`` — the
    same shape :mod:`repro.edge.ir` lowers conv/linear weights to — so a
    quantised op swaps its weight pointer for the code plane and applies
    ``scales`` in the epilogue.
    """

    codes: np.ndarray  # int8, shape (out, K), C-contiguous
    scales: np.ndarray  # float32, shape (out,), strictly positive
    bits: int

    @property
    def qmax(self) -> int:
        """Largest code magnitude (127 for 8 bits)."""
        return (1 << (self.bits - 1)) - 1

    @property
    def code_bytes(self) -> int:
        """Bytes the code plane occupies (one byte per element)."""
        return int(self.codes.size)

    def dequantized(self) -> np.ndarray:
        """Reconstruct the float32 weight matrix (testing/reference only —
        the native backend never materialises this)."""
        return (
            self.scales[:, None].astype(np.float64) * self.codes.astype(np.float64)
        ).astype(np.float32)


def quantize_weights(weight: np.ndarray, bits: int = 8) -> WeightQuantization:
    """Per-output-channel symmetric quantisation of a 2-D weight matrix.

    Calibration-free post-training quantisation: each output channel's
    scale is ``absmax(row) / qmax`` so the row's extreme value maps exactly
    to ``±qmax`` and the representable grid is symmetric about zero (zero
    point 0, so no zero-point correction term is needed for the *weight*
    operand).  Rows that are identically zero get scale 1.0 and all-zero
    codes.  Round-trip error is bounded per element by ``scales[oc] / 2``.
    """
    if bits < 2 or bits > 8:
        raise ConfigurationError(f"weight bits must be in [2, 8], got {bits}")
    weight = np.asarray(weight)
    if weight.ndim != 2:
        raise ConfigurationError(
            f"quantize_weights expects a 2-D (out, K) matrix, got shape {weight.shape}"
        )
    qmax = (1 << (bits - 1)) - 1
    w64 = weight.astype(np.float64)
    absmax = np.max(np.abs(w64), axis=1)
    scales = absmax / qmax
    scales[absmax == 0.0] = 1.0  # zero rows quantise to zero codes exactly
    codes = np.clip(np.round(w64 / scales[:, None]), -qmax, qmax).astype(np.int8)
    return WeightQuantization(
        codes=np.ascontiguousarray(codes),
        scales=np.ascontiguousarray(scales.astype(np.float32)),
        bits=bits,
    )
