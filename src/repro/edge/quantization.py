"""Activation quantisation for the edge→cloud wire.

The paper's §3.4 cost model charges 4 bytes per activation element
(float32).  A practical split-inference deployment would quantise the
communicated tensor — an 8-bit affine code cuts communication 4× — and
because Shredder's noisy activations already tolerate large perturbation,
quantisation error is essentially free accuracy-wise.  This module
provides the uniform affine quantiser used by the deployment runtime and
the communication-ablation benchmark.  The batched serving engine
(:mod:`repro.serve`) quantises each micro-batch's *stacked* payload once —
the code parameters travel in the batched frame header (see
:mod:`repro.edge.protocol`) and the cloud executor ingests the raw codes
directly: with the ``int8_ingest`` IR rewrite active
(:mod:`repro.edge.ir`) the uint8/uint16 codes feed the first conv/GEMM
as-is, the affine map folded into that op's epilogue, so no f32
dequantised copy of the payload is ever materialised; with rewrites
disabled the executor calls :func:`dequantize` internally, exactly like
the historical path.

Quantisation interacts with privacy in one direction only: it is a
deterministic, (almost) invertible per-element map, so it cannot *increase*
mutual information; the measured leakage of the dequantised tensor is the
relevant (and conservative) quantity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ChannelError, ConfigurationError


@dataclass(frozen=True)
class QuantizationParams:
    """Affine code parameters shared by encoder and decoder.

    ``value ≈ scale * (code − zero_point)`` with codes in ``[0, 2**bits)``.
    """

    scale: float
    zero_point: int
    bits: int

    def __post_init__(self) -> None:
        if self.bits < 2 or self.bits > 16:
            raise ConfigurationError(f"bits must be in [2, 16], got {self.bits}")
        if self.scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {self.scale}")
        levels = 1 << self.bits
        if not 0 <= self.zero_point < levels:
            raise ConfigurationError(
                f"zero point {self.zero_point} outside [0, {levels})"
            )

    @property
    def levels(self) -> int:
        """Number of representable codes."""
        return 1 << self.bits

    @property
    def bytes_per_element(self) -> int:
        """Wire bytes per element (codes are packed into whole bytes)."""
        return (self.bits + 7) // 8


def calibrate(
    tensor: np.ndarray, bits: int = 8, percentile: float = 100.0
) -> QuantizationParams:
    """Derive affine parameters covering a calibration tensor's range.

    Args:
        tensor: Representative activations (e.g. the training-set
            activations at the cut point).
        bits: Code width.
        percentile: Range coverage; below 100 clips outliers symmetrically
            (e.g. 99.9 ignores the extreme tails, shrinking the step size).
    """
    tensor = np.asarray(tensor, dtype=np.float64)
    if tensor.size == 0:
        raise ConfigurationError("cannot calibrate on an empty tensor")
    if not 0 < percentile <= 100:
        raise ConfigurationError(f"percentile must be in (0, 100], got {percentile}")
    if percentile >= 100.0:
        low, high = float(tensor.min()), float(tensor.max())
    else:
        tail = (100.0 - percentile) / 2.0
        low, high = (float(v) for v in np.percentile(tensor, [tail, 100.0 - tail]))
    # Extend the range to include zero so that a valid integer zero point
    # always exists (the TF-Lite convention); also guards degenerate ranges.
    low, high = min(low, 0.0), max(high, 0.0)
    if high <= low:
        high = low + 1e-6
    levels = 1 << bits
    scale = (high - low) / (levels - 1)
    zero_point = int(round(-low / scale))
    zero_point = int(np.clip(zero_point, 0, levels - 1))
    return QuantizationParams(scale=scale, zero_point=zero_point, bits=bits)


def quantize(tensor: np.ndarray, params: QuantizationParams) -> np.ndarray:
    """Encode a float tensor to integer codes (dtype uint16, values fit
    the configured bit width)."""
    tensor = np.asarray(tensor, dtype=np.float64)
    codes = np.round(tensor / params.scale) + params.zero_point
    return np.clip(codes, 0, params.levels - 1).astype(np.uint16)


def dequantize(codes: np.ndarray, params: QuantizationParams) -> np.ndarray:
    """Decode integer codes back to float32 values."""
    codes = np.asarray(codes)
    if codes.size and (codes.min() < 0 or codes.max() >= params.levels):
        raise ChannelError(
            f"codes outside [0, {params.levels}) for {params.bits}-bit params"
        )
    return ((codes.astype(np.float64) - params.zero_point) * params.scale).astype(
        np.float32
    )


def quantization_error(tensor: np.ndarray, params: QuantizationParams) -> float:
    """RMS round-trip error of quantising ``tensor``."""
    tensor = np.asarray(tensor, dtype=np.float64)
    round_trip = dequantize(quantize(tensor, params), params)
    return float(np.sqrt(np.mean(np.square(tensor - round_trip))))


def wire_bytes(shape: tuple[int, ...], params: QuantizationParams) -> int:
    """Payload bytes for a quantised tensor of the given shape."""
    return int(np.prod(shape)) * params.bytes_per_element


@dataclass(frozen=True)
class QuantizedActivation:
    """A quantised activation plus everything needed to decode it."""

    codes: np.ndarray
    params: QuantizationParams

    def dequantized(self) -> np.ndarray:
        """Reconstruct the float activation."""
        return dequantize(self.codes, self.params)

    @property
    def payload_bytes(self) -> int:
        """Bytes this activation occupies on the wire."""
        return wire_bytes(self.codes.shape, self.params)


def compress_activation(
    activation: np.ndarray, params: QuantizationParams
) -> QuantizedActivation:
    """Quantise one activation batch for transmission."""
    return QuantizedActivation(codes=quantize(activation, params), params=params)
