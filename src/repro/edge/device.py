"""Edge device and cloud server runtimes (Figure 2 made executable).

The :class:`EdgeDevice` owns the local half of the network, the input
normalisation constants, and the trained :class:`NoiseCollection`; the
:class:`CloudServer` owns the remote half and never sees anything but noisy
activations.  Both expose a single-request path (``process`` / ``handle``,
the paper's deployment story, retained as the sequential *reference
implementation*) and a stacked micro-batch path (``forward_batch`` /
``predict_batch``) used by the throughput-oriented serving runtime in
:mod:`repro.serve`.

All forwards run through the
:class:`~repro.edge.executor.BatchInvariantExecutor`, so a request produces
bit-identical logits whether it is processed alone or stacked into a
micro-batch — the parity guarantee the batched
:class:`~repro.serve.BatchedInferenceSession` is tested against.  Noise is
sampled per request from the §2.5 collection (no training at deployment);
``forward_batch`` draws each request's members in arrival order from the
same generator the sequential path would consume, which keeps the two paths
sample-for-sample identical.

:class:`InferenceSession` wires the two halves through a simulated
:class:`~repro.edge.channel.Channel`, one request per round trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.sampler import NoiseCollection, NoiseStream
from repro.edge.channel import Channel
from repro.edge.costs import cut_cost
from repro.edge.executor import BatchInvariantExecutor
from repro.edge.protocol import (
    ActivationMessage,
    BatchActivationMessage,
    BatchPredictionMessage,
    PredictionMessage,
    decode_activation,
    decode_prediction,
    encode_activation,
    encode_prediction,
)
from repro.edge.quantization import QuantizationParams, quantize
from repro.errors import ConfigurationError
from repro.models.base import SplittableModel
from repro.nn import Sequential


class EdgeDevice:
    """The user-side half of split inference.

    Args:
        local: Local network ``L(x, θ₁)``.
        mean / std: Input normalisation (matching backbone training).
        noise: Trained noise collection; ``None`` disables noise injection
            (the privacy-free baseline).
        rng: Randomness for per-request noise sampling — a bare generator
            or an already-owned :class:`~repro.core.sampler.NoiseStream`.
            The device wraps bare generators in a stream so concurrent
            serving keeps a single explicit owner of the sample sequence.
        quantization: Optional affine code; when set, ``forward_batch``
            quantises the stacked payload once before transmission.
        kernel_backend: Forward-executor backend (``"auto"`` / ``"native"``
            / ``"numpy"``); every device and server of one deployment must
            use the same value or the bit-parity guarantee breaks (see
            :mod:`repro.edge.executor`).
        weight_bits: ``8`` quantises the local half's weights (the opt-in
            ``int8_weights`` IR rewrite); must match the deployment's
            sequential reference — parity holds *within* a weight regime,
            never across.
    """

    def __init__(
        self,
        local: Sequential,
        mean: np.ndarray,
        std: np.ndarray,
        noise: NoiseCollection | None = None,
        rng: np.random.Generator | NoiseStream | None = None,
        quantization: QuantizationParams | None = None,
        kernel_backend: str = "auto",
        weight_bits: int | None = None,
    ) -> None:
        self.local = local.eval()
        self.mean = np.asarray(mean, dtype=np.float32)
        self.std = np.asarray(std, dtype=np.float32)
        if (self.std <= 0).any():
            raise ConfigurationError("normalisation std must be positive")
        self.noise = noise
        self.quantization = quantization
        self.noise_stream = rng if isinstance(rng, NoiseStream) else NoiseStream(rng)
        self._executor = BatchInvariantExecutor(
            self.local, kernel_backend, weight_bits=weight_bits
        )
        self._next_request = 0

    def normalize(self, images: np.ndarray) -> np.ndarray:
        """Apply the backbone's training normalisation."""
        c = images.shape[1]
        return (images - self.mean.reshape(1, c, 1, 1)) / self.std.reshape(1, c, 1, 1)

    def warm(self, batch_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Pre-size executor scratch (and compile native programs) for one
        input batch geometry; returns the activation shape it produces.

        Serving runtimes call this at deployment time for every batch size
        their window can form, so the first request pays no allocation or
        kernel-lowering jitter.  When the device injects noise, the warmed
        programs include the noise-add epilogue the real path uses.
        """
        return self._executor.warm(
            batch_shape, epilogue_add=self.noise is not None
        )

    def _noisy_activation(self, images: np.ndarray, splits: Sequence[int]) -> np.ndarray:
        """Local half + per-request noise for a stacked image batch.

        ``splits`` gives the per-request row counts; the collection is
        sampled once per request *in order*, consuming the generator exactly
        as the equivalent sequence of single-request calls would.  The
        sampled noise rides the executor's epilogue-add path, so with the
        ``fold_epilogue_add`` IR rewrite the addition happens inside the
        last kernel's output write instead of a separate traversal.
        """
        noise = None
        if self.noise is not None:
            if len(splits) == 1:
                noise = self.noise.sample_batch(self.noise_stream, splits[0])
            else:
                noise = self.noise.sample_splits(self.noise_stream, splits)
        return self._executor(self.normalize(images), epilogue_add=noise)

    def process(self, images: np.ndarray) -> ActivationMessage:
        """Run the local half and inject sampled noise (one request).

        This is the sequential reference path the batched runtime is
        parity-tested against.
        """
        activation = self._noisy_activation(images, [len(images)])
        message = ActivationMessage(request_id=self._next_request, tensor=activation)
        self._next_request += 1
        return message

    def forward_batch(
        self,
        batches: Sequence[np.ndarray],
        request_ids: Sequence[int] | None = None,
    ) -> BatchActivationMessage:
        """One stacked pass over a micro-batch of requests.

        Stacks the per-request image batches, normalises and runs the local
        half once, samples the noise collection per request, and (when a
        quantiser is configured) quantises the stacked payload once.

        Args:
            batches: Per-request ``(n_i, C, H, W)`` image batches.
            request_ids: Ids to stamp on the frame; defaults to the device's
                running counter (matching what sequential ``process`` calls
                would have assigned).
        """
        if len(batches) == 0:
            raise ConfigurationError("forward_batch needs at least one request")
        splits = [len(batch) for batch in batches]
        if any(rows == 0 for rows in splits):
            raise ConfigurationError("every request needs at least one image")
        if request_ids is None:
            request_ids = range(self._next_request, self._next_request + len(batches))
            self._next_request += len(batches)
        elif len(request_ids) != len(batches):
            raise ConfigurationError("request_ids and batches must pair up")
        stacked = batches[0] if len(batches) == 1 else np.concatenate(batches)
        activation = self._noisy_activation(stacked, splits)
        quantization = self.quantization
        if quantization is not None:
            activation = quantize(activation, quantization)
            if quantization.bits <= 8:
                # quantize() returns uint16 codes; narrow payloads really
                # travel as one byte per element.
                activation = activation.astype(np.uint8)
        return BatchActivationMessage(
            request_ids=tuple(int(i) for i in request_ids),
            splits=tuple(splits),
            tensor=activation,
            quantization=quantization,
        )


class CloudServer:
    """The provider-side half: computes predictions from noisy activations.

    Args:
        remote: Remote network ``R(a, θ₂)``.
        kernel_backend: Forward-executor backend; must match the edge
            device's (the engine threads one value through both).
        weight_bits: ``8`` quantises the remote half's weights (opt-in
            ``int8_weights`` IR rewrite); must match the edge device's.
    """

    def __init__(
        self,
        remote: Sequential,
        kernel_backend: str = "auto",
        weight_bits: int | None = None,
    ) -> None:
        self.remote = remote.eval()
        self._executor = BatchInvariantExecutor(
            self.remote, kernel_backend, weight_bits=weight_bits
        )

    @property
    def ingest_dequants(self) -> int:
        """Batch-sized f32 dequantised copies materialised so far.

        Stays zero on the native backend while the ``int8_ingest`` IR
        rewrite covers every quantised uplink — the allocation assertion
        the quantised serving bench makes.
        """
        return self._executor.ingest_dequants

    @property
    def weight_dequants(self) -> int:
        """f32-widened weight-code copies materialised so far.

        Stays zero on the native backend with ``int8_weights`` active —
        its kernels read the int8 code planes directly (the allocation
        assertion the ``executor_int8w`` bench makes).  The numpy
        interpreter widens each code plane once per lowered program on
        its float path.
        """
        return self._executor.weight_dequants

    def warm(
        self,
        activation_shape: tuple[int, ...],
        quantization: QuantizationParams | None = None,
    ) -> tuple[int, ...]:
        """Pre-size executor scratch for one stacked activation geometry.

        Pass the deployment's ``quantization`` so the warmed programs
        cover the quantised-ingest path the real uplinks take.
        """
        return self._executor.warm(activation_shape, quantization=quantization)

    def handle(self, message: ActivationMessage) -> PredictionMessage:
        """Compute logits for one activation message (sequential path)."""
        logits = self._executor(message.tensor)
        return PredictionMessage(request_id=message.request_id, logits=logits)

    def predict_batch(self, message: BatchActivationMessage) -> BatchPredictionMessage:
        """One remote pass over a stacked micro-batch.

        Quantised payloads feed the executor as raw codes: with the
        ``int8_ingest`` IR rewrite active the codes flow straight into the
        first GEMM/conv (no f32 dequantised copy is ever materialised);
        otherwise the executor dequantises internally, exactly like the
        historical path.  Returns the stacked logits with the request
        table preserved so the session can demultiplex them back to
        request ids.
        """
        logits = self._executor(
            message.tensor, quantization=message.quantization
        )
        return BatchPredictionMessage(
            request_ids=message.request_ids,
            splits=message.splits,
            logits=logits,
        )


@dataclass
class SessionReport:
    """Cost accounting for a batch of inferences."""

    requests: int
    uplink_bytes: int
    downlink_bytes: int
    simulated_seconds: float
    edge_kilomacs_per_sample: float


class InferenceSession:
    """End-to-end split inference over a simulated channel, one request at
    a time.

    This is the retained sequential reference implementation; the batched
    serving engine (:class:`repro.serve.BatchedInferenceSession`) must match
    it bit-for-bit on the same request stream.

    Args:
        model: The full backbone (used for cost bookkeeping).
        cut: Cut-point name.
        mean / std: Input normalisation constants.
        noise: Noise collection for the edge device (optional).
        channel: Link model; default is a fast clean link.
        rng: Noise-sampling randomness.
        kernel_backend: Forward-executor backend for both halves.
        weight_bits: ``8`` runs both halves on int8-quantised weights
            (opt-in, label-agreement-gated — see :mod:`repro.edge.ir`).
    """

    def __init__(
        self,
        model: SplittableModel,
        cut: str,
        mean: np.ndarray,
        std: np.ndarray,
        noise: NoiseCollection | None = None,
        channel: Channel | None = None,
        rng: np.random.Generator | None = None,
        kernel_backend: str = "auto",
        weight_bits: int | None = None,
    ) -> None:
        local, remote = model.split(cut)
        self.device = EdgeDevice(local, mean, std, noise, rng,
                                 kernel_backend=kernel_backend,
                                 weight_bits=weight_bits)
        self.server = CloudServer(remote, kernel_backend, weight_bits=weight_bits)
        self.channel = channel or Channel()
        self.cut = cut
        self._edge_cost = cut_cost(model, cut)
        self._uplink_bytes = 0
        self._downlink_bytes = 0
        self._requests = 0
        self._samples = 0

    def infer(self, images: np.ndarray) -> np.ndarray:
        """One round trip: edge -> channel -> cloud -> channel -> edge."""
        uplink = encode_activation(self.device.process(images))
        delivered = self.channel.transmit(uplink)
        response = self.server.handle(decode_activation(delivered))
        downlink = self.channel.transmit(encode_prediction(response))
        logits = decode_prediction(downlink).logits
        self._uplink_bytes += len(uplink)
        self._downlink_bytes += len(downlink)
        self._requests += 1
        self._samples += len(images)
        return logits

    def classify(self, images: np.ndarray) -> np.ndarray:
        """Predicted labels for a batch."""
        return self.infer(images).argmax(axis=1)

    def report(self) -> SessionReport:
        """Traffic and computation accounting for the session so far."""
        return SessionReport(
            requests=self._requests,
            uplink_bytes=self._uplink_bytes,
            downlink_bytes=self._downlink_bytes,
            simulated_seconds=self.channel.stats.simulated_seconds,
            edge_kilomacs_per_sample=self._edge_cost.kilomacs,
        )
