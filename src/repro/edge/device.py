"""Edge device and cloud server runtimes (Figure 2 made executable).

The :class:`EdgeDevice` owns the local half of the network, the input
normalisation constants, and the trained :class:`NoiseCollection`; per
request it computes the activation, samples a noise tensor (§2.5 — no
training at deployment), adds it, and serialises the result.  The
:class:`CloudServer` owns the remote half and never sees anything but noisy
activations.  :class:`InferenceSession` wires the two through a simulated
:class:`~repro.edge.channel.Channel`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.sampler import NoiseCollection
from repro.edge.channel import Channel
from repro.edge.costs import cut_cost
from repro.edge.protocol import (
    ActivationMessage,
    PredictionMessage,
    decode_activation,
    decode_prediction,
    encode_activation,
    encode_prediction,
)
from repro.errors import ConfigurationError
from repro.models.base import SplittableModel
from repro.nn import Sequential, Tensor, no_grad


class EdgeDevice:
    """The user-side half of split inference.

    Args:
        local: Local network ``L(x, θ₁)``.
        mean / std: Input normalisation (matching backbone training).
        noise: Trained noise collection; ``None`` disables noise injection
            (the privacy-free baseline).
        rng: Randomness for per-request noise sampling.
    """

    def __init__(
        self,
        local: Sequential,
        mean: np.ndarray,
        std: np.ndarray,
        noise: NoiseCollection | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.local = local.eval()
        self.mean = np.asarray(mean, dtype=np.float32)
        self.std = np.asarray(std, dtype=np.float32)
        if (self.std <= 0).any():
            raise ConfigurationError("normalisation std must be positive")
        self.noise = noise
        self._rng = rng or np.random.default_rng()
        self._next_request = 0

    def normalize(self, images: np.ndarray) -> np.ndarray:
        """Apply the backbone's training normalisation."""
        c = images.shape[1]
        return (images - self.mean.reshape(1, c, 1, 1)) / self.std.reshape(1, c, 1, 1)

    def process(self, images: np.ndarray) -> ActivationMessage:
        """Run the local half and inject sampled noise (one request)."""
        with no_grad():
            activation = self.local(Tensor(self.normalize(images))).numpy()
        if self.noise is not None:
            activation = activation + self.noise.sample_batch(
                self._rng, len(activation)
            )
        message = ActivationMessage(request_id=self._next_request, tensor=activation)
        self._next_request += 1
        return message


class CloudServer:
    """The provider-side half: computes predictions from noisy activations."""

    def __init__(self, remote: Sequential) -> None:
        self.remote = remote.eval()

    def handle(self, message: ActivationMessage) -> PredictionMessage:
        """Compute logits for one activation message."""
        with no_grad():
            logits = self.remote(Tensor(message.tensor)).numpy()
        return PredictionMessage(request_id=message.request_id, logits=logits)


@dataclass
class SessionReport:
    """Cost accounting for a batch of inferences."""

    requests: int
    uplink_bytes: int
    downlink_bytes: int
    simulated_seconds: float
    edge_kilomacs_per_sample: float


class InferenceSession:
    """End-to-end split inference over a simulated channel.

    Args:
        model: The full backbone (used for cost bookkeeping).
        cut: Cut-point name.
        mean / std: Input normalisation constants.
        noise: Noise collection for the edge device (optional).
        channel: Link model; default is a fast clean link.
        rng: Noise-sampling randomness.
    """

    def __init__(
        self,
        model: SplittableModel,
        cut: str,
        mean: np.ndarray,
        std: np.ndarray,
        noise: NoiseCollection | None = None,
        channel: Channel | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        local, remote = model.split(cut)
        self.device = EdgeDevice(local, mean, std, noise, rng)
        self.server = CloudServer(remote)
        self.channel = channel or Channel()
        self.cut = cut
        self._edge_cost = cut_cost(model, cut)
        self._uplink_bytes = 0
        self._downlink_bytes = 0
        self._requests = 0
        self._samples = 0

    def infer(self, images: np.ndarray) -> np.ndarray:
        """One round trip: edge -> channel -> cloud -> channel -> edge."""
        uplink = encode_activation(self.device.process(images))
        delivered = self.channel.transmit(uplink)
        response = self.server.handle(decode_activation(delivered))
        downlink = self.channel.transmit(encode_prediction(response))
        logits = decode_prediction(downlink).logits
        self._uplink_bytes += len(uplink)
        self._downlink_bytes += len(downlink)
        self._requests += 1
        self._samples += len(images)
        return logits

    def classify(self, images: np.ndarray) -> np.ndarray:
        """Predicted labels for a batch."""
        return self.infer(images).argmax(axis=1)

    def report(self) -> SessionReport:
        """Traffic and computation accounting for the session so far."""
        return SessionReport(
            requests=self._requests,
            uplink_bytes=self._uplink_bytes,
            downlink_bytes=self._downlink_bytes,
            simulated_seconds=self.channel.stats.simulated_seconds,
            edge_kilomacs_per_sample=self._edge_cost.kilomacs,
        )
