"""Analytic computation / communication cost model (paper §3.4).

Figure 6 plots ``Computation × Communication`` per candidate cutting point:
computation is the cumulative multiply-accumulate (MAC) count of all layers
the edge device must run, and communication is the byte size of the
activation tensor shipped to the cloud.  Both are derived exactly from the
layer geometry — no measurement needed.

The serving runtime adds a **batch-size axis**: a micro-batch of ``B``
requests ships one batched frame, so the per-frame header is amortised
``B``-fold and (optionally) the payload shrinks to the quantiser's bytes
per element.  :func:`batched_cut_costs` evaluates the same Figure 6 product
at a given batch size; per-sample MACs are unchanged by batching (compute
scales linearly), so the batch axis moves only the communication term.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.models.base import SplittableModel
from repro.nn import Tensor, no_grad
from repro.nn.module import Module

BYTES_PER_ELEMENT = 4  # float32 activations on the wire


def layer_macs(module: Module, input_shape: tuple[int, ...], output_shape: tuple[int, ...]) -> int:
    """Multiply-accumulate count of one layer for a single sample.

    Priced by lowering the layer through the executor IR
    (:func:`repro.edge.ir.lower_module`) and reading
    :attr:`~repro.edge.ir.IROp.macs` — the same per-op cost the lowered
    serving schedules carry, so the planner and the executors can never
    disagree about what a layer costs.  Convolutions dominate; linear
    layers count ``in × out``; pooling, normalisation and elementwise
    layers (anything the IR prices at zero or cannot lower) count zero
    MACs — their cost is negligible next to the convs, and the paper's
    cost model is MAC-based.
    """
    from repro.edge.ir import lower_module

    op = lower_module(module, tuple(input_shape[1:]))
    return op.macs if op is not None else 0


@dataclass(frozen=True)
class LayerCost:
    """Cost profile of one layer in the flattened network.

    Attributes:
        name: Layer name inside the model's Sequential.
        macs: Per-sample multiply-accumulates of this layer.
        output_elements: Per-sample elements of the layer output.
        output_bytes: Per-sample bytes if this output were communicated.
    """

    name: str
    macs: int
    output_elements: int
    output_bytes: int


def profile_network(model: SplittableModel) -> list[LayerCost]:
    """Per-layer cost profile via a single dry run."""
    was_training = model.training
    model.eval()
    costs: list[LayerCost] = []
    try:
        with no_grad():
            x = Tensor(np.zeros((1, *model.input_shape), dtype=np.float32))
            for name in model.net.layer_names():
                module = model.net[name]
                input_shape = x.shape
                x = module(x)
                elements = int(np.prod(x.shape[1:]))
                costs.append(
                    LayerCost(
                        name=name,
                        macs=layer_macs(module, input_shape, x.shape),
                        output_elements=elements,
                        output_bytes=elements * BYTES_PER_ELEMENT,
                    )
                )
    finally:
        model.train(was_training)
    return costs


@dataclass(frozen=True)
class CutCost:
    """Edge-side cost of choosing one cutting point.

    Attributes:
        cut: Cut-point name.
        conv_index: Conv ordinal of the cut (for figure labelling).
        kilomacs: Cumulative edge computation, in kMACs.
        megabytes: Communicated activation size, in MB.
        product: ``kilomacs × megabytes`` — Figure 6's x-axis.
    """

    cut: str
    conv_index: int
    kilomacs: float
    megabytes: float
    product: float


def cut_costs(model: SplittableModel) -> list[CutCost]:
    """The Figure 6 cost model: one entry per candidate cutting point."""
    profile = {cost.name: cost for cost in profile_network(model)}
    order = model.net.layer_names()
    results: list[CutCost] = []
    for cut in model.cut_names():
        point = model.cut_point(cut)
        local_layers = order[: point.end_index + 1]
        total_macs = sum(profile[name].macs for name in local_layers)
        boundary = profile[order[point.end_index]]
        kilomacs = total_macs / 1e3
        megabytes = boundary.output_bytes / 1e6
        results.append(
            CutCost(
                cut=cut,
                conv_index=point.conv_index,
                kilomacs=kilomacs,
                megabytes=megabytes,
                product=kilomacs * megabytes,
            )
        )
    return results


def cut_cost(model: SplittableModel, cut: str) -> CutCost:
    """Cost of a single cutting point."""
    for cost in cut_costs(model):
        if cost.cut == cut:
            return cost
    raise ModelError(f"{model.model_name} has no cut point {cut!r}")


@dataclass(frozen=True)
class BatchedCutCost:
    """Per-sample cost of a cutting point when requests are micro-batched.

    Attributes:
        cut: Cut-point name.
        conv_index: Conv ordinal of the cut.
        batch_size: Requests stacked per wire frame.
        kilomacs: Per-sample edge computation (flat in the batch size).
        wire_bytes: Per-sample wire bytes: payload plus the batched frame
            header amortised across the micro-batch.
        megabytes: ``wire_bytes`` in MB.
        product: ``kilomacs × megabytes`` — Figure 6's axis at this batch
            size.
    """

    cut: str
    conv_index: int
    batch_size: int
    kilomacs: float
    wire_bytes: float
    megabytes: float
    product: float


def batched_cut_costs(
    model: SplittableModel,
    batch_size: int = 1,
    bytes_per_element: float = BYTES_PER_ELEMENT,
) -> list[BatchedCutCost]:
    """The Figure 6 cost model evaluated on the batched wire.

    Args:
        model: The backbone under consideration.
        batch_size: Requests per micro-batch (>= 1).
        bytes_per_element: Payload width — ``BYTES_PER_ELEMENT`` for float32
            frames, or :attr:`QuantizationParams.bytes_per_element
            <repro.edge.quantization.QuantizationParams.bytes_per_element>`
            for a quantised wire.
    """
    from repro.edge.protocol import batch_frame_overhead

    if batch_size < 1:
        raise ModelError(f"batch size must be >= 1, got {batch_size}")
    if bytes_per_element <= 0:
        raise ModelError(f"bytes per element must be positive, got {bytes_per_element}")
    # Stacked activation frames are (rows, C, H, W) or (rows, F): the
    # header rank is the boundary activation's rank with the batch
    # dimension included, exactly what the wire frame declares.
    profile = {cost.name: cost for cost in profile_network(model)}
    order = model.net.layer_names()
    results: list[BatchedCutCost] = []
    for base in cut_costs(model):
        point = model.cut_point(base.cut)
        boundary = profile[order[point.end_index]]
        payload = boundary.output_elements * bytes_per_element
        overhead = batch_frame_overhead(
            batch_size,
            ndim=len(model.activation_shape(base.cut)),
            quantized=bytes_per_element < BYTES_PER_ELEMENT,
        )
        wire_bytes = payload + overhead / batch_size
        megabytes = wire_bytes / 1e6
        results.append(
            BatchedCutCost(
                cut=base.cut,
                conv_index=base.conv_index,
                batch_size=batch_size,
                kilomacs=base.kilomacs,
                wire_bytes=wire_bytes,
                megabytes=megabytes,
                product=base.kilomacs * megabytes,
            )
        )
    return results


def batched_cut_cost(
    model: SplittableModel,
    cut: str,
    batch_size: int = 1,
    bytes_per_element: float = BYTES_PER_ELEMENT,
) -> BatchedCutCost:
    """Batched-wire cost of a single cutting point."""
    for cost in batched_cut_costs(model, batch_size, bytes_per_element):
        if cost.cut == cut:
            return cost
    raise ModelError(f"{model.model_name} has no cut point {cut!r}")
