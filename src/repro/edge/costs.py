"""Analytic computation / communication cost model (paper §3.4).

Figure 6 plots ``Computation × Communication`` per candidate cutting point:
computation is the cumulative multiply-accumulate (MAC) count of all layers
the edge device must run, and communication is the byte size of the
activation tensor shipped to the cloud.  Both are derived exactly from the
layer geometry — no measurement needed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.models.base import SplittableModel
from repro.nn import Conv2d, Linear, Tensor, no_grad
from repro.nn.module import Module

BYTES_PER_ELEMENT = 4  # float32 activations on the wire


def layer_macs(module: Module, input_shape: tuple[int, ...], output_shape: tuple[int, ...]) -> int:
    """Multiply-accumulate count of one layer for a single sample.

    Convolutions dominate; linear layers count ``in × out``; pooling,
    normalisation and elementwise layers are counted as zero MACs (their
    cost is negligible next to the convs, and the paper's cost model is
    MAC-based).
    """
    if isinstance(module, Conv2d):
        _, out_c, out_h, out_w = output_shape
        kh, kw = module.kernel_size
        return out_h * out_w * out_c * module.in_channels * kh * kw
    if isinstance(module, Linear):
        return module.in_features * module.out_features
    return 0


@dataclass(frozen=True)
class LayerCost:
    """Cost profile of one layer in the flattened network.

    Attributes:
        name: Layer name inside the model's Sequential.
        macs: Per-sample multiply-accumulates of this layer.
        output_elements: Per-sample elements of the layer output.
        output_bytes: Per-sample bytes if this output were communicated.
    """

    name: str
    macs: int
    output_elements: int
    output_bytes: int


def profile_network(model: SplittableModel) -> list[LayerCost]:
    """Per-layer cost profile via a single dry run."""
    was_training = model.training
    model.eval()
    costs: list[LayerCost] = []
    try:
        with no_grad():
            x = Tensor(np.zeros((1, *model.input_shape), dtype=np.float32))
            for name in model.net.layer_names():
                module = model.net[name]
                input_shape = x.shape
                x = module(x)
                elements = int(np.prod(x.shape[1:]))
                costs.append(
                    LayerCost(
                        name=name,
                        macs=layer_macs(module, input_shape, x.shape),
                        output_elements=elements,
                        output_bytes=elements * BYTES_PER_ELEMENT,
                    )
                )
    finally:
        model.train(was_training)
    return costs


@dataclass(frozen=True)
class CutCost:
    """Edge-side cost of choosing one cutting point.

    Attributes:
        cut: Cut-point name.
        conv_index: Conv ordinal of the cut (for figure labelling).
        kilomacs: Cumulative edge computation, in kMACs.
        megabytes: Communicated activation size, in MB.
        product: ``kilomacs × megabytes`` — Figure 6's x-axis.
    """

    cut: str
    conv_index: int
    kilomacs: float
    megabytes: float
    product: float


def cut_costs(model: SplittableModel) -> list[CutCost]:
    """The Figure 6 cost model: one entry per candidate cutting point."""
    profile = {cost.name: cost for cost in profile_network(model)}
    order = model.net.layer_names()
    results: list[CutCost] = []
    for cut in model.cut_names():
        point = model.cut_point(cut)
        local_layers = order[: point.end_index + 1]
        total_macs = sum(profile[name].macs for name in local_layers)
        boundary = profile[order[point.end_index]]
        kilomacs = total_macs / 1e3
        megabytes = boundary.output_bytes / 1e6
        results.append(
            CutCost(
                cut=cut,
                conv_index=point.conv_index,
                kilomacs=kilomacs,
                megabytes=megabytes,
                product=kilomacs * megabytes,
            )
        )
    return results


def cut_cost(model: SplittableModel, cut: str) -> CutCost:
    """Cost of a single cutting point."""
    for cost in cut_costs(model):
        if cost.cut == cut:
            return cost
    raise ModelError(f"{model.model_name} has no cut point {cut!r}")
