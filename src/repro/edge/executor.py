"""Batch-invariant forward executor for the serving runtime.

The batched serving engine stacks many requests into one forward pass, and
its contract with the retained sequential path is *bit-for-bit* equality:
given the same per-request noise draws, a request must produce the same
logits whether it travelled alone or inside a micro-batch.  Plain BLAS does
not give that guarantee — a 2-D GEMM picks kernels and blocking by matrix
geometry, so ``(x @ W.T)[i]`` changes in the last ulp as the batch
dimension changes.

:class:`BatchInvariantExecutor` compiles a frozen
:class:`~repro.nn.Sequential` into an inference-only plan in which every
kernel's per-row arithmetic is independent of the batch geometry.  Two
interchangeable backends provide the kernels:

Native kernels (``kernel_backend="native"`` / the ``"auto"`` default)
=====================================================================

When a system C compiler is available, supported layer runs — Conv2d,
Linear, ReLU, MaxPool2d, Flatten, eval-mode Dropout — are lowered to a
flat op program executed by the compiled :mod:`repro.edge._fastexec`
library in **one C call per segment**: per-sample im2col + register-blocked
conv GEMM, row-blocked linear dot products, fused bias+ReLU epilogues, and
the eval-mode maxpool reduction, over reusable ping-pong scratch arenas.
Unsupported layers (eval-mode BatchNorm2d, LocalResponseNorm, anything in
training mode or unrecognised) split the program into segments and run
between them via the numpy handlers below.

*Backend selection* happens **once, at executor construction**:
``"auto"`` picks the native backend when the kernel compiles (and the
input is float32), else numpy; ``"native"`` requires it (raising
:class:`~repro.errors.ConfigurationError` otherwise); ``"numpy"`` forces
the pure-numpy plan.  Every executor a deployment creates — the edge
device's, each cloud worker's — must use the same backend, which the
device/engine constructors guarantee by threading one ``kernel_backend``
value through.

*Determinism contract*: both backends produce results that are a pure
function of the input row — per-sample conv GEMMs, row-blocked linear
products, fixed accumulation schedules — so batched and sequential serving
agree bitwise *within* a backend.  The two backends are **not** bitwise
identical to each other (both are float32-exact to ~1e-6 relative of the
float64 result); mixing backends across the edge/cloud halves of one
deployment is therefore a parity bug, not a correctness bug.

*Environment*: ``REPRO_NO_C_KERNEL=1`` disables the native kernels
process-wide (``"auto"`` falls back to numpy, ``"native"`` raises);
``REPRO_KERNEL_DIR`` relocates the compiled-artifact cache (see
:mod:`repro.native`).

Numpy kernels (``kernel_backend="numpy"``)
==========================================

* **Conv2d** — im2col columns contracted by a *per-sample* stacked
  ``np.matmul`` (each sample runs the identical ``(C_out, K) @ (K, OH*OW)``
  GEMM regardless of batch size, which is also how the training-path
  forward works);
* **Linear** — the one geometry-sensitive op in the stack, replaced by a
  row-blocked product: ``np.matmul(x[:, None, :], W.T)`` broadcasts one
  ``(1, K) @ (K, N)`` GEMM per row (:func:`batch_invariant_linear`);
* **MaxPool2d** — a window-max reduction over the strided im2col view
  (no argmax bookkeeping: serving never needs the pooling gradient);
* **ReLU / Flatten / eval-mode BatchNorm2d / LocalResponseNorm /
  Dropout** — elementwise / reshape ops, invariant by construction.

Unrecognised layers (and layers left in training mode) fall back to the
module's normal forward under ``no_grad``.

Both backends reuse scratch across calls: a serving session runs the same
geometry every micro-batch, and repeated malloc/mmap churn dominated the
step overhead before buffers were cached by input shape.  Irregular (tail)
micro-batches still work — they simply key new scratch.  Call
:meth:`BatchInvariantExecutor.warm` with the planned batch shape at deploy
time to pre-size everything off the latency path (the serving engine does
this with the planner's chosen window).  The final output is always
freshly owned, safe to hold across calls.

Invariance across the four backbones and both backends is enforced by
``tests/edge/test_executor.py`` and the kernel-vs-numpy differential fuzz
suite in ``tests/edge/test_native_kernels.py``.  Used by both
:class:`~repro.edge.device.EdgeDevice` (single-request ``process`` *and*
stacked ``forward_batch``) and :class:`~repro.edge.device.CloudServer`,
which is what makes the batched session's parity guarantee hold by
construction.
"""

from __future__ import annotations

import numpy as np

from repro.edge import _fastexec
from repro.errors import ConfigurationError
from repro.nn import Linear, Sequential, Tensor, no_grad
from repro.nn.im2col import conv_output_size, extract_windows
from repro.nn.layers.activation import ReLU
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.norm import BatchNorm2d, LocalResponseNorm
from repro.nn.layers.pooling import MaxPool2d

KERNEL_BACKENDS = ("auto", "native", "numpy")


def batch_invariant_linear(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None
) -> np.ndarray:
    """Row-blocked affine map ``x @ weight.T + bias``.

    Each row is multiplied by the weight matrix in its own broadcast GEMM
    call, so the result for row ``i`` is a pure function of row ``i`` — the
    batch geometry cannot perturb it.
    """
    out = np.matmul(x[:, None, :], weight.T)[:, 0, :]
    if bias is not None:
        out = out + bias
    return out


class BatchInvariantExecutor:
    """Runs a frozen :class:`~repro.nn.Sequential` with batch-stable math.

    Args:
        net: The (local or remote) half of a split backbone; callers
            freeze it and put it in eval mode.
        kernel_backend: ``"auto"`` (native C kernels when available, the
            default), ``"native"`` (require them), or ``"numpy"`` (force
            the pure-numpy plan).  See the module docstring for the
            selection and determinism contract.
    """

    def __init__(self, net: Sequential, kernel_backend: str = "auto") -> None:
        if kernel_backend not in KERNEL_BACKENDS:
            raise ConfigurationError(
                f"kernel_backend must be one of {KERNEL_BACKENDS}, "
                f"got {kernel_backend!r}"
            )
        if kernel_backend == "native" and not _fastexec.available():
            raise ConfigurationError(
                "native kernel backend requested but the compiled kernels "
                "are unavailable (no C compiler, or REPRO_NO_C_KERNEL=1)"
            )
        self.net = net
        self.backend = (
            "native"
            if kernel_backend != "numpy" and _fastexec.available()
            else "numpy"
        )
        self._plan = [
            (index, module, self._handler(module))
            for index, module in enumerate(net.layers())
        ]
        self._scratch: dict[tuple, np.ndarray] = {}
        self._segments = self._build_segments() if self.backend == "native" else None
        # (n, input_shape) -> list of per-segment callables.
        self._programs: dict[tuple, list] = {}

    # ------------------------------------------------------------------
    # Plan construction
    # ------------------------------------------------------------------
    def _handler(self, module):
        if isinstance(module, Conv2d):
            return self._conv2d
        if isinstance(module, Linear):
            return self._linear
        if isinstance(module, ReLU):
            return self._relu
        if isinstance(module, MaxPool2d):
            return self._max_pool2d
        if isinstance(module, Flatten):
            return self._flatten
        if isinstance(module, Dropout):
            return self._dropout
        if isinstance(module, BatchNorm2d):
            return self._batch_norm2d
        if isinstance(module, LocalResponseNorm):
            return self._local_response_norm
        return None  # fall back to the module's own forward

    def _native_capable(self, module) -> bool:
        """Whether the native program can absorb this layer."""
        if isinstance(module, (Conv2d, Linear, ReLU, MaxPool2d, Flatten)):
            return True
        # Eval-mode dropout is the identity; training mode must keep the
        # numpy handler so it raises exactly like the numpy backend.
        return isinstance(module, Dropout) and not module.training

    def _build_segments(self) -> list[tuple]:
        """Split the layer list into native-program and python runs.

        Returns ``("native", steps)`` / ``("python", plan_rows)`` tuples.
        Native steps fuse a ReLU into a directly-preceding Conv2d/Linear.
        """
        segments: list[tuple] = []
        native_steps: list[tuple] = []
        python_rows: list[tuple] = []

        def flush_native():
            nonlocal native_steps
            if native_steps:
                segments.append(("native", native_steps))
                native_steps = []

        def flush_python():
            nonlocal python_rows
            if python_rows:
                segments.append(("python", python_rows))
                python_rows = []

        for index, module, handler in self._plan:
            if not self._native_capable(module):
                flush_native()
                python_rows.append((index, module, handler))
                continue
            flush_python()
            if isinstance(module, Conv2d):
                native_steps.append(["conv", module, False])
            elif isinstance(module, Linear):
                native_steps.append(["linear", module, False])
            elif isinstance(module, ReLU):
                if native_steps and native_steps[-1][0] in ("conv", "linear") \
                        and not native_steps[-1][2]:
                    native_steps[-1][2] = True  # fuse into the producer
                else:
                    native_steps.append(["relu"])
            elif isinstance(module, MaxPool2d):
                native_steps.append(["maxpool", module])
            elif isinstance(module, Flatten):
                native_steps.append(["flatten"])
            # eval-mode Dropout: identity, emit nothing
        flush_native()
        flush_python()
        return segments

    def _program(
        self, segment_index: int, steps: list, n: int, shape: tuple[int, ...]
    ) -> "_fastexec.CompiledProgram":
        """The compiled program for one native segment at one geometry."""
        key = (segment_index, n, shape)
        program = self._programs.get(key)
        if program is None:
            program = _fastexec.CompiledProgram(
                [tuple(step) for step in steps if step[0] != "flatten"], n, shape
            )
            self._programs[key] = program
        return program

    def _run_python_rows(self, rows: list, x: np.ndarray) -> np.ndarray:
        for index, module, handler in rows:
            if handler is not None and not (
                isinstance(module, BatchNorm2d) and module.training
            ):
                x = handler(index, module, x)
            else:
                with no_grad():
                    x = module(Tensor(np.ascontiguousarray(x))).numpy()
        return x

    def _buffer(self, key: tuple, shape: tuple[int, ...], dtype) -> np.ndarray:
        """A reusable scratch array for one (layer, role, shape) slot."""
        slot = (*key, shape, np.dtype(dtype))
        buffer = self._scratch.get(slot)
        if buffer is None:
            buffer = np.empty(shape, dtype=dtype)
            self._scratch[slot] = buffer
        return buffer

    def _owns(self, array: np.ndarray) -> bool:
        base = array.base if array.base is not None else array
        return any(base is buffer for buffer in self._scratch.values())

    # ------------------------------------------------------------------
    # Kernels (each per-row invariant to the batch geometry)
    # ------------------------------------------------------------------
    def _conv2d(self, index: int, module: Conv2d, x: np.ndarray) -> np.ndarray:
        n, c_in, h, w = x.shape
        kh, kw = module.kernel_size
        stride, padding = module.stride, module.padding
        oh = conv_output_size(h, kh, stride[0], padding[0])
        ow = conv_output_size(w, kw, stride[1], padding[1])
        c_out = module.out_channels
        windows = extract_windows(x, (kh, kw), stride, padding)
        cols = self._buffer((index, "cols"), windows.shape, x.dtype)
        np.copyto(cols, windows)
        cols3 = cols.reshape(n, c_in * kh * kw, oh * ow)
        w_mat = module.weight.data.reshape(c_out, c_in * kh * kw)
        out3 = self._buffer((index, "out"), (n, c_out, oh * ow), x.dtype)
        # Stacked per-sample GEMM: identical geometry for every sample, so
        # the result is independent of n (and matches the training path).
        np.matmul(w_mat, cols3, out=out3)
        out = out3.reshape(n, c_out, oh, ow)
        if module.bias is not None:
            out += module.bias.data.reshape(1, c_out, 1, 1)
        return out

    def _linear(self, index: int, module: Linear, x: np.ndarray) -> np.ndarray:
        out3 = self._buffer(
            (index, "out"), (len(x), 1, module.out_features), x.dtype
        )
        np.matmul(x[:, None, :], module.weight.data.T, out=out3)
        out = out3.reshape(len(x), module.out_features)
        if module.bias is not None:
            out += module.bias.data
        return out

    def _relu(self, index: int, module: ReLU, x: np.ndarray) -> np.ndarray:
        out = self._buffer((index, "out"), x.shape, x.dtype)
        return np.maximum(x, 0.0, out=out)

    def _max_pool2d(self, index: int, module: MaxPool2d, x: np.ndarray) -> np.ndarray:
        windows = extract_windows(x, module.kernel_size, module.stride, module.padding)
        n, c, kh, kw, oh, ow = windows.shape
        cols = self._buffer((index, "cols"), windows.shape, x.dtype)
        np.copyto(cols, windows)
        out = self._buffer((index, "out"), (n, c, oh, ow), x.dtype)
        # Per-element window max on a contiguous copy (reducing the strided
        # view directly is an order of magnitude slower); serving never
        # needs the argmax the training path keeps for its gradient.
        return cols.reshape(n, c, kh * kw, oh, ow).max(axis=2, out=out)

    def _flatten(self, index: int, module: Flatten, x: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(x).reshape(len(x), -1)

    def _dropout(self, index: int, module: Dropout, x: np.ndarray) -> np.ndarray:
        if module.training:  # pragma: no cover - serving nets are eval-mode
            raise RuntimeError("serving executor requires eval-mode dropout")
        return x

    def _batch_norm2d(self, index: int, module: BatchNorm2d, x: np.ndarray) -> np.ndarray:
        c = module.num_features
        mean = module.running_mean.reshape(1, c, 1, 1)
        var = module.running_var.reshape(1, c, 1, 1)
        # Same op order as the training-path functional (eval branch), so
        # the values match it exactly; elementwise, hence batch-invariant.
        x_hat = (x - mean) / np.sqrt(var + module.eps)
        return x_hat * module.gamma.data.reshape(1, c, 1, 1) + module.beta.data.reshape(
            1, c, 1, 1
        )

    def _local_response_norm(
        self, index: int, module: LocalResponseNorm, x: np.ndarray
    ) -> np.ndarray:
        n, c, h, w = x.shape
        size, alpha, beta, k = module.size, module.alpha, module.beta, module.k
        half = size // 2
        squared = x * x
        padded = np.zeros((n, c + size - 1, h, w), dtype=x.dtype)
        padded[:, half : half + c] = squared
        window = padded[:, 0:c].copy()
        # Same accumulation order as the functional implementation.
        for offset in range(1, size):
            window += padded[:, offset : offset + c]
        denom = (window * (alpha / size) + k) ** (-beta)
        return x * denom

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def warm(self, batch_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Pre-size every buffer for a batch shape; returns the out shape.

        One throwaway forward allocates the native program (or numpy
        scratch) for ``batch_shape`` off the latency path, so the first
        real micro-batch pays no compilation or allocation jitter.  The
        serving engine calls this at deploy time with the planner's
        chosen window.
        """
        return self(np.zeros(batch_shape, dtype=np.float32)).shape

    def _numpy_forward(self, x: np.ndarray) -> np.ndarray:
        return self._run_python_rows(self._plan, x)

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        """Forward a ``(N, ...)`` numpy batch to a numpy output.

        The result is freshly owned (never a view of internal scratch), so
        callers may hold it across subsequent executor calls.
        """
        x = np.ascontiguousarray(batch)
        if self.backend == "native" and x.dtype == np.float32:
            for segment_index, (kind, body) in enumerate(self._segments):
                if kind == "python":
                    x = self._run_python_rows(body, x)
                    continue
                if all(step[0] == "flatten" for step in body):
                    x = np.ascontiguousarray(x).reshape(len(x), -1)
                    continue
                if x.dtype != np.float32:
                    # A python-fallback layer changed the dtype mid-chain;
                    # replay the whole batch on the numpy plan rather than
                    # silently casting.
                    return self._finish(
                        self._numpy_forward(np.ascontiguousarray(batch))
                    )
                if not x.flags.c_contiguous:
                    x = np.ascontiguousarray(x)
                program = self._program(segment_index, body, len(x), x.shape[1:])
                x = program(x)
                if len(program.out_shape) > 1 and any(
                    step[0] == "flatten" for step in body
                ):
                    # Flatten was the segment's last layer: the reshape is
                    # free, the program just never saw a consumer for it.
                    x = x.reshape(len(x), -1)
        else:
            x = self._numpy_forward(x)
        return self._finish(x)

    def _finish(self, x: np.ndarray) -> np.ndarray:
        if self._owns(x):
            x = x.copy()
        return x
