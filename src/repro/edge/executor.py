"""Batch-invariant forward executor for the serving runtime.

The batched serving engine stacks many requests into one forward pass, and
its contract with the retained sequential path is *bit-for-bit* equality:
given the same per-request noise draws, a request must produce the same
logits whether it travelled alone or inside a micro-batch.  Plain BLAS does
not give that guarantee — a 2-D GEMM picks kernels and blocking by matrix
geometry, so ``(x @ W.T)[i]`` changes in the last ulp as the batch
dimension changes.

:class:`BatchInvariantExecutor` compiles a frozen
:class:`~repro.nn.Sequential` into an inference-only numpy plan in which
every kernel's per-row arithmetic is independent of the batch geometry:

* **Conv2d** — im2col columns contracted by a *per-sample* stacked
  ``np.matmul`` (each sample runs the identical ``(C_out, K) @ (K, OH*OW)``
  GEMM regardless of batch size, which is also how the training-path
  forward works);
* **Linear** — the one geometry-sensitive op in the stack, replaced by a
  row-blocked product: ``np.matmul(x[:, None, :], W.T)`` broadcasts one
  ``(1, K) @ (K, N)`` GEMM per row (:func:`batch_invariant_linear`);
* **MaxPool2d** — a window-max reduction over the strided im2col view
  (no argmax bookkeeping: serving never needs the pooling gradient);
* **ReLU / Flatten / eval-mode BatchNorm2d / LocalResponseNorm /
  Dropout** — elementwise / reshape ops, invariant by construction.

Unrecognised layers (and layers left in training mode) fall back to the
module's normal forward under ``no_grad``.

The plan also reuses per-layer scratch buffers across calls: a serving
session runs the same geometry every micro-batch, and the im2col and
output temporaries of a stacked batch are large enough that repeated
malloc/mmap churn dominated the step overhead.  Buffers are keyed by input
shape, so irregular (tail) micro-batches still work.  The final output is
copied out of scratch, making returned arrays safe to hold across calls.

Invariance across the four backbones is enforced by
``tests/edge/test_executor.py``.  Used by both
:class:`~repro.edge.device.EdgeDevice` (single-request ``process`` *and*
stacked ``forward_batch``) and :class:`~repro.edge.device.CloudServer`,
which is what makes the batched session's parity guarantee hold by
construction.
"""

from __future__ import annotations

import numpy as np

from repro.nn import Linear, Sequential, Tensor, no_grad
from repro.nn.im2col import conv_output_size, extract_windows
from repro.nn.layers.activation import ReLU
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.norm import BatchNorm2d, LocalResponseNorm
from repro.nn.layers.pooling import MaxPool2d


def batch_invariant_linear(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None
) -> np.ndarray:
    """Row-blocked affine map ``x @ weight.T + bias``.

    Each row is multiplied by the weight matrix in its own broadcast GEMM
    call, so the result for row ``i`` is a pure function of row ``i`` — the
    batch geometry cannot perturb it.
    """
    out = np.matmul(x[:, None, :], weight.T)[:, 0, :]
    if bias is not None:
        out = out + bias
    return out


class BatchInvariantExecutor:
    """Runs a frozen :class:`~repro.nn.Sequential` with batch-stable math.

    Args:
        net: The (local or remote) half of a split backbone; callers
            freeze it and put it in eval mode.
    """

    def __init__(self, net: Sequential) -> None:
        self.net = net
        self._plan = [
            (index, module, self._handler(module))
            for index, module in enumerate(net.layers())
        ]
        self._scratch: dict[tuple, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Plan construction
    # ------------------------------------------------------------------
    def _handler(self, module):
        if isinstance(module, Conv2d):
            return self._conv2d
        if isinstance(module, Linear):
            return self._linear
        if isinstance(module, ReLU):
            return self._relu
        if isinstance(module, MaxPool2d):
            return self._max_pool2d
        if isinstance(module, Flatten):
            return self._flatten
        if isinstance(module, Dropout):
            return self._dropout
        if isinstance(module, BatchNorm2d):
            return self._batch_norm2d
        if isinstance(module, LocalResponseNorm):
            return self._local_response_norm
        return None  # fall back to the module's own forward

    def _buffer(self, key: tuple, shape: tuple[int, ...], dtype) -> np.ndarray:
        """A reusable scratch array for one (layer, role, shape) slot."""
        slot = (*key, shape, np.dtype(dtype))
        buffer = self._scratch.get(slot)
        if buffer is None:
            buffer = np.empty(shape, dtype=dtype)
            self._scratch[slot] = buffer
        return buffer

    def _owns(self, array: np.ndarray) -> bool:
        base = array.base if array.base is not None else array
        return any(base is buffer for buffer in self._scratch.values())

    # ------------------------------------------------------------------
    # Kernels (each per-row invariant to the batch geometry)
    # ------------------------------------------------------------------
    def _conv2d(self, index: int, module: Conv2d, x: np.ndarray) -> np.ndarray:
        n, c_in, h, w = x.shape
        kh, kw = module.kernel_size
        stride, padding = module.stride, module.padding
        oh = conv_output_size(h, kh, stride[0], padding[0])
        ow = conv_output_size(w, kw, stride[1], padding[1])
        c_out = module.out_channels
        windows = extract_windows(x, (kh, kw), stride, padding)
        cols = self._buffer((index, "cols"), windows.shape, x.dtype)
        np.copyto(cols, windows)
        cols3 = cols.reshape(n, c_in * kh * kw, oh * ow)
        w_mat = module.weight.data.reshape(c_out, c_in * kh * kw)
        out3 = self._buffer((index, "out"), (n, c_out, oh * ow), x.dtype)
        # Stacked per-sample GEMM: identical geometry for every sample, so
        # the result is independent of n (and matches the training path).
        np.matmul(w_mat, cols3, out=out3)
        out = out3.reshape(n, c_out, oh, ow)
        if module.bias is not None:
            out += module.bias.data.reshape(1, c_out, 1, 1)
        return out

    def _linear(self, index: int, module: Linear, x: np.ndarray) -> np.ndarray:
        out3 = self._buffer(
            (index, "out"), (len(x), 1, module.out_features), x.dtype
        )
        np.matmul(x[:, None, :], module.weight.data.T, out=out3)
        out = out3.reshape(len(x), module.out_features)
        if module.bias is not None:
            out += module.bias.data
        return out

    def _relu(self, index: int, module: ReLU, x: np.ndarray) -> np.ndarray:
        out = self._buffer((index, "out"), x.shape, x.dtype)
        return np.maximum(x, 0.0, out=out)

    def _max_pool2d(self, index: int, module: MaxPool2d, x: np.ndarray) -> np.ndarray:
        windows = extract_windows(x, module.kernel_size, module.stride, module.padding)
        n, c, kh, kw, oh, ow = windows.shape
        cols = self._buffer((index, "cols"), windows.shape, x.dtype)
        np.copyto(cols, windows)
        out = self._buffer((index, "out"), (n, c, oh, ow), x.dtype)
        # Per-element window max on a contiguous copy (reducing the strided
        # view directly is an order of magnitude slower); serving never
        # needs the argmax the training path keeps for its gradient.
        return cols.reshape(n, c, kh * kw, oh, ow).max(axis=2, out=out)

    def _flatten(self, index: int, module: Flatten, x: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(x).reshape(len(x), -1)

    def _dropout(self, index: int, module: Dropout, x: np.ndarray) -> np.ndarray:
        if module.training:  # pragma: no cover - serving nets are eval-mode
            raise RuntimeError("serving executor requires eval-mode dropout")
        return x

    def _batch_norm2d(self, index: int, module: BatchNorm2d, x: np.ndarray) -> np.ndarray:
        c = module.num_features
        mean = module.running_mean.reshape(1, c, 1, 1)
        var = module.running_var.reshape(1, c, 1, 1)
        # Same op order as the training-path functional (eval branch), so
        # the values match it exactly; elementwise, hence batch-invariant.
        x_hat = (x - mean) / np.sqrt(var + module.eps)
        return x_hat * module.gamma.data.reshape(1, c, 1, 1) + module.beta.data.reshape(
            1, c, 1, 1
        )

    def _local_response_norm(
        self, index: int, module: LocalResponseNorm, x: np.ndarray
    ) -> np.ndarray:
        n, c, h, w = x.shape
        size, alpha, beta, k = module.size, module.alpha, module.beta, module.k
        half = size // 2
        squared = x * x
        padded = np.zeros((n, c + size - 1, h, w), dtype=x.dtype)
        padded[:, half : half + c] = squared
        window = padded[:, 0:c].copy()
        # Same accumulation order as the functional implementation.
        for offset in range(1, size):
            window += padded[:, offset : offset + c]
        denom = (window * (alpha / size) + k) ** (-beta)
        return x * denom

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def __call__(self, batch: np.ndarray) -> np.ndarray:
        """Forward a ``(N, ...)`` numpy batch to a numpy output.

        The result is freshly owned (never a view of internal scratch), so
        callers may hold it across subsequent executor calls.
        """
        x = np.ascontiguousarray(batch)
        for index, module, handler in self._plan:
            if handler is not None and not (
                isinstance(module, BatchNorm2d) and module.training
            ):
                x = handler(index, module, x)
            else:
                with no_grad():
                    x = module(Tensor(np.ascontiguousarray(x))).numpy()
        if self._owns(x):
            x = x.copy()
        return x
