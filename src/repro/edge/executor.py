"""Batch-invariant forward executor for the serving runtime.

The batched serving engine stacks many requests into one forward pass, and
its contract with the retained sequential path is *bit-for-bit* equality:
given the same per-request noise draws, a request must produce the same
logits whether it travelled alone or inside a micro-batch.  Plain BLAS does
not give that guarantee — a 2-D GEMM picks kernels and blocking by matrix
geometry, so ``(x @ W.T)[i]`` changes in the last ulp as the batch
dimension changes.

:class:`BatchInvariantExecutor` compiles a frozen
:class:`~repro.nn.Sequential` into an inference-only plan in which every
kernel's per-row arithmetic is independent of the batch geometry.  The
layer list is split once by :func:`repro.edge.ir.segment_modules` into IR
segments (Conv2d, Linear, ReLU, MaxPool2d, Flatten, eval-mode Dropout)
and python-fallback runs (eval-mode BatchNorm2d, LocalResponseNorm,
anything in training mode or unrecognised).  Each IR segment is lowered
**once per input geometry** by :func:`repro.edge.ir.lower` — the single
lowering + rewrite pipeline shared by every backend — and the resulting
:class:`~repro.edge.ir.Program` is interpreted by whichever backend the
executor was constructed with.  Neither backend owns lowering or fusion
logic of its own.

Native backend (``kernel_backend="native"`` / the ``"auto"`` default)
=====================================================================

When a system C compiler is available, each lowered program runs in **one
C call per segment** via :class:`repro.edge._fastexec.CompiledProgram`:
per-sample im2col + register-blocked conv GEMM, a direct (im2col-free)
kernel for eligible stride-1 convs, row-blocked linear dot products, fused
scale/bias/ReLU/pool/noise-add epilogues, and quantised-code ingest — all
over reusable ping-pong scratch arenas.

*Backend selection* happens **once, at executor construction**:
``"auto"`` picks the native backend when the kernel compiles (and the
input is float32 or quantised codes), else numpy; ``"native"`` requires it
(raising :class:`~repro.errors.ConfigurationError` otherwise); ``"numpy"``
forces the numpy interpreter.  Every executor a deployment creates — the
edge device's, each cloud worker's — must use the same backend, which the
device/engine constructors guarantee by threading one ``kernel_backend``
value through.

*Determinism contract*: both backends produce results that are a pure
function of the input row — per-sample conv GEMMs, row-blocked linear
products, fixed accumulation schedules — so batched and sequential serving
agree bitwise *within* a backend at a fixed rewrite configuration.  The
two backends are **not** bitwise identical to each other (both are
float32-exact to ~1e-6 relative of the float64 result); mixing backends
across the edge/cloud halves of one deployment is therefore a parity bug,
not a correctness bug.  IR rewrites may change results only within f32
round-off (see :mod:`repro.edge.ir`); the configured rewrite set is
snapshotted at construction, like the backend.

*Environment*: ``REPRO_NO_C_KERNEL=1`` disables the native kernels
process-wide (``"auto"`` falls back to numpy, ``"native"`` raises);
``REPRO_KERNEL_DIR`` relocates the compiled-artifact cache (see
:mod:`repro.native`); ``REPRO_NO_IR_REWRITES=1`` /
``REPRO_IR_REWRITES=a,b`` configure the IR rewrite pipeline for both
backends (see :mod:`repro.edge.ir`).

Numpy backend (``kernel_backend="numpy"``)
==========================================

:class:`_NumpyProgram` interprets the same lowered programs with
batch-invariant numpy kernels:

* **conv2d** — im2col columns contracted by a *per-sample* stacked
  ``np.matmul`` (each sample runs the identical ``(C_out, K) @ (K, OH*OW)``
  GEMM regardless of batch size, which is also how the training-path
  forward works), epilogue ops applied in place on the result;
* **linear** — the one geometry-sensitive op in the stack, replaced by a
  row-blocked product: ``np.matmul(x[:, None, :], W.T)`` broadcasts one
  ``(1, K) @ (K, N)`` GEMM per row (:func:`batch_invariant_linear`);
* **maxpool2d** — a window-max reduction over the strided im2col view
  (no argmax bookkeeping: serving never needs the pooling gradient);
* quantised-code inputs are dequantised at the consuming op via
  :func:`repro.edge.quantization.dequantize` (numpy GEMMs cannot fold the
  affine map profitably, so this backend keeps the f32 materialisation
  and counts it in :attr:`BatchInvariantExecutor.ingest_dequants`) —
  *except* when the op also carries int8 weights and the fully integer
  path applies, in which case the codes feed an exact integer ``matmul``
  directly (see below).

Int8 weights (``weight_bits=8``)
================================

Constructing an executor with ``weight_bits=8`` adds the opt-in
``int8_weights`` rewrite to the snapshot (unless ``REPRO_NO_IR_REWRITES``
kills the pipeline): conv/linear ops carry per-output-channel int8 weight
codes (:class:`repro.edge.quantization.WeightQuantization`) and apply the
scales in their epilogue.  The native backend widens the codes in-register
(f32 path) or accumulates u8-act × i8-weight in exact int32 (composed with
``int8_ingest``) — it never materialises an f32 copy of a quantised
weight.  The numpy interpreter mirrors the integer path with an int32
``np.matmul`` on the codes; on its float path it caches one f32-widened
copy of each code plane, counted in
:attr:`BatchInvariantExecutor.weight_dequants` (which the serving bench
asserts stays 0 on the native backend).  Both backends remain bitwise
batch-invariant and run-to-run deterministic with the rewrite on; the
on↔off comparison is label-agreement-gated (see :mod:`repro.edge.ir`).

Python-fallback layers run via per-module handlers (or the module's own
forward under ``no_grad``), exactly as before.  Non-float32 float inputs
(e.g. float64 probes) bypass the IR entirely and run the handler chain,
preserving the input dtype.

Both backends reuse scratch across calls: a serving session runs the same
geometry every micro-batch, and repeated malloc/mmap churn dominated the
step overhead before buffers were cached by input shape.  Irregular (tail)
micro-batches still work — they simply key new scratch.  Call
:meth:`BatchInvariantExecutor.warm` with the planned batch shape at deploy
time to pre-size everything off the latency path (the serving engine does
this with the planner's chosen window).  The final output is always
freshly owned, safe to hold across calls.

Invariance across the four backbones and both backends is enforced by
``tests/edge/test_executor.py`` and the kernel-vs-numpy differential fuzz
suite in ``tests/edge/test_native_kernels.py`` (which also toggles every
IR rewrite on/off).  Used by both
:class:`~repro.edge.device.EdgeDevice` (single-request ``process`` *and*
stacked ``forward_batch``) and :class:`~repro.edge.device.CloudServer`,
which is what makes the batched session's parity guarantee hold by
construction.
"""

from __future__ import annotations

import os

import numpy as np

from repro.edge import _fastexec, ir
from repro.edge.quantization import QuantizationParams, dequantize
from repro.errors import ChannelError, ConfigurationError
from repro.nn import Linear, Sequential, Tensor, no_grad
from repro.nn.im2col import conv_output_size, extract_windows
from repro.nn.layers.activation import ReLU
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.norm import BatchNorm2d, LocalResponseNorm
from repro.nn.layers.pooling import MaxPool2d

KERNEL_BACKENDS = ("auto", "native", "numpy")

#: Dtypes the IR interpreters accept directly (f32 + quantised codes).
_IR_DTYPES = (np.dtype(np.float32), np.dtype(np.uint8), np.dtype(np.uint16))


def batch_invariant_linear(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None
) -> np.ndarray:
    """Row-blocked affine map ``x @ weight.T + bias``.

    Each row is multiplied by the weight matrix in its own broadcast GEMM
    call, so the result for row ``i`` is a pure function of row ``i`` — the
    batch geometry cannot perturb it.
    """
    out = np.matmul(x[:, None, :], weight.T)[:, 0, :]
    if bias is not None:
        out = out + bias
    return out


class _NumpyProgram:
    """Numpy interpreter for one lowered :class:`~repro.edge.ir.Program`.

    Walks ``Program.ops`` with the executor's batch-invariant numpy
    kernels, reusing the executor's shape-keyed scratch buffers.  Fused
    epilogue flags run the *same* numpy ops the standalone lowering would
    (an in-place ``np.maximum`` for ReLU, the identical window-max for a
    fused pool, the identical ``+=`` for a folded add), so toggling
    rewrites never changes this backend's bits.  A ``dequant`` op
    dequantises its input here — numpy cannot fold the affine map into a
    GEMM profitably — which keeps this backend bitwise identical to the
    historical dequantise-then-run path.
    """

    def __init__(
        self,
        executor: "BatchInvariantExecutor",
        segment_index: int,
        program: ir.Program,
        n: int,
    ) -> None:
        self._executor = executor
        self._segment = segment_index
        self.program = program
        self.n = n
        self.out_shape = program.out_spec.shape
        self.needs_extra = any(op.add_rows for op in program.ops)

    def _buffer(self, position: int, role: str, shape, dtype) -> np.ndarray:
        return self._executor._buffer(
            ("ir", self._segment, position, role), shape, dtype
        )

    def __call__(self, x: np.ndarray, extra: np.ndarray | None = None) -> np.ndarray:
        if self.needs_extra and extra is None:
            raise ValueError("program folds an epilogue add; extra is required")
        n = self.n
        for position, op in enumerate(self.program.ops):
            integer_op = op.wq is not None and ir.integer_matmul_eligible(op)
            if op.dequant is not None and not integer_op:
                # The ingest rewrite marked this op a code consumer; the
                # numpy backend realises it as dequantise-then-run (the
                # fully integer path below skips this entirely).
                x = dequantize(x, op.dequant)
                self._executor.ingest_dequants += 1
            if op.kind == "flatten":
                x = np.ascontiguousarray(x).reshape(n, -1)
                continue
            if op.kind == "conv2d":
                if op.wq is not None:
                    x = self._conv_wq(position, op, x, integer_op)
                else:
                    c_out = op.out_spec.shape[0]
                    windows = extract_windows(x, op.kernel, op.stride, op.padding)
                    cols = self._buffer(position, "cols", windows.shape, np.float32)
                    np.copyto(cols, windows)
                    cols3 = cols.reshape(n, -1, op.oh * op.ow)
                    out3 = self._buffer(
                        position, "out", (n, c_out, op.oh * op.ow), np.float32
                    )
                    # Stacked per-sample GEMM: identical geometry for every
                    # sample, so the result is independent of n.
                    np.matmul(op.weight, cols3, out=out3)
                    out = out3.reshape(n, c_out, op.oh, op.ow)
                    if op.bias is not None:
                        out += op.bias.reshape(1, c_out, 1, 1)
                    if op.relu:
                        np.maximum(out, 0.0, out=out)
                    if op.pool:
                        out = self._pool(position, out, (2, 2), (2, 2), (0, 0))
                    x = out
            elif op.kind == "linear":
                if op.wq is not None:
                    x = self._linear_wq(position, op, x, integer_op)
                else:
                    out_f = op.out_spec.elements
                    out3 = self._buffer(position, "out", (n, 1, out_f), np.float32)
                    np.matmul(x[:, None, :], op.weight.T, out=out3)
                    out = out3.reshape(n, out_f)
                    if op.bias is not None:
                        out += op.bias
                    if op.relu:
                        np.maximum(out, 0.0, out=out)
                    x = out
            elif op.kind == "relu":
                out = self._buffer(position, "out", x.shape, np.float32)
                x = np.maximum(x, 0.0, out=out)
            elif op.kind == "maxpool2d":
                x = self._pool(position, x, op.kernel, op.stride, op.padding)
            else:  # pragma: no cover - lowering controls the op kinds
                raise ValueError(f"IR op {op.kind!r} has no numpy lowering")
            if op.add_rows:
                x = x + extra.reshape(x.shape)
        return x

    def _conv_wq(self, position, op, x, integer_op) -> np.ndarray:
        """Conv with int8 weights: exact integer matmul on the composed
        (u8-act) path, f32-widened code matmul otherwise; per-channel
        scales and the (f64-folded) corrected bias applied in the epilogue.
        Widened-path convs may carry a fused pool (they keep direct-kernel
        eligibility); fully integer convs never do."""
        executor = self._executor
        n = self.n
        c_out = op.out_spec.shape[0]
        m = op.oh * op.ow
        _scale, cscale, bias = executor._epilogue(op, integer_op)
        if integer_op:
            ph, pw = op.padding
            if ph or pw:
                # Integer path: pad with the zero-point *code*, which
                # dequantises to exactly 0.0 — same as the native kernels.
                x = np.pad(
                    x,
                    ((0, 0), (0, 0), (ph, ph), (pw, pw)),
                    mode="constant",
                    constant_values=op.dequant.zero_point,
                )
            windows = extract_windows(x, op.kernel, op.stride, (0, 0))
            cols = self._buffer(position, "icols", windows.shape, np.int32)
            np.copyto(cols, windows)
            cols3 = cols.reshape(n, -1, m)
            acc3 = self._buffer(position, "iacc", (n, c_out, m), np.int32)
            # Exact int32 accumulation: associative, hence batch-invariant
            # by arithmetic alone.
            np.matmul(executor._wq_i32(op), cols3, out=acc3)
            src3 = acc3
        else:
            windows = extract_windows(x, op.kernel, op.stride, op.padding)
            cols = self._buffer(position, "cols", windows.shape, np.float32)
            np.copyto(cols, windows)
            cols3 = cols.reshape(n, -1, m)
            acc3 = self._buffer(position, "out", (n, c_out, m), np.float32)
            np.matmul(executor._wq_f32(op), cols3, out=acc3)
            src3 = acc3
        out3 = self._buffer(position, "wout", (n, c_out, m), np.float32)
        np.copyto(out3, src3)  # i32 → f32 cast on the integer path
        out3 *= cscale.reshape(1, c_out, 1)
        if bias is not None:
            out3 += bias.reshape(1, c_out, 1)
        out = out3.reshape(n, c_out, op.oh, op.ow)
        if op.relu:
            np.maximum(out, 0.0, out=out)
        if op.pool:
            out = self._pool(position, out, (2, 2), (2, 2), (0, 0))
        return out

    def _linear_wq(self, position, op, x, integer_op) -> np.ndarray:
        """Linear with int8 weights (see :meth:`_conv_wq`)."""
        executor = self._executor
        n = self.n
        out_f = op.out_spec.elements
        _scale, cscale, bias = executor._epilogue(op, integer_op)
        if integer_op:
            xi = self._buffer(position, "ix", x.shape, np.int32)
            np.copyto(xi, x)
            acc3 = self._buffer(position, "iacc", (n, 1, out_f), np.int32)
            np.matmul(xi[:, None, :], executor._wq_i32(op).T, out=acc3)
        else:
            acc3 = self._buffer(position, "acc", (n, 1, out_f), np.float32)
            np.matmul(x[:, None, :], executor._wq_f32(op).T, out=acc3)
        out3 = self._buffer(position, "wout", (n, 1, out_f), np.float32)
        np.copyto(out3, acc3)
        out = out3.reshape(n, out_f)
        out *= cscale
        if bias is not None:
            out += bias
        if op.relu:
            np.maximum(out, 0.0, out=out)
        return out

    def _pool(self, position, x, kernel, stride, padding) -> np.ndarray:
        windows = extract_windows(x, kernel, stride, padding)
        n, c, kh, kw, oh, ow = windows.shape
        cols = self._buffer(position, "pcols", windows.shape, np.float32)
        np.copyto(cols, windows)
        out = self._buffer(position, "pout", (n, c, oh, ow), np.float32)
        # Per-element window max on a contiguous copy (reducing the strided
        # view directly is an order of magnitude slower); serving never
        # needs the argmax the training path keeps for its gradient.
        return cols.reshape(n, c, kh * kw, oh, ow).max(axis=2, out=out)


class BatchInvariantExecutor:
    """Runs a frozen :class:`~repro.nn.Sequential` with batch-stable math.

    Args:
        net: The (local or remote) half of a split backbone; callers
            freeze it and put it in eval mode.
        kernel_backend: ``"auto"`` (native C kernels when available, the
            default), ``"native"`` (require them), or ``"numpy"`` (force
            the numpy interpreter).  See the module docstring for the
            selection and determinism contract.
        ir_rewrites: IR rewrite allowlist for this executor (default: the
            environment, via :func:`repro.edge.ir.default_rewrites`).
            Snapshotted once here, like the backend.
        weight_bits: ``8`` opts in to int8 weight quantisation (adds the
            ``int8_weights`` rewrite to the snapshot; overridden by the
            ``REPRO_NO_IR_REWRITES`` kill-switch, which pins the canonical
            f32 path).  ``None`` (default) keeps full-precision weights.

    Attributes:
        ingest_dequants: Number of batch-sized f32 dequantised copies this
            executor has materialised from quantised inputs.  Stays zero
            on the native backend when the ``int8_ingest`` rewrite covers
            every quantised call — the allocation assertion the serving
            bench makes.
        weight_dequants: Number of f32-widened weight-code copies this
            executor has materialised (numpy float path only, one per code
            plane, cached).  Stays zero on the native backend — the int8w
            bench's zero-f32-weight-copy assertion.
    """

    def __init__(
        self,
        net: Sequential,
        kernel_backend: str = "auto",
        ir_rewrites: tuple[str, ...] | None = None,
        weight_bits: int | None = None,
    ) -> None:
        if kernel_backend not in KERNEL_BACKENDS:
            raise ConfigurationError(
                f"kernel_backend must be one of {KERNEL_BACKENDS}, "
                f"got {kernel_backend!r}"
            )
        if kernel_backend == "native" and not _fastexec.available():
            raise ConfigurationError(
                "native kernel backend requested but the compiled kernels "
                "are unavailable (no C compiler, or REPRO_NO_C_KERNEL=1)"
            )
        if weight_bits not in (None, 8):
            raise ConfigurationError(
                f"weight_bits must be None or 8, got {weight_bits!r}"
            )
        self.net = net
        self.backend = (
            "native"
            if kernel_backend != "numpy" and _fastexec.available()
            else "numpy"
        )
        if ir_rewrites is None:
            names = set(ir.default_rewrites())
        else:
            unknown = set(ir_rewrites) - set(ir.KNOWN_REWRITES)
            if unknown:
                raise ConfigurationError(
                    f"unknown IR rewrites: {sorted(unknown)} "
                    f"(known: {list(ir.KNOWN_REWRITES)})"
                )
            names = set(ir_rewrites)
        if weight_bits == 8 and not os.environ.get(ir.DISABLE_REWRITES_ENV_VAR):
            names.add(ir.INT8_WEIGHTS)
        self.rewrites = tuple(
            name for name in ir.PIPELINE_ORDER if name in names
        )
        self.weight_bits = weight_bits
        self.ingest_dequants = 0
        self.weight_dequants = 0
        # id(op.wq) -> widened/int copies of the code plane (numpy backend).
        self._wq_f32_cache: dict[int, np.ndarray] = {}
        self._wq_i32_cache: dict[int, np.ndarray] = {}
        # (id(op), ingest) -> epilogue constants (shared per lowered op).
        self._epilogue_cache: dict[tuple[int, bool], tuple] = {}
        self._plan = [
            (index, module, self._handler(module))
            for index, module in enumerate(net.layers())
        ]
        self._scratch: dict[tuple, np.ndarray] = {}
        self._segments = ir.segment_modules(self._plan)
        # (segment, in_shape, quantization, epilogue_add) -> ir.Program
        self._lowered: dict[tuple, ir.Program] = {}
        # (segment, n, in_shape, quantization, epilogue_add) -> interpreter
        self._programs: dict[tuple, object] = {}

    # ------------------------------------------------------------------
    # Plan construction
    # ------------------------------------------------------------------
    def _handler(self, module):
        if isinstance(module, Conv2d):
            return self._conv2d
        if isinstance(module, Linear):
            return self._linear
        if isinstance(module, ReLU):
            return self._relu
        if isinstance(module, MaxPool2d):
            return self._max_pool2d
        if isinstance(module, Flatten):
            return self._flatten
        if isinstance(module, Dropout):
            return self._dropout
        if isinstance(module, BatchNorm2d):
            return self._batch_norm2d
        if isinstance(module, LocalResponseNorm):
            return self._local_response_norm
        return None  # fall back to the module's own forward

    def _program(
        self,
        segment_index: int,
        rows: list,
        n: int,
        shape: tuple[int, ...],
        quantization: QuantizationParams | None,
        epilogue_add: bool,
    ):
        """The (lowered, interpreted) program for one segment geometry.

        Lowering is cached per-sample-geometry; the interpreter binding is
        additionally cached per batch size.  Both caches key on the
        quantisation params and the epilogue-add request because the
        rewrite pipeline's output depends on them.
        """
        lowered_key = (segment_index, shape, quantization, epilogue_add)
        program = self._lowered.get(lowered_key)
        if program is None:
            program = ir.lower(
                rows,
                shape,
                quantization=quantization,
                epilogue_add=epilogue_add,
                rewrites=self.rewrites,
            )
            self._lowered[lowered_key] = program
        key = (segment_index, n, shape, quantization, epilogue_add)
        interpreter = self._programs.get(key)
        if interpreter is None and any(
            op.kind != "flatten" for op in program.ops
        ):
            if self.backend == "native":
                interpreter = _fastexec.CompiledProgram(program, n)
            else:
                interpreter = _NumpyProgram(self, segment_index, program, n)
            self._programs[key] = interpreter
        return program, interpreter

    def _run_python_rows(self, rows: list, x: np.ndarray) -> np.ndarray:
        for index, module, handler in rows:
            if handler is not None and not (
                isinstance(module, BatchNorm2d) and module.training
            ):
                x = handler(index, module, x)
            else:
                with no_grad():
                    x = module(Tensor(np.ascontiguousarray(x))).numpy()
        return x

    def _buffer(self, key: tuple, shape: tuple[int, ...], dtype) -> np.ndarray:
        """A reusable scratch array for one (layer, role, shape) slot."""
        slot = (*key, shape, np.dtype(dtype))
        buffer = self._scratch.get(slot)
        if buffer is None:
            buffer = np.empty(shape, dtype=dtype)
            self._scratch[slot] = buffer
        return buffer

    def _owns(self, array: np.ndarray) -> bool:
        base = array.base if array.base is not None else array
        return any(base is buffer for buffer in self._scratch.values())

    # ------------------------------------------------------------------
    # Quantised-weight helpers (numpy interpreter)
    # ------------------------------------------------------------------
    def _wq_f32(self, op: ir.IROp) -> np.ndarray:
        """The f32-widened code plane for the numpy float path (cached,
        counted in :attr:`weight_dequants`)."""
        cached = self._wq_f32_cache.get(id(op.wq))
        if cached is None:
            cached = op.wq.codes.astype(np.float32)
            self._wq_f32_cache[id(op.wq)] = cached
            self.weight_dequants += 1
        return cached

    def _wq_i32(self, op: ir.IROp) -> np.ndarray:
        """The int32 code plane for the exact integer-matmul path (cached;
        integer widening, so not a weight dequantisation)."""
        cached = self._wq_i32_cache.get(id(op.wq))
        if cached is None:
            cached = op.wq.codes.astype(np.int32)
            self._wq_i32_cache[id(op.wq)] = cached
        return cached

    def _epilogue(self, op: ir.IROp, ingest: bool) -> tuple:
        """Cached ``ir.epilogue_constants`` for one lowered op."""
        key = (id(op), ingest)
        cached = self._epilogue_cache.get(key)
        if cached is None:
            cached = ir.epilogue_constants(op, ingest=ingest)
            self._epilogue_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Kernels (each per-row invariant to the batch geometry)
    # ------------------------------------------------------------------
    def _conv2d(self, index: int, module: Conv2d, x: np.ndarray) -> np.ndarray:
        n, c_in, h, w = x.shape
        kh, kw = module.kernel_size
        stride, padding = module.stride, module.padding
        oh = conv_output_size(h, kh, stride[0], padding[0])
        ow = conv_output_size(w, kw, stride[1], padding[1])
        c_out = module.out_channels
        windows = extract_windows(x, (kh, kw), stride, padding)
        cols = self._buffer((index, "cols"), windows.shape, x.dtype)
        np.copyto(cols, windows)
        cols3 = cols.reshape(n, c_in * kh * kw, oh * ow)
        w_mat = module.weight.data.reshape(c_out, c_in * kh * kw)
        out3 = self._buffer((index, "out"), (n, c_out, oh * ow), x.dtype)
        # Stacked per-sample GEMM: identical geometry for every sample, so
        # the result is independent of n (and matches the training path).
        np.matmul(w_mat, cols3, out=out3)
        out = out3.reshape(n, c_out, oh, ow)
        if module.bias is not None:
            out += module.bias.data.reshape(1, c_out, 1, 1)
        return out

    def _linear(self, index: int, module: Linear, x: np.ndarray) -> np.ndarray:
        out3 = self._buffer(
            (index, "out"), (len(x), 1, module.out_features), x.dtype
        )
        np.matmul(x[:, None, :], module.weight.data.T, out=out3)
        out = out3.reshape(len(x), module.out_features)
        if module.bias is not None:
            out += module.bias.data
        return out

    def _relu(self, index: int, module: ReLU, x: np.ndarray) -> np.ndarray:
        out = self._buffer((index, "out"), x.shape, x.dtype)
        return np.maximum(x, 0.0, out=out)

    def _max_pool2d(self, index: int, module: MaxPool2d, x: np.ndarray) -> np.ndarray:
        windows = extract_windows(x, module.kernel_size, module.stride, module.padding)
        n, c, kh, kw, oh, ow = windows.shape
        cols = self._buffer((index, "cols"), windows.shape, x.dtype)
        np.copyto(cols, windows)
        out = self._buffer((index, "out"), (n, c, oh, ow), x.dtype)
        # Per-element window max on a contiguous copy (reducing the strided
        # view directly is an order of magnitude slower); serving never
        # needs the argmax the training path keeps for its gradient.
        return cols.reshape(n, c, kh * kw, oh, ow).max(axis=2, out=out)

    def _flatten(self, index: int, module: Flatten, x: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(x).reshape(len(x), -1)

    def _dropout(self, index: int, module: Dropout, x: np.ndarray) -> np.ndarray:
        if module.training:  # pragma: no cover - serving nets are eval-mode
            raise RuntimeError("serving executor requires eval-mode dropout")
        return x

    def _batch_norm2d(self, index: int, module: BatchNorm2d, x: np.ndarray) -> np.ndarray:
        c = module.num_features
        mean = module.running_mean.reshape(1, c, 1, 1)
        var = module.running_var.reshape(1, c, 1, 1)
        # Same op order as the training-path functional (eval branch), so
        # the values match it exactly; elementwise, hence batch-invariant.
        x_hat = (x - mean) / np.sqrt(var + module.eps)
        return x_hat * module.gamma.data.reshape(1, c, 1, 1) + module.beta.data.reshape(
            1, c, 1, 1
        )

    def _local_response_norm(
        self, index: int, module: LocalResponseNorm, x: np.ndarray
    ) -> np.ndarray:
        n, c, h, w = x.shape
        size, alpha, beta, k = module.size, module.alpha, module.beta, module.k
        half = size // 2
        squared = x * x
        padded = np.zeros((n, c + size - 1, h, w), dtype=x.dtype)
        padded[:, half : half + c] = squared
        window = padded[:, 0:c].copy()
        # Same accumulation order as the functional implementation.
        for offset in range(1, size):
            window += padded[:, offset : offset + c]
        denom = (window * (alpha / size) + k) ** (-beta)
        return x * denom

    # ------------------------------------------------------------------
    # Quantised-code ingest helpers
    # ------------------------------------------------------------------
    def _check_codes(
        self, x: np.ndarray, params: QuantizationParams
    ) -> np.ndarray:
        """Validate code range like :func:`dequantize`, narrow the dtype.

        When every value the carrier dtype can hold is a valid code (u8
        for 8-bit params, u16 for 16-bit), validation is free by
        construction and skipped — the serving path after
        ``forward_batch`` narrowing.
        """
        target = np.uint8 if params.bits <= 8 else np.uint16
        if np.iinfo(x.dtype).max >= params.levels and x.size:
            if int(x.max()) >= params.levels:
                raise ChannelError(
                    f"codes outside [0, {params.levels}) for "
                    f"{params.bits}-bit params"
                )
        if x.dtype != target:
            x = x.astype(target)
        return np.ascontiguousarray(x)

    def _dequantize_input(
        self, x: np.ndarray, params: QuantizationParams
    ) -> np.ndarray:
        """The fallback ingest: materialise the f32 batch (and count it)."""
        self.ingest_dequants += 1
        return dequantize(x, params)

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def warm(
        self,
        batch_shape: tuple[int, ...],
        *,
        quantization: QuantizationParams | None = None,
        epilogue_add: bool = False,
    ) -> tuple[int, ...]:
        """Pre-size every buffer for a batch shape; returns the out shape.

        Throwaway forwards allocate the lowered programs (and the native
        library, or numpy scratch) for ``batch_shape`` off the latency
        path, so the first real micro-batch pays no compilation or
        allocation jitter.  ``quantization`` warms the quantised-ingest
        geometry (the input is synthesised at the code dtype);
        ``epilogue_add`` additionally warms the noise-add epilogue.  The
        serving engine calls this at deploy time with the planner's chosen
        window.
        """
        if quantization is not None:
            dtype = np.uint8 if quantization.bits <= 8 else np.uint16
            x = np.full(batch_shape, quantization.zero_point, dtype=dtype)
        else:
            x = np.zeros(batch_shape, dtype=np.float32)
        out = self(x, quantization=quantization)
        if epilogue_add:
            out = self(
                x,
                quantization=quantization,
                epilogue_add=np.zeros(out.shape, dtype=np.float32),
            )
        return out.shape

    def _numpy_forward(self, x: np.ndarray) -> np.ndarray:
        return self._run_python_rows(self._plan, x)

    def _replay_numpy(
        self,
        batch: np.ndarray,
        quantization: QuantizationParams | None,
        extra: np.ndarray | None,
    ) -> np.ndarray:
        """Whole-batch handler replay for mid-chain dtype surprises."""
        x = np.ascontiguousarray(batch)
        if quantization is not None and x.dtype != np.float32:
            x = self._dequantize_input(x, quantization)
        x = self._numpy_forward(x)
        if extra is not None:
            x = x + extra.reshape(x.shape)
        return x

    def __call__(
        self,
        batch: np.ndarray,
        *,
        quantization: QuantizationParams | None = None,
        epilogue_add: np.ndarray | None = None,
    ) -> np.ndarray:
        """Forward a ``(N, ...)`` numpy batch to a numpy output.

        Args:
            batch: Float32 activations — or, with ``quantization`` set,
                the raw integer codes of a quantised uplink.  With the
                ``int8_ingest`` rewrite active the codes feed the first
                GEMM/conv directly; otherwise they are dequantised first
                (counted in :attr:`ingest_dequants`).
            quantization: Affine params of the quantised ``batch``.
            epilogue_add: Optional per-row float32 tensor, shaped like the
                output, added to the result (the Shredder noise add).
                With the ``fold_epilogue_add`` rewrite active the add runs
                inside the last op's output write.

        The result is freshly owned (never a view of internal scratch), so
        callers may hold it across subsequent executor calls.
        """
        x = np.ascontiguousarray(batch)
        extra = epilogue_add
        if extra is not None:
            extra = np.ascontiguousarray(np.asarray(extra, dtype=np.float32))
        if quantization is not None and x.dtype == np.float32:
            quantization = None  # already dequantised upstream
        if x.dtype not in _IR_DTYPES or (
            x.dtype != np.float32 and quantization is None
        ):
            # Non-f32 float probes (e.g. float64) keep the historical
            # handler path and their dtype.
            out = self._numpy_forward(x)
            if extra is not None:
                out = out + extra.reshape(out.shape)
            return self._finish(out)
        pending = quantization
        # The epilogue add belongs to the final segment (when it is an IR
        # run); everything else leaves `extra` for the post-loop add.
        fold_index = (
            len(self._segments) - 1
            if self._segments and self._segments[-1][0] == "ir"
            else None
        )
        for segment_index, (kind, rows) in enumerate(self._segments):
            if kind == "python":
                if pending is not None:
                    x = self._dequantize_input(x, pending)
                    pending = None
                x = self._run_python_rows(rows, x)
                continue
            if x.dtype not in _IR_DTYPES or (
                x.dtype != np.float32 and pending is None
            ):
                # A python-fallback layer changed the dtype mid-chain;
                # replay the whole batch on the handler plan rather than
                # silently casting.
                return self._finish(
                    self._replay_numpy(batch, quantization, extra)
                )
            if not x.flags.c_contiguous:
                x = np.ascontiguousarray(x)
            want_extra = extra is not None and segment_index == fold_index
            program, interpreter = self._program(
                segment_index, rows, len(x), x.shape[1:], pending, want_extra
            )
            if program.consumes_codes:
                x = self._check_codes(x, pending)
                pending = None
            elif pending is not None and any(
                op.kind != "flatten" for op in program.ops
            ):
                # Rewrite off (or first op not foldable): dequantise now.
                # The same lowered program accepts the f32 batch.
                x = self._dequantize_input(x, pending)
                pending = None
            if interpreter is None:
                # Flatten-only segment: a free reshape (codes included).
                x = np.ascontiguousarray(x).reshape(len(x), -1)
                continue
            if program.extra == ir.EXTRA_FOLDED:
                x = interpreter(x, extra)
                extra = None
            else:
                x = interpreter(x)
        if pending is not None:  # pragma: no cover - degenerate empty net
            x = self._dequantize_input(x, pending)
        if extra is not None:
            x = x + extra.reshape(x.shape)
        return self._finish(x)

    def _finish(self, x: np.ndarray) -> np.ndarray:
        if self._owns(x):
            x = x.copy()
        return x
