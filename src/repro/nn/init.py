"""Weight initialisation schemes.

The backbone networks use Kaiming/Xavier initialisation; Shredder's noise
tensors are initialised from a Laplace distribution whose location ``mu`` and
scale ``b`` are hyper-parameters (paper §2.4).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute fan-in/fan-out for linear (2-D) and conv (4-D) weights."""
    if len(shape) == 2:
        fan_out, fan_in = shape
        return fan_in, fan_out
    if len(shape) == 4:
        c_out, c_in, kh, kw = shape
        receptive = kh * kw
        return c_in * receptive, c_out * receptive
    raise ConfigurationError(f"cannot infer fan for weight shape {shape}")


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He-uniform init, appropriate before ReLU nonlinearities."""
    fan_in, _ = _fan_in_out(shape)
    bound = math.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform init, appropriate before tanh/sigmoid."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def uniform_bias(shape: tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """PyTorch-style bias init: U(-1/sqrt(fan_in), 1/sqrt(fan_in))."""
    bound = 1.0 / math.sqrt(max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def laplace(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    loc: float = 0.0,
    scale: float = 1.0,
) -> np.ndarray:
    """Laplace(mu, b) sample — Shredder's noise-tensor initialiser.

    Args:
        shape: Output shape (matches the activation at the cut point).
        rng: Source of randomness.
        loc: Location parameter ``mu``.
        scale: Scale parameter ``b`` (must be positive).
    """
    if scale <= 0:
        raise ConfigurationError(f"Laplace scale must be positive, got {scale}")
    return rng.laplace(loc=loc, scale=scale, size=shape).astype(np.float32)
