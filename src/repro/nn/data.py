"""Dataset and DataLoader abstractions.

A :class:`Dataset` yields ``(image, label)`` pairs as numpy arrays; the
:class:`DataLoader` batches and (optionally) reshuffles them each epoch with
its own RNG so that experiments are reproducible independent of global
random state.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.errors import DatasetError


class Dataset:
    """Abstract indexable dataset."""

    def __len__(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def __getitem__(self, index: int) -> tuple[np.ndarray, int]:  # pragma: no cover
        raise NotImplementedError


class TensorDataset(Dataset):
    """In-memory dataset over pre-materialised arrays.

    Args:
        images: ``(N, ...)`` array of inputs.
        labels: ``(N,)`` array of integer labels.
    """

    def __init__(self, images: np.ndarray, labels: np.ndarray) -> None:
        images = np.asarray(images)
        labels = np.asarray(labels)
        if len(images) != len(labels):
            raise DatasetError(
                f"images ({len(images)}) and labels ({len(labels)}) disagree"
            )
        self.images = images
        self.labels = labels

    def __len__(self) -> int:
        return len(self.images)

    def __getitem__(self, index: int) -> tuple[np.ndarray, int]:
        return self.images[index], int(self.labels[index])


class Subset(Dataset):
    """View of a dataset restricted to the given indices."""

    def __init__(self, dataset: Dataset, indices: Sequence[int]) -> None:
        self.dataset = dataset
        self.indices = list(indices)

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index: int) -> tuple[np.ndarray, int]:
        return self.dataset[self.indices[index]]


def random_split(
    dataset: Dataset, fractions: Sequence[float], rng: np.random.Generator
) -> list[Subset]:
    """Split a dataset into disjoint random subsets by fraction.

    Args:
        dataset: Source dataset.
        fractions: Positive fractions summing to at most 1.0.
        rng: Randomness for the permutation.
    """
    if any(f <= 0 for f in fractions):
        raise DatasetError("all split fractions must be positive")
    if sum(fractions) > 1.0 + 1e-9:
        raise DatasetError(f"fractions sum to {sum(fractions)} > 1")
    n = len(dataset)
    perm = rng.permutation(n)
    subsets: list[Subset] = []
    start = 0
    for i, fraction in enumerate(fractions):
        if i == len(fractions) - 1 and abs(sum(fractions) - 1.0) < 1e-9:
            stop = n
        else:
            stop = start + int(round(fraction * n))
        subsets.append(Subset(dataset, perm[start:stop].tolist()))
        start = stop
    return subsets


class DataLoader:
    """Batched iterator over a dataset.

    Args:
        dataset: Source dataset.
        batch_size: Samples per batch.
        shuffle: Whether to reshuffle at the start of each epoch.
        rng: Randomness used for shuffling.
        drop_last: Drop the trailing partial batch.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int,
        shuffle: bool = False,
        rng: np.random.Generator | None = None,
        drop_last: bool = False,
    ) -> None:
        if batch_size <= 0:
            raise DatasetError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = rng or np.random.default_rng()

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            indices = order[start : start + self.batch_size]
            if self.drop_last and len(indices) < self.batch_size:
                return
            images = []
            labels = []
            for i in indices:
                image, label = self.dataset[int(i)]
                images.append(image)
                labels.append(label)
            yield np.stack(images), np.asarray(labels, dtype=np.int64)
