"""Module and Parameter abstractions (the ``torch.nn.Module`` substitute).

A :class:`Module` owns :class:`Parameter` leaves and/or child modules, knows
how to enumerate them by dotted name, can switch between train and eval
behaviour, and can export/import its state as plain numpy arrays.  Buffers
(non-trainable state such as BatchNorm running statistics) participate in
``state_dict`` but not in gradient updates.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from repro.errors import SerializationError
from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A tensor flagged as trainable and registered by its owning module."""

    def __init__(self, data, name: str | None = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for layers and models.

    Subclasses assign :class:`Parameter`, buffer arrays (via
    :meth:`register_buffer`), and child :class:`Module` instances as
    attributes; registration is automatic through ``__setattr__``.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable state that should persist in state_dict."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name in self._buffers:
            yield f"{prefix}{name}", getattr(self, name)
        for child_name, child in self._modules.items():
            yield from child.named_buffers(prefix=f"{prefix}{child_name}.")

    def children(self) -> list["Module"]:
        return list(self._modules.values())

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for child_name, child in self._modules.items():
            yield from child.named_modules(prefix=f"{prefix}{child_name}.")

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Modes and gradients
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def freeze(self) -> "Module":
        """Disable gradients for every parameter (used for the backbone).

        Shredder never updates network weights — only the noise tensor is
        trainable (paper §1, §2.1).  Freezing the backbone both enforces that
        and skips useless gradient work.
        """
        for param in self.parameters():
            param.requires_grad = False
        return self

    def unfreeze(self) -> "Module":
        for param in self.parameters():
            param.requires_grad = True
        return self

    # ------------------------------------------------------------------
    # State dict
    # ------------------------------------------------------------------
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        state: OrderedDict[str, np.ndarray] = OrderedDict()
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buffer in self.named_buffers():
            state[name] = np.asarray(buffer).copy()
        return state

    def load_state_dict(self, state: dict, strict: bool = True) -> None:
        """Load arrays into parameters and buffers by dotted name.

        Args:
            state: Mapping of dotted names to arrays.
            strict: When true, missing or unexpected keys raise
                :class:`SerializationError`.
        """
        own_params = dict(self.named_parameters())
        own_buffers = dict(self.named_buffers())
        expected = set(own_params) | set(own_buffers)
        provided = set(state)
        if strict and expected != provided:
            missing = sorted(expected - provided)
            unexpected = sorted(provided - expected)
            raise SerializationError(
                f"state dict mismatch: missing={missing}, unexpected={unexpected}"
            )
        for name, array in state.items():
            if name in own_params:
                target = own_params[name]
                if target.shape != array.shape:
                    raise SerializationError(
                        f"shape mismatch for {name!r}: "
                        f"model={target.shape}, file={array.shape}"
                    )
                target.data[...] = array
            elif name in own_buffers:
                buffer = own_buffers[name]
                if buffer.shape != array.shape:
                    raise SerializationError(
                        f"shape mismatch for buffer {name!r}: "
                        f"model={buffer.shape}, file={array.shape}"
                    )
                buffer[...] = array

    # ------------------------------------------------------------------
    # Calling
    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)

    def __repr__(self) -> str:
        children = ", ".join(self._modules)
        return f"{type(self).__name__}({children})"
