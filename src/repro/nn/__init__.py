"""``repro.nn`` — the from-scratch deep-learning substrate.

A compact PyTorch-like stack on numpy: reverse-mode autograd
(:mod:`repro.nn.tensor`), NN kernels (:mod:`repro.nn.functional`), layers
(:mod:`repro.nn.layers`), optimisers (:mod:`repro.nn.optim`), data pipeline
(:mod:`repro.nn.data`) and serialization (:mod:`repro.nn.serialization`).
"""

from repro.nn import functional
from repro.nn.data import DataLoader, Dataset, Subset, TensorDataset, random_split
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    LocalResponseNorm,
    MaxPool2d,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.gradcheck import GradCheckResult, gradcheck, gradcheck_all
from repro.nn.loss import CrossEntropyLoss, MSELoss
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam, CosineAnnealingLR, StepLR, clip_grad_norm
from repro.nn.serialization import (
    load_module,
    load_state_dict,
    save_module,
    save_state_dict,
)
from repro.nn.tensor import Tensor, as_tensor, concatenate, no_grad, ones, stack, zeros

__all__ = [
    "Adam",
    "AvgPool2d",
    "BatchNorm2d",
    "Conv2d",
    "CosineAnnealingLR",
    "CrossEntropyLoss",
    "DataLoader",
    "Dataset",
    "Dropout",
    "Flatten",
    "GradCheckResult",
    "GlobalAvgPool2d",
    "Linear",
    "LocalResponseNorm",
    "MSELoss",
    "MaxPool2d",
    "Module",
    "Parameter",
    "ReLU",
    "SGD",
    "Sequential",
    "Sigmoid",
    "StepLR",
    "Subset",
    "Tanh",
    "Tensor",
    "TensorDataset",
    "as_tensor",
    "clip_grad_norm",
    "concatenate",
    "functional",
    "gradcheck",
    "gradcheck_all",
    "load_module",
    "load_state_dict",
    "no_grad",
    "ones",
    "random_split",
    "save_module",
    "save_state_dict",
    "stack",
    "zeros",
]
