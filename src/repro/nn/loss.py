"""Loss modules wrapping the functional losses."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module
from repro.nn.tensor import Tensor


class CrossEntropyLoss(Module):
    """Mean cross-entropy from logits and integer labels."""

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:  # type: ignore[override]
        return F.cross_entropy(logits, targets)

    def __call__(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return self.forward(logits, targets)


class MSELoss(Module):
    """Mean squared error."""

    def forward(self, prediction: Tensor, target: Tensor) -> Tensor:  # type: ignore[override]
        return F.mse_loss(prediction, target)

    def __call__(self, prediction: Tensor, target: Tensor) -> Tensor:
        return self.forward(prediction, target)
