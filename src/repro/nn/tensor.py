"""A small reverse-mode automatic differentiation engine on numpy.

This module is the substrate that replaces PyTorch for this reproduction.
Shredder (paper section 2.1) needs exactly one capability from its framework:
the gradient of the remote network's output with respect to an additive noise
tensor, ``dy/dn``.  :class:`Tensor` provides define-by-run reverse-mode
autodiff over numpy arrays with full broadcasting support, which is enough to
train both the backbone networks and the noise tensors.

Design notes:

* Every ``Tensor`` optionally records the operation that produced it
  (``_parents`` plus a ``_backward`` closure).  Calling :meth:`Tensor.backward`
  topologically sorts the graph and accumulates ``.grad`` arrays.
* Gradients through broadcast operations are reduced back to the parent's
  shape by :func:`unbroadcast`.
* Graph recording can be suspended with :func:`no_grad` (used for inference
  and for evaluation loops, where building the tape would waste memory).
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.errors import GradientError, ShapeError

#: Default floating point dtype for all tensors.
DEFAULT_DTYPE = np.float32

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager that disables autograd graph construction."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after numpy broadcasting.

    Broadcasting can both prepend dimensions and stretch size-1 dimensions;
    the adjoint of broadcasting is summation over exactly those axes.
    """
    if grad.shape == shape:
        return grad
    # Sum out prepended dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over stretched size-1 dimensions.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    if grad.shape != shape:
        raise ShapeError(f"cannot unbroadcast {grad.shape} to {shape}")
    return grad


def _as_array(value: "Tensor | np.ndarray | float | int") -> np.ndarray:
    """Coerce to ndarray, keeping existing float dtypes (so float64
    gradient checks stay float64) and defaulting everything else to
    ``float32``."""
    if isinstance(value, Tensor):
        return value.data
    array = np.asarray(value)
    if array.dtype.kind != "f":
        array = array.astype(DEFAULT_DTYPE)
    return array


class Tensor:
    """A numpy array plus an optional autograd tape entry.

    Args:
        data: Array-like payload.  Converted to ``float32`` by default.
        requires_grad: Whether gradients should be accumulated into
            :attr:`grad` during :meth:`backward`.
        name: Optional debug name surfaced in ``repr``.
    """

    __slots__ = ("data", "grad", "requires_grad", "name", "_parents", "_backward")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        name: str | None = None,
        _parents: Sequence["Tensor"] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
    ) -> None:
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self.name = name
        self._parents: tuple[Tensor, ...] = tuple(_parents)
        self._backward = _backward

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        tag = f" name={self.name!r}" if self.name else ""
        grad = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad}{tag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        """Return the sole element of a scalar tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else _raise_not_scalar(self)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but severed from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a graph-free deep copy."""
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create an op result, recording the tape entry if needed."""
        track = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        if not track:
            return Tensor(data)
        needing = tuple(p for p in parents if p.requires_grad)
        return Tensor(data, requires_grad=True, _parents=needing, _backward=backward)

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's gradient buffer."""
        grad = unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Args:
            grad: Seed gradient.  Defaults to ones, which is only sensible
                for scalar outputs (e.g. a loss value).

        Raises:
            GradientError: If this tensor does not require grad.
        """
        if not self.requires_grad:
            raise GradientError("backward() called on a tensor without requires_grad")
        if grad is None:
            if self.data.size != 1:
                raise GradientError(
                    "backward() without an explicit gradient requires a scalar output"
                )
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in seen:
                    stack.append((parent, False))
        self.accumulate_grad(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad)
            if other.requires_grad:
                other.accumulate_grad(grad)

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad)
            if other.requires_grad:
                other.accumulate_grad(-grad)

        return Tensor._make(out_data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad * other.data)
            if other.requires_grad:
                other.accumulate_grad(grad * self.data)

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad / other.data)
            if other.requires_grad:
                other.accumulate_grad(-grad * self.data / (other.data * other.data))

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise ShapeError("Tensor ** only supports scalar exponents")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad * 0.5 / out_data)

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad * (1.0 - out_data * out_data))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        # Single-pass maximum: where()+astype would copy the array twice.
        out_data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        mask = (self.data > low) & (self.data < high)

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def square(self) -> "Tensor":
        return self * self

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self.accumulate_grad(np.broadcast_to(g, self.shape))

        return Tensor._make(np.asarray(out_data, dtype=self.data.dtype), (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = 1
            for a in axes:
                count *= self.shape[a]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Biased (population) variance, matching BatchNorm conventions."""
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        out = (centered * centered).mean(axis=axis, keepdims=keepdims)
        return out

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        expanded = self.data.max(axis=axis, keepdims=True)
        mask = self.data == expanded
        counts = mask.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self.accumulate_grad(mask * g / counts)

        return Tensor._make(np.asarray(out_data, dtype=self.data.dtype), (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def flatten_batch(self) -> "Tensor":
        """Flatten all but the leading (batch) dimension."""
        return self.reshape(self.shape[0], -1)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = self.data.transpose(axes)
        inverse = tuple(np.argsort(axes))

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self.accumulate_grad(full)

        return Tensor._make(out_data, (self,), backward)

    def pad2d(self, padding: int | tuple[int, int]) -> "Tensor":
        """Zero-pad the trailing two (spatial) dimensions of an NCHW tensor."""
        ph, pw = (padding, padding) if isinstance(padding, int) else padding
        if ph == 0 and pw == 0:
            return self
        pads = [(0, 0)] * (self.ndim - 2) + [(ph, ph), (pw, pw)]
        out_data = np.pad(self.data, pads)

        def backward(grad: np.ndarray) -> None:
            slices = tuple(
                [slice(None)] * (self.ndim - 2)
                + [slice(ph, grad.shape[-2] - ph), slice(pw, grad.shape[-1] - pw)]
            )
            self.accumulate_grad(grad[slices])

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        other = as_tensor(other)
        if self.ndim != 2 or other.ndim != 2:
            raise ShapeError(
                f"matmul expects 2-D operands, got {self.shape} @ {other.shape}"
            )
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad @ other.data.T)
            if other.requires_grad:
                other.accumulate_grad(self.data.T @ grad)

        return Tensor._make(out_data, (self, other), backward)

    __matmul__ = matmul

    # ------------------------------------------------------------------
    # Comparison conveniences (no gradients)
    # ------------------------------------------------------------------
    def argmax(self, axis: int | None = None) -> np.ndarray:
        return self.data.argmax(axis=axis)


def _raise_not_scalar(tensor: Tensor) -> float:
    raise ShapeError(f"item() requires a scalar tensor, got shape {tensor.shape}")


def as_tensor(value: "Tensor | np.ndarray | float | int") -> Tensor:
    """Coerce array-likes to :class:`Tensor` (passing tensors through)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(int(start), int(stop))
                tensor.accumulate_grad(grad[tuple(index)])

    return Tensor._make(out_data, tensors, backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stack along a new ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slabs = np.moveaxis(grad, axis, 0)
        for tensor, slab in zip(tensors, slabs):
            if tensor.requires_grad:
                tensor.accumulate_grad(slab)

    return Tensor._make(out_data, tensors, backward)


def zeros(shape: tuple[int, ...], requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)


def ones(shape: tuple[int, ...], requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)
