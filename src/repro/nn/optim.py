"""Optimisers and learning-rate schedules.

Shredder trains noise tensors with Adam (paper §3.2); the backbone networks
are pre-trained with SGD+momentum.  Both optimisers operate on any list of
:class:`~repro.nn.module.Parameter` objects, so the same machinery trains a
75-million-parameter backbone or a single noise tensor.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.tensor import Tensor


class Optimizer:
    """Base optimiser over a list of parameters."""

    def __init__(self, params: Iterable[Tensor], lr: float) -> None:
        self.params: list[Tensor] = [p for p in params]
        if not self.params:
            raise ConfigurationError("optimizer received no parameters")
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                update = v
            else:
                update = grad
            p.data -= self.lr * update


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1**self._t
        bias2 = 1.0 - beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            v += (1.0 - beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class LRScheduler:
    """Base learning-rate schedule wrapping an optimiser."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        self.optimizer.lr = self.compute_lr(self.epoch)

    def compute_lr(self, epoch: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ConfigurationError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def compute_lr(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base LR to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        if t_max <= 0:
            raise ConfigurationError("t_max must be positive")
        self.t_max = t_max
        self.eta_min = eta_min

    def compute_lr(self, epoch: int) -> float:
        progress = min(epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1.0 + math.cos(math.pi * progress)
        )


def clip_grad_norm(params: Sequence[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns:
        The pre-clipping global norm (useful for divergence diagnostics).
    """
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad.astype(np.float64) ** 2).sum())
    norm = math.sqrt(total)
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return norm
