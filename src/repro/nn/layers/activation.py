"""Elementwise activation layers."""

from __future__ import annotations

from repro.nn.module import Module
from repro.nn.tensor import Tensor


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self) -> str:
        return "ReLU()"


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()

    def __repr__(self) -> str:
        return "Tanh()"


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()

    def __repr__(self) -> str:
        return "Sigmoid()"
