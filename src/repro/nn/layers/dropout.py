"""Dropout layer."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module
from repro.nn.tensor import Tensor


class Dropout(Module):
    """Inverted dropout, active only in training mode.

    Args:
        p: Zeroing probability.
        rng: Randomness for the masks (a fresh default_rng if omitted).
    """

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.p = p
        self._rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self._rng)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"
