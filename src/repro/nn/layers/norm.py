"""Normalisation layers: BatchNorm2d and LocalResponseNorm."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class BatchNorm2d(Module):
    """Batch normalisation over NCHW channels with running statistics.

    Args:
        num_features: Channel count ``C``.
        momentum: Running-statistics update rate.
        eps: Numerical stabiliser inside the square root.
    """

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features, dtype=np.float32), name="gamma")
        self.beta = Parameter(np.zeros(num_features, dtype=np.float32), name="beta")
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm2d(
            x,
            self.gamma,
            self.beta,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features})"


class LocalResponseNorm(Module):
    """AlexNet-style cross-channel local response normalisation."""

    def __init__(
        self, size: int = 5, alpha: float = 1e-4, beta: float = 0.75, k: float = 2.0
    ) -> None:
        super().__init__()
        self.size = size
        self.alpha = alpha
        self.beta = beta
        self.k = k

    def forward(self, x: Tensor) -> Tensor:
        return F.local_response_norm(x, self.size, self.alpha, self.beta, self.k)

    def __repr__(self) -> str:
        return f"LocalResponseNorm(size={self.size})"
