"""Flatten layer."""

from __future__ import annotations

from repro.nn.module import Module
from repro.nn.tensor import Tensor


class Flatten(Module):
    """Flatten all dimensions after the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten_batch()

    def __repr__(self) -> str:
        return "Flatten()"
