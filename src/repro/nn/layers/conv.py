"""2-D convolution layer."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.im2col import _pair
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class Conv2d(Module):
    """2-D cross-correlation with optional bias.

    Forward lowers to im2col + batched matmul; the weight-gradient
    contraction in the backward pass is *tiled* over the batch
    (:func:`repro.nn.functional._conv2d_grad_w`), bounding the transient
    im2col copy and contracting tiles concurrently when
    ``REPRO_GRADW_THREADS`` is set — results are bitwise independent of
    the thread count.

    Args:
        in_channels / out_channels: Channel counts.
        kernel_size / stride / padding: Geometry (int or pair).
        bias: Whether to learn a per-output-channel bias.
        rng: Randomness for initialisation.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int | tuple[int, int],
        stride: int | tuple[int, int] = 1,
        padding: int | tuple[int, int] = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        kh, kw = self.kernel_size
        self.weight = Parameter(
            init.kaiming_uniform((out_channels, in_channels, kh, kw), rng),
            name="weight",
        )
        fan_in = in_channels * kh * kw
        self.bias = (
            Parameter(init.uniform_bias((out_channels,), fan_in, rng), name="bias")
            if bias
            else None
        )

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, self.stride, self.padding)

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels} -> {self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, p={self.padding})"
        )
