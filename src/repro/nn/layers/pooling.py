"""Pooling layers."""

from __future__ import annotations

from repro.nn import functional as F
from repro.nn.im2col import _pair
from repro.nn.module import Module
from repro.nn.tensor import Tensor


class MaxPool2d(Module):
    """Max pooling; ``stride`` defaults to the kernel size."""

    def __init__(
        self,
        kernel_size: int | tuple[int, int],
        stride: int | tuple[int, int] | None = None,
        padding: int | tuple[int, int] = 0,
    ) -> None:
        super().__init__()
        self.kernel_size = _pair(kernel_size)
        self.stride = self.kernel_size if stride is None else _pair(stride)
        self.padding = _pair(padding)

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride, self.padding)

    def __repr__(self) -> str:
        return f"MaxPool2d(k={self.kernel_size}, s={self.stride})"


class AvgPool2d(Module):
    """Average pooling; ``stride`` defaults to the kernel size."""

    def __init__(
        self,
        kernel_size: int | tuple[int, int],
        stride: int | tuple[int, int] | None = None,
        padding: int | tuple[int, int] = 0,
    ) -> None:
        super().__init__()
        self.kernel_size = _pair(kernel_size)
        self.stride = self.kernel_size if stride is None else _pair(stride)
        self.padding = _pair(padding)

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride, self.padding)

    def __repr__(self) -> str:
        return f"AvgPool2d(k={self.kernel_size}, s={self.stride})"


class GlobalAvgPool2d(Module):
    """Average over all spatial positions, yielding ``(N, C)``."""

    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=(2, 3))
