"""Container modules."""

from __future__ import annotations

from typing import Iterator

from repro.nn.module import Module
from repro.nn.tensor import Tensor


class Sequential(Module):
    """Run child modules in order.

    Children can be provided positionally (auto-named ``"0"``, ``"1"``, ...)
    or as ``(name, module)`` pairs, which is what the model zoo uses so that
    cut points can be referred to by layer name (``conv0``, ``relu0``, ...).
    """

    def __init__(self, *layers) -> None:
        super().__init__()
        self._order: list[str] = []
        for index, layer in enumerate(layers):
            if isinstance(layer, tuple):
                name, module = layer
            else:
                name, module = str(index), layer
            self.add(name, module)

    def add(self, name: str, module: Module) -> None:
        """Append a named child module."""
        if name in self._modules:
            raise ValueError(f"duplicate layer name {name!r}")
        self._modules[name] = module
        object.__setattr__(self, name, module)
        self._order.append(name)

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = self._modules[name](x)
        return x

    def layer_names(self) -> list[str]:
        return list(self._order)

    def layers(self) -> list[Module]:
        return [self._modules[name] for name in self._order]

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers())

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int | str) -> Module:
        if isinstance(index, str):
            return self._modules[index]
        return self._modules[self._order[index]]

    def slice(self, start: int, stop: int) -> "Sequential":
        """Return a new Sequential sharing the child modules in [start, stop)."""
        return Sequential(*[(name, self._modules[name]) for name in self._order[start:stop]])

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}={self._modules[n]!r}" for n in self._order)
        return f"Sequential({inner})"
