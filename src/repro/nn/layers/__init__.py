"""Layer library."""

from repro.nn.layers.activation import ReLU, Sigmoid, Tanh
from repro.nn.layers.container import Sequential
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.linear import Linear
from repro.nn.layers.norm import BatchNorm2d, LocalResponseNorm
from repro.nn.layers.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d

__all__ = [
    "AvgPool2d",
    "BatchNorm2d",
    "Conv2d",
    "Dropout",
    "Flatten",
    "GlobalAvgPool2d",
    "Linear",
    "LocalResponseNorm",
    "MaxPool2d",
    "ReLU",
    "Sequential",
    "Sigmoid",
    "Tanh",
]
