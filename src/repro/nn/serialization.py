"""State-dict persistence as ``.npz`` archives."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import SerializationError
from repro.nn.module import Module


def save_state_dict(state: dict, path: str | Path) -> Path:
    """Write a mapping of names to arrays as a compressed ``.npz`` file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **{k: np.asarray(v) for k, v in state.items()})
    # ``np.savez`` appends .npz when missing; normalise the returned path.
    if not path.name.endswith(".npz"):
        path = path.with_name(path.name + ".npz")
    return path


def load_state_dict(path: str | Path) -> dict:
    """Read a state dict previously written by :func:`save_state_dict`."""
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"no state dict at {path}")
    with np.load(path) as archive:
        return {key: archive[key].copy() for key in archive.files}


def save_module(module: Module, path: str | Path) -> Path:
    """Persist a module's parameters and buffers."""
    return save_state_dict(module.state_dict(), path)


def load_module(module: Module, path: str | Path, strict: bool = True) -> Module:
    """Restore a module's parameters and buffers in place."""
    module.load_state_dict(load_state_dict(path), strict=strict)
    return module
