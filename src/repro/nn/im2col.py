"""Window extraction (im2col) and its adjoint (col2im) for convolutions.

Convolution and pooling are implemented by lowering the input into a window
tensor of shape ``(N, C, KH, KW, OH, OW)`` using stride tricks, turning the
convolution itself into a batched matrix multiply.  ``col2im`` is the exact
adjoint used by the backward pass: it scatters window gradients back into the
(padded) input, correctly accumulating where windows overlap.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.errors import ShapeError


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a conv/pool with the given geometry."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"non-positive output size for input={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def pad_nchw(x: np.ndarray, padding: tuple[int, int]) -> np.ndarray:
    """Zero-pad the two trailing spatial dims of an NCHW array."""
    ph, pw = padding
    if ph == 0 and pw == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))


def extract_windows(
    x: np.ndarray,
    kernel: tuple[int, int],
    stride: tuple[int, int],
    padding: tuple[int, int],
) -> np.ndarray:
    """Return a strided view of all sliding windows.

    Args:
        x: Input array of shape ``(N, C, H, W)``.
        kernel: ``(KH, KW)`` window size.
        stride: ``(SH, SW)`` window step.
        padding: ``(PH, PW)`` zero padding applied first.

    Returns:
        A **read-only view** of shape ``(N, C, KH, KW, OH, OW)``.  Callers
        must copy (e.g. via ``reshape``) before mutating.
    """
    if x.ndim != 4:
        raise ShapeError(f"expected NCHW input, got shape {x.shape}")
    kh, kw = kernel
    sh, sw = stride
    xp = pad_nchw(x, padding)
    n, c, h, w = xp.shape
    oh = conv_output_size(x.shape[2], kh, sh, padding[0])
    ow = conv_output_size(x.shape[3], kw, sw, padding[1])
    sn, sc, sy, sx = xp.strides
    shape = (n, c, kh, kw, oh, ow)
    strides = (sn, sc, sy, sx, sy * sh, sx * sw)
    return as_strided(xp, shape=shape, strides=strides, writeable=False)


def fold_windows(
    window_grads: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel: tuple[int, int],
    stride: tuple[int, int],
    padding: tuple[int, int],
) -> np.ndarray:
    """Adjoint of :func:`extract_windows` (a.k.a. ``col2im``).

    Args:
        window_grads: Gradient w.r.t. the window tensor,
            shape ``(N, C, KH, KW, OH, OW)``.
        input_shape: Shape of the original (unpadded) input.
        kernel / stride / padding: Same geometry as the forward call.

    Returns:
        Gradient w.r.t. the original input, shape ``input_shape``.
    """
    n, c, h, w = input_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    oh, ow = window_grads.shape[4], window_grads.shape[5]
    padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=window_grads.dtype)
    for i in range(kh):
        for j in range(kw):
            padded[:, :, i : i + sh * oh : sh, j : j + sw * ow : sw] += window_grads[
                :, :, i, j, :, :
            ]
    if ph == 0 and pw == 0:
        return padded
    return padded[:, :, ph : ph + h, pw : pw + w]


def _pair(value: int | tuple[int, int]) -> tuple[int, int]:
    """Normalise an int-or-pair geometry argument."""
    if isinstance(value, int):
        return (value, value)
    pair = tuple(int(v) for v in value)
    if len(pair) != 2:
        raise ShapeError(f"expected an int or a pair, got {value!r}")
    return pair
