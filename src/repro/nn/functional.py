"""Differentiable neural-network operations on :class:`~repro.nn.tensor.Tensor`.

These are the NN-specific kernels built on top of the autograd engine:
convolution (via im2col), pooling, dropout, stable softmax / log-softmax,
cross entropy, and local response normalisation.  All functions record tape
entries so that gradients flow back to their inputs — in particular through
an additive noise tensor inserted between two halves of a split network,
which is the derivative Shredder's optimisation needs (paper eq. in §2.1).
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import ShapeError
from repro.nn.im2col import (
    _pair,
    conv_output_size,
    extract_windows,
    fold_windows,
)
from repro.nn.tensor import Tensor, as_tensor, is_grad_enabled

#: Elements per materialised im2col tile in the blocked conv2d weight
#: gradient (~8 MB of float32).  Above :data:`GRADW_WHOLE_BATCH_ELEMENTS`
#: the contraction walks the batch in tiles of
#: ``ceil(GRADW_TILE_ELEMENTS / (K * OH * OW))`` samples, bounding the
#: transient copy a whole-batch contraction would materialise at once.
GRADW_TILE_ELEMENTS = 1 << 21

#: Whole-batch window tensors up to this many elements (~16 MB float32)
#: contract in one BLAS-backed einsum — at small scale one big GEMM beats
#: tile accumulation; past it, bounded tiles win on memory always and on
#: time for the wide shallow layers that dominate backbone pre-training.
GRADW_WHOLE_BATCH_ELEMENTS = 4 << 20

#: Worker threads for the tiled weight-gradient contraction.  BLAS holds
#: the GIL released, so tiles genuinely overlap on multi-core hosts;
#: partial sums are reduced in tile order, and the einsum/tiled path
#: choice depends only on the batch geometry, keeping the result bitwise
#: independent of the thread count.
GRADW_THREADS_ENV_VAR = "REPRO_GRADW_THREADS"


def _conv2d_grad_w(
    x_data: np.ndarray,
    grad3: np.ndarray,
    kernel: tuple[int, int],
    stride: tuple[int, int],
    padding: tuple[int, int],
) -> np.ndarray:
    """Blocked ``grad_w`` contraction: ``sum_n g_n @ cols_n^T``.

    Args:
        x_data: ``(N, C_in, H, W)`` forward input.
        grad3: ``(N, C_out, OH*OW)`` output gradient.
        kernel / stride / padding: Conv geometry.

    Returns:
        ``(C_out, C_in*KH*KW)`` weight gradient (caller reshapes).

    Small batches contract in one BLAS einsum over the free strided window
    view.  Past :data:`GRADW_WHOLE_BATCH_ELEMENTS` the im2col panel is
    instead copied tile-by-tile into a bounded buffer for one
    ``tensordot`` each — peak transient memory is
    :data:`GRADW_TILE_ELEMENTS` floats instead of the whole batch's
    windows.  Set ``REPRO_GRADW_THREADS`` to contract tiles concurrently;
    the per-tile partials are accumulated in ascending tile order either
    way, so results are bitwise independent of the thread count.
    """
    n = len(x_data)
    kh, kw = kernel
    c_in = x_data.shape[1]
    m = grad3.shape[2]
    per_sample = c_in * kh * kw * m
    # The path choice depends only on the geometry — never on the thread
    # count — so gradients are bitwise identical for any REPRO_GRADW_THREADS.
    if n * per_sample <= GRADW_WHOLE_BATCH_ELEMENTS:
        windows = extract_windows(x_data, kernel, stride, padding)
        grad4 = grad3.reshape(n, grad3.shape[1], windows.shape[4], windows.shape[5])
        grad_w = np.einsum("nopq,ncijpq->ocij", grad4, windows, optimize=True)
        return grad_w.reshape(grad3.shape[1], c_in * kh * kw)
    tile = max(1, GRADW_TILE_ELEMENTS // max(1, per_sample))
    threads = int(os.environ.get(GRADW_THREADS_ENV_VAR, "1") or "1")

    def contract(start: int) -> np.ndarray:
        windows = extract_windows(
            x_data[start : start + tile], kernel, stride, padding
        )
        nt = windows.shape[0]
        cols = windows.reshape(nt, c_in * kh * kw, m)  # copies the view
        return np.tensordot(
            grad3[start : start + tile], cols, axes=([0, 2], [0, 2])
        )

    starts = range(0, n, tile)
    if threads > 1 and len(starts) > 1:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=threads) as pool:
            partials = list(pool.map(contract, starts))
    else:
        partials = [contract(start) for start in starts]
    grad_w = partials[0]
    for partial in partials[1:]:
        grad_w += partial
    return grad_w


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ weight.T + bias``.

    Fused into one tape node (the composed transpose/matmul/add chain costs
    three nodes per call, which dominates small-layer forward passes).

    Args:
        x: ``(N, in_features)`` input.
        weight: ``(out_features, in_features)`` weight matrix.
        bias: Optional ``(out_features,)`` bias.
    """
    if x.ndim != 2:
        raise ShapeError(f"linear expects (N, in_features) input, got {x.shape}")
    out_data = x.data @ weight.data.T
    if bias is not None:
        out_data += bias.data

    parents = (x, weight) + ((bias,) if bias is not None else ())

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x.accumulate_grad(grad @ weight.data)
        if weight.requires_grad:
            weight.accumulate_grad(grad.T @ x.data)
        if bias is not None and bias.requires_grad:
            bias.accumulate_grad(grad.sum(axis=0))

    return Tensor._make(out_data, parents, backward)


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int | tuple[int, int] = 1,
    padding: int | tuple[int, int] = 0,
) -> Tensor:
    """2-D cross-correlation over an NCHW input.

    Args:
        x: ``(N, C_in, H, W)`` input tensor.
        weight: ``(C_out, C_in, KH, KW)`` filter bank.
        bias: Optional ``(C_out,)`` bias.
        stride / padding: Geometry (int or pair).

    Returns:
        ``(N, C_out, OH, OW)`` output tensor.
    """
    stride = _pair(stride)
    padding = _pair(padding)
    n, c_in, h, w = x.shape
    c_out, c_w, kh, kw = weight.shape
    if c_w != c_in:
        raise ShapeError(
            f"conv2d channel mismatch: input has {c_in}, weight expects {c_w}"
        )
    oh = conv_output_size(h, kh, stride[0], padding[0])
    ow = conv_output_size(w, kw, stride[1], padding[1])

    windows = extract_windows(x.data, (kh, kw), stride, padding)
    # (N, C*KH*KW, OH*OW) columns; reshape copies the strided view.
    cols = windows.reshape(n, c_in * kh * kw, oh * ow)
    w_mat = weight.data.reshape(c_out, c_in * kh * kw)
    out_data = np.matmul(w_mat, cols).reshape(n, c_out, oh, ow)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, c_out, 1, 1)

    parents = [x, weight] + ([bias] if bias is not None else [])
    # The im2col matrix is deliberately NOT captured by the closure: keeping
    # one (N, C*KH*KW, OH*OW) copy per conv alive for the life of the tape
    # dominates peak training memory.  The backward pass re-derives the
    # windows as a free strided view of x.data and contracts it directly.
    del cols, windows

    def backward(grad: np.ndarray) -> None:
        g = grad.reshape(n, c_out, oh * ow)
        if weight.requires_grad:
            grad_w = _conv2d_grad_w(x.data, g, (kh, kw), stride, padding)
            weight.accumulate_grad(grad_w.reshape(c_out, c_in, kh, kw))
        if bias is not None and bias.requires_grad:
            bias.accumulate_grad(grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            grad_cols = np.matmul(w_mat.T, g)  # (N, C*KH*KW, OH*OW)
            grad_windows = grad_cols.reshape(n, c_in, kh, kw, oh, ow)
            x.accumulate_grad(
                fold_windows(grad_windows, x.shape, (kh, kw), stride, padding)
            )

    return Tensor._make(out_data, parents, backward)


def max_pool2d(
    x: Tensor,
    kernel: int | tuple[int, int],
    stride: int | tuple[int, int] | None = None,
    padding: int | tuple[int, int] = 0,
) -> Tensor:
    """Max pooling over NCHW input; gradient routes to the (first) argmax."""
    kernel = _pair(kernel)
    stride = kernel if stride is None else _pair(stride)
    padding = _pair(padding)
    n, c, h, w = x.shape
    kh, kw = kernel
    windows = extract_windows(x.data, kernel, stride, padding)
    oh, ow = windows.shape[4], windows.shape[5]
    flat = windows.reshape(n, c, kh * kw, oh, ow)
    idx = flat.argmax(axis=2)
    out_data = np.take_along_axis(flat, idx[:, :, None, :, :], axis=2)[:, :, 0, :, :]

    def backward(grad: np.ndarray) -> None:
        grad_flat = np.zeros((n, c, kh * kw, oh, ow), dtype=grad.dtype)
        np.put_along_axis(grad_flat, idx[:, :, None, :, :], grad[:, :, None, :, :], axis=2)
        grad_windows = grad_flat.reshape(n, c, kh, kw, oh, ow)
        x.accumulate_grad(fold_windows(grad_windows, x.shape, kernel, stride, padding))

    return Tensor._make(out_data, (x,), backward)


def avg_pool2d(
    x: Tensor,
    kernel: int | tuple[int, int],
    stride: int | tuple[int, int] | None = None,
    padding: int | tuple[int, int] = 0,
) -> Tensor:
    """Average pooling over NCHW input."""
    kernel = _pair(kernel)
    stride = kernel if stride is None else _pair(stride)
    padding = _pair(padding)
    n, c, h, w = x.shape
    kh, kw = kernel
    windows = extract_windows(x.data, kernel, stride, padding)
    out_data = windows.mean(axis=(2, 3))
    oh, ow = out_data.shape[2], out_data.shape[3]
    scale = 1.0 / (kh * kw)

    def backward(grad: np.ndarray) -> None:
        tiled = np.broadcast_to(
            grad[:, :, None, None, :, :] * scale, (n, c, kh, kw, oh, ow)
        ).astype(grad.dtype)
        x.accumulate_grad(fold_windows(tiled, x.shape, kernel, stride, padding))

    return Tensor._make(np.ascontiguousarray(out_data), (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between logits and integer class labels.

    This is the first term of Shredder's loss (paper eq. 2 and 3).  The
    backward pass uses the fused ``(softmax - onehot) / N`` form for
    stability and speed.

    Args:
        logits: ``(N, M)`` unnormalised scores.
        targets: ``(N,)`` integer labels in ``[0, M)``.
    """
    targets = np.asarray(targets)
    if logits.ndim != 2:
        raise ShapeError(f"cross_entropy expects (N, M) logits, got {logits.shape}")
    if targets.shape != (logits.shape[0],):
        raise ShapeError(
            f"targets shape {targets.shape} does not match batch {logits.shape[0]}"
        )
    n = logits.shape[0]
    z = logits.data - logits.data.max(axis=1, keepdims=True)
    log_probs = z - np.log(np.exp(z).sum(axis=1, keepdims=True))
    losses = -log_probs[np.arange(n), targets]
    out_data = np.asarray(losses.mean(), dtype=logits.data.dtype)

    def backward(grad: np.ndarray) -> None:
        probs = np.exp(log_probs)
        probs[np.arange(n), targets] -= 1.0
        logits.accumulate_grad(grad * probs / n)

    return Tensor._make(out_data, (logits,), backward)


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log likelihood given log-probabilities."""
    targets = np.asarray(targets)
    n = log_probs.shape[0]
    picked = log_probs[np.arange(n), targets]
    return -picked.sum() * (1.0 / n)


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error between two tensors of identical shape."""
    target = as_tensor(target)
    if prediction.shape != target.shape:
        raise ShapeError(
            f"mse_loss shape mismatch: {prediction.shape} vs {target.shape}"
        )
    diff = prediction - target.detach()
    return (diff * diff).mean()


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: zero with probability ``p``, scale kept by 1/(1-p)."""
    if not 0.0 <= p < 1.0:
        raise ShapeError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    mask = (rng.random(x.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    return x * Tensor(mask)


def local_response_norm(
    x: Tensor, size: int = 5, alpha: float = 1e-4, beta: float = 0.75, k: float = 2.0
) -> Tensor:
    """AlexNet-style local response normalisation across channels.

    ``b_c = a_c / (k + alpha/size * sum_{c'} a_{c'}^2) ** beta`` with the sum
    over a window of ``size`` channels centred at ``c``.  Implemented with
    differentiable primitives (square, pad, slice, power) so the backward
    pass comes from the tape rather than a hand-derived formula.
    """
    if x.ndim != 4:
        raise ShapeError(f"local_response_norm expects NCHW input, got {x.shape}")
    n, c, h, w = x.shape
    squared = x.square()
    half = size // 2
    # Sum the channel window by accumulating shifted slices of the padded
    # squared activations; each slice is a differentiable __getitem__.
    padded = _pad_channels(squared, half, size - 1 - half)
    window = padded[:, 0:c, :, :]
    for offset in range(1, size):
        window = window + padded[:, offset : offset + c, :, :]
    denom = (window * (alpha / size) + k) ** (-beta)
    return x * denom


def _pad_channels(x: Tensor, before: int, after: int) -> Tensor:
    """Zero-pad the channel dimension of an NCHW tensor (differentiable)."""
    if before == 0 and after == 0:
        return x
    n, c, h, w = x.shape
    pads = ((0, 0), (before, after), (0, 0), (0, 0))
    out_data = np.pad(x.data, pads)

    def backward(grad: np.ndarray) -> None:
        x.accumulate_grad(grad[:, before : before + c, :, :])

    return Tensor._make(out_data, (x,), backward)


def batch_norm2d(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalisation over the channel dimension of an NCHW tensor.

    When ``training`` the batch statistics are used (and running statistics
    updated in place); otherwise the running statistics are used.
    """
    if x.ndim != 4:
        raise ShapeError(f"batch_norm2d expects NCHW input, got {x.shape}")
    c = x.shape[1]
    axes = (0, 2, 3)
    if training:
        mean = x.mean(axis=axes, keepdims=True)
        var = x.var(axis=axes, keepdims=True)
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean.data.reshape(c)
        running_var *= 1.0 - momentum
        running_var += momentum * var.data.reshape(c)
        x_hat = (x - mean) / (var + eps).sqrt()
    else:
        mean_t = Tensor(running_mean.reshape(1, c, 1, 1))
        var_t = Tensor(running_var.reshape(1, c, 1, 1))
        x_hat = (x - mean_t) / (var_t + eps).sqrt()
    return x_hat * gamma.reshape(1, c, 1, 1) + beta.reshape(1, c, 1, 1)
