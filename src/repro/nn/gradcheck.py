"""Numerical gradient verification for modules and tensor functions.

The autograd engine under everything in this reproduction is hand-written,
so a first-class way to verify gradients matters: the test suite uses it
on every layer, and anyone extending :mod:`repro.nn` with a new op can
check their backward pass in one call.

Central finite differences against the analytic backward pass:

>>> from repro.nn import Tensor
>>> from repro.nn.gradcheck import gradcheck
>>> x = Tensor([[1.0, -2.0]], requires_grad=True)
>>> gradcheck(lambda t: (t * t).sum(), x)
GradCheckResult(max_abs_error=..., max_rel_error=..., passed=True)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import GradientError
from repro.nn.tensor import Tensor


@dataclass(frozen=True)
class GradCheckResult:
    """Outcome of one gradient check.

    Attributes:
        max_abs_error: Largest |analytic − numeric| over all elements.
        max_rel_error: Largest relative error (guarded denominator).
        passed: Whether both errors fall under the tolerances used.
    """

    max_abs_error: float
    max_rel_error: float
    passed: bool


def numeric_gradient(
    f: Callable[[], Tensor], parameter: Tensor, eps: float = 1e-5
) -> np.ndarray:
    """Central-difference gradient of scalar ``f()`` w.r.t. ``parameter``.

    Mutates ``parameter.data`` element-by-element (restoring it), so ``f``
    must read the live tensor rather than a copy.
    """
    if eps <= 0:
        raise GradientError(f"eps must be positive, got {eps}")
    flat = parameter.data.reshape(-1)
    grad = np.zeros(flat.shape, dtype=np.float64)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        high = f().item()
        flat[index] = original - eps
        low = f().item()
        flat[index] = original
        grad[index] = (high - low) / (2.0 * eps)
    return grad.reshape(parameter.data.shape)


def analytic_gradient(f: Callable[[], Tensor], parameter: Tensor) -> np.ndarray:
    """Backward-pass gradient of scalar ``f()`` w.r.t. ``parameter``."""
    parameter.zero_grad()
    output = f()
    if output.data.size != 1:
        raise GradientError(
            f"gradcheck needs a scalar objective, got shape {output.data.shape}"
        )
    output.backward()
    if parameter.grad is None:
        raise GradientError(
            "no gradient reached the parameter — is requires_grad set and "
            "the parameter actually used by the objective?"
        )
    return np.array(parameter.grad, dtype=np.float64, copy=True)


def gradcheck(
    f: Callable[[Tensor], Tensor],
    parameter: Tensor,
    eps: float = 1e-5,
    atol: float = 1e-4,
    rtol: float = 1e-3,
) -> GradCheckResult:
    """Compare analytic and numeric gradients of ``f(parameter)``.

    Args:
        f: Maps the parameter tensor to a scalar objective.  Called many
            times; must be deterministic (fix any RNG inside).
        parameter: Tensor with ``requires_grad=True``.  float64 data gives
            the numeric side enough precision for the default tolerances.
        eps: Finite-difference step.
        atol / rtol: Absolute / relative tolerances for ``passed``.

    Raises:
        GradientError: If the objective is not scalar or no gradient
            arrives at the parameter.
    """
    if not parameter.requires_grad:
        raise GradientError("gradcheck parameter must have requires_grad=True")
    objective = lambda: f(parameter)  # noqa: E731 - tiny adapter
    analytic = analytic_gradient(objective, parameter)
    numeric = numeric_gradient(objective, parameter, eps=eps)
    abs_error = np.abs(analytic - numeric)
    denominator = np.maximum(np.abs(numeric), np.abs(analytic))
    rel_error = abs_error / np.maximum(denominator, 1e-8)
    max_abs = float(abs_error.max()) if abs_error.size else 0.0
    max_rel = float(rel_error.max()) if rel_error.size else 0.0
    # A tiny absolute error is fine even when the relative error is large
    # (both gradients ~0); require failure on both axes to fail.
    passed = bool(max_abs <= atol or max_rel <= rtol)
    return GradCheckResult(max_abs_error=max_abs, max_rel_error=max_rel, passed=passed)


def gradcheck_all(
    f: Callable[[], Tensor],
    parameters: Sequence[Tensor],
    eps: float = 1e-5,
    atol: float = 1e-4,
    rtol: float = 1e-3,
) -> dict[int, GradCheckResult]:
    """Gradient-check one objective against several parameters.

    Args:
        f: Zero-argument scalar objective reading all the parameters.
        parameters: Tensors to check, all with ``requires_grad=True``.

    Returns:
        Mapping from parameter position to its :class:`GradCheckResult`.
    """
    if not parameters:
        raise GradientError("gradcheck_all needs at least one parameter")
    results: dict[int, GradCheckResult] = {}
    for index, parameter in enumerate(parameters):
        analytic = analytic_gradient(f, parameter)
        numeric = numeric_gradient(f, parameter, eps=eps)
        abs_error = np.abs(analytic - numeric)
        denominator = np.maximum(np.abs(numeric), np.abs(analytic))
        rel_error = abs_error / np.maximum(denominator, 1e-8)
        max_abs = float(abs_error.max()) if abs_error.size else 0.0
        max_rel = float(rel_error.max()) if rel_error.size else 0.0
        results[index] = GradCheckResult(
            max_abs_error=max_abs,
            max_rel_error=max_rel,
            passed=bool(max_abs <= atol or max_rel <= rtol),
        )
    return results
