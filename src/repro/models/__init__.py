"""``repro.models`` — the four benchmark backbones, splittable at any conv.

LeNet (MNIST surrogate), CifarNet, SvhnNet (conv0..conv6), AlexNet
(ImageNet surrogate), plus training (:mod:`repro.models.train`) and a
pretrained cache (:mod:`repro.models.zoo`).
"""

from repro.models.alexnet import build_alexnet
from repro.models.base import CutPoint, SplittableModel
from repro.models.cifar_net import build_cifar_net
from repro.models.lenet import build_lenet
from repro.models.svhn_net import build_svhn_net
from repro.models.train import TrainHistory, evaluate_accuracy, fit
from repro.models.zoo import (
    MODEL_DATASETS,
    PretrainedBundle,
    build_model,
    default_width,
    get_pretrained,
    model_names,
)

__all__ = [
    "CutPoint",
    "MODEL_DATASETS",
    "PretrainedBundle",
    "SplittableModel",
    "TrainHistory",
    "build_alexnet",
    "build_cifar_net",
    "build_lenet",
    "build_model",
    "build_svhn_net",
    "default_width",
    "evaluate_accuracy",
    "fit",
    "get_pretrained",
    "model_names",
]
