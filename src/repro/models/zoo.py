"""Model zoo: build, pre-train (once), and cache the four backbones.

``get_pretrained(name, ...)`` is the entry point the eval harness uses.  The
first call trains the backbone on its surrogate dataset and stores the
weights under the cache directory; later calls (same name / scale / seed /
width) load the weights instead of retraining.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.config import Config, ExperimentScale, cache_dir, get_scale
from repro.datasets import SyntheticImageDataset, load_dataset, normalized_pair
from repro.errors import ModelError
from repro.models.alexnet import build_alexnet
from repro.models.base import SplittableModel
from repro.models.cifar_net import build_cifar_net
from repro.models.lenet import build_lenet
from repro.models.svhn_net import build_svhn_net
from repro.models.train import TrainHistory, evaluate_accuracy, fit
from repro.nn import TensorDataset
from repro.nn.serialization import load_state_dict, save_state_dict

_BUILDERS: dict[str, Callable[..., SplittableModel]] = {
    "lenet": build_lenet,
    "cifar": build_cifar_net,
    "svhn": build_svhn_net,
    "alexnet": build_alexnet,
}

#: Paper benchmark network -> dataset registry key.
MODEL_DATASETS = {
    "lenet": "mnist",
    "cifar": "cifar",
    "svhn": "svhn",
    "alexnet": "imagenet",
}

#: Default width multipliers keeping CPU pre-training tractable per scale.
_SCALE_WIDTHS = {"tiny": 0.5, "small": 0.5, "paper": 1.0}

#: Training hyper-parameters per backbone.
_TRAIN_LR = {"lenet": 2e-3, "cifar": 2e-3, "svhn": 2e-3, "alexnet": 1e-3}

#: Per-backbone epoch multipliers.  AlexNet's deeper stack (with dropout on
#: both FC layers) underfits badly at the shared epoch budget, which would
#: invert the accuracy-loss sign of every Shredder experiment on it — the
#: learned noise would act as a beneficial bias for an undertrained model.
_EPOCH_MULT = {"alexnet": 2.0}


def model_names() -> list[str]:
    """All registered backbone names."""
    return sorted(_BUILDERS)


def build_model(
    name: str, rng: np.random.Generator, width: float = 1.0
) -> SplittableModel:
    """Construct an untrained backbone by name."""
    key = name.strip().lower()
    if key not in _BUILDERS:
        raise ModelError(f"unknown model {name!r}; options: {model_names()}")
    num_classes = 20 if key == "alexnet" else 10
    return _BUILDERS[key](rng, width=width, num_classes=num_classes)


def default_width(scale: ExperimentScale) -> float:
    """The width multiplier used for a given experiment scale."""
    base = scale.name.split("*")[0]
    return _SCALE_WIDTHS.get(base, 1.0)


@dataclass
class PretrainedBundle:
    """Everything downstream experiments need about one backbone.

    Attributes:
        model: The trained, *frozen* backbone.
        dataset: The surrogate dataset it was trained on.
        train_set / test_set: Normalised splits (train statistics).
        mean / std: Normalisation constants (edge devices need these).
        test_accuracy: Clean accuracy of the frozen backbone.
        history: Training history (None when loaded from cache).
    """

    model: SplittableModel
    dataset: SyntheticImageDataset
    train_set: TensorDataset
    test_set: TensorDataset
    mean: np.ndarray
    std: np.ndarray
    test_accuracy: float
    history: TrainHistory | None


def train_epochs(name: str, scale: ExperimentScale) -> int:
    """Pre-training epochs for one backbone at one scale."""
    return max(1, int(round(scale.model_epochs * _EPOCH_MULT.get(name, 1.0))))


def _cache_path(
    name: str, scale: ExperimentScale, seed: int, width: float, epochs: int
) -> Path:
    base = scale.name.replace("*", "x")
    return cache_dir() / f"{name}-{base}-seed{seed}-w{width:g}-e{epochs}.npz"


def get_pretrained(
    name: str,
    config: Config | None = None,
    width: float | None = None,
    force_retrain: bool = False,
    verbose: bool = False,
) -> PretrainedBundle:
    """Return a trained backbone, training and caching it on first use.

    Args:
        name: ``lenet``, ``cifar``, ``svhn`` or ``alexnet``.
        config: Experiment configuration (seed + scale); defaults to the
            environment-selected scale.
        width: Channel width multiplier; defaults per scale.
        force_retrain: Ignore any cached weights.
        verbose: Print training progress.
    """
    config = config or Config(scale=get_scale())
    scale = config.scale
    if width is None:
        width = default_width(scale)
    key = name.strip().lower()
    dataset = load_dataset(MODEL_DATASETS[key], scale, seed=config.child_seed("data", key))
    train_set, test_set, mean, std = normalized_pair(dataset.train_set(), dataset.test_set())
    model = build_model(key, np.random.default_rng(config.child_seed("init", key)), width)

    epochs = train_epochs(key, scale)
    path = _cache_path(key, scale, config.seed, width, epochs)
    history: TrainHistory | None = None
    if path.exists() and not force_retrain:
        model.load_state_dict(load_state_dict(path))
    else:
        history = fit(
            model,
            train_set,
            test_set,
            epochs=epochs,
            batch_size=scale.batch_size,
            rng=np.random.default_rng(config.child_seed("shuffle", key)),
            lr=_TRAIN_LR[key],
            verbose=verbose,
        )
        save_state_dict(model.state_dict(), path)
    model.eval()
    model.freeze()
    accuracy = evaluate_accuracy(model, test_set, batch_size=scale.batch_size)
    return PretrainedBundle(
        model=model,
        dataset=dataset,
        train_set=train_set,
        test_set=test_set,
        mean=mean,
        std=std,
        test_accuracy=accuracy,
        history=history,
    )
