"""Splittable model base class.

Shredder partitions a pre-trained network at a *cutting point* ``layer_c``:
layers ``[0 .. layer_c]`` run on the edge (the *local* network ``L(x, θ₁)``)
and the rest run on the cloud (the *remote* network ``R(a', θ₂)``) — paper
§2.1.  :class:`SplittableModel` represents the backbone as one flat named
:class:`~repro.nn.layers.container.Sequential` and records, for every conv
layer, the index where that conv *block* (conv + nonlinearity + pooling /
normalisation) ends.  Splitting at a cut shares the underlying modules, so
no weights are copied and the composition is exactly the original network.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.nn import Sequential, Tensor, no_grad
from repro.nn.module import Module


@dataclass(frozen=True)
class CutPoint:
    """A named position at which the network can be split.

    Attributes:
        name: Cut name, e.g. ``"conv2"``.
        conv_index: Ordinal of the conv layer (0-based), as used by the
            paper's figures ("Conv Layer 0, 2, 4, 6").
        end_index: Index (inclusive) of the last Sequential layer belonging
            to this conv block; the local network is ``layers[: end_index+1]``.
    """

    name: str
    conv_index: int
    end_index: int


class SplittableModel(Module):
    """A classifier backbone with named conv cut points.

    Args:
        name: Model name (``lenet``, ``cifar``, ``svhn``, ``alexnet``).
        net: Flat named Sequential containing the whole network.
        cut_points: Orderered cut points (shallow to deep).
        input_shape: CHW input shape the model expects.
        num_classes: Output classes.
    """

    def __init__(
        self,
        name: str,
        net: Sequential,
        cut_points: list[CutPoint],
        input_shape: tuple[int, int, int],
        num_classes: int,
    ) -> None:
        super().__init__()
        if not cut_points:
            raise ModelError("a splittable model needs at least one cut point")
        self.model_name = name
        self.net = net
        self.input_shape = input_shape
        self.num_classes = num_classes
        self._cuts = {cp.name: cp for cp in cut_points}
        self._cut_order = [cp.name for cp in cut_points]

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)

    # ------------------------------------------------------------------
    # Cut points
    # ------------------------------------------------------------------
    def cut_names(self) -> list[str]:
        """Cut names from shallowest to deepest conv."""
        return list(self._cut_order)

    def cut_point(self, name: str) -> CutPoint:
        """Look up a cut point by name."""
        if name not in self._cuts:
            raise ModelError(
                f"{self.model_name} has no cut point {name!r}; "
                f"available: {self._cut_order}"
            )
        return self._cuts[name]

    def last_conv_cut(self) -> str:
        """The deepest conv cut — the paper's default cutting point."""
        return self._cut_order[-1]

    def split(self, cut: str) -> tuple[Sequential, Sequential]:
        """Split into (local, remote) networks sharing this model's weights.

        The local network computes the activation ``a = L(x, θ₁)`` on the
        edge; the remote network computes ``R(a', θ₂)`` on the cloud.
        """
        point = self.cut_point(cut)
        total = len(self.net)
        local = self.net.slice(0, point.end_index + 1)
        remote = self.net.slice(point.end_index + 1, total)
        return local, remote

    def activation_shape(self, cut: str, batch: int = 1) -> tuple[int, ...]:
        """Shape of the activation communicated at ``cut`` (via a dry run)."""
        local, _ = self.split(cut)
        probe = Tensor(np.zeros((batch, *self.input_shape), dtype=np.float32))
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                out = local(probe)
        finally:
            self.train(was_training)
        return out.shape

    def __repr__(self) -> str:
        return (
            f"SplittableModel({self.model_name}, cuts={self._cut_order}, "
            f"classes={self.num_classes})"
        )


class _BlockBuilder:
    """Accumulates named layers and conv cut points for a model definition."""

    def __init__(self) -> None:
        self.layers: list[tuple[str, Module]] = []
        self.cut_points: list[CutPoint] = []
        self._conv_count = 0

    def add(self, name: str, module: Module) -> None:
        """Append a plain (non-cut) layer."""
        self.layers.append((name, module))

    def end_conv_block(self) -> None:
        """Mark the end of the current conv block as a cut point."""
        index = len(self.layers) - 1
        name = f"conv{self._conv_count}"
        self.cut_points.append(
            CutPoint(name=name, conv_index=self._conv_count, end_index=index)
        )
        self._conv_count += 1

    def build(
        self,
        model_name: str,
        input_shape: tuple[int, int, int],
        num_classes: int,
    ) -> SplittableModel:
        return SplittableModel(
            name=model_name,
            net=Sequential(*self.layers),
            cut_points=self.cut_points,
            input_shape=input_shape,
            num_classes=num_classes,
        )
