"""Backbone pre-training.

Shredder assumes a *pre-trained* network whose weights it never touches.
This module provides the standard supervised training loop used to produce
those backbones on the synthetic datasets, plus accuracy evaluation used
throughout the eval harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TrainingError
from repro.nn import (
    SGD,
    Adam,
    CrossEntropyLoss,
    DataLoader,
    Dataset,
    Tensor,
    no_grad,
)
from repro.nn.module import Module


@dataclass
class TrainHistory:
    """Per-epoch training diagnostics."""

    losses: list[float] = field(default_factory=list)
    train_accuracies: list[float] = field(default_factory=list)
    test_accuracies: list[float] = field(default_factory=list)

    @property
    def final_test_accuracy(self) -> float:
        if not self.test_accuracies:
            raise TrainingError("no epochs were run")
        return self.test_accuracies[-1]


def evaluate_accuracy(model: Module, dataset: Dataset, batch_size: int = 128) -> float:
    """Top-1 accuracy of ``model`` on ``dataset`` (eval mode, no grads)."""
    was_training = model.training
    model.eval()
    correct = 0
    total = 0
    try:
        loader = DataLoader(dataset, batch_size=batch_size)
        with no_grad():
            for images, labels in loader:
                logits = model(Tensor(images))
                correct += int((logits.argmax(axis=1) == labels).sum())
                total += len(labels)
    finally:
        model.train(was_training)
    if total == 0:
        raise TrainingError("cannot evaluate accuracy on an empty dataset")
    return correct / total


def fit(
    model: Module,
    train_set: Dataset,
    test_set: Dataset,
    epochs: int,
    batch_size: int,
    rng: np.random.Generator,
    lr: float = 1e-3,
    optimizer: str = "adam",
    weight_decay: float = 0.0,
    verbose: bool = False,
) -> TrainHistory:
    """Standard supervised training with cross entropy.

    Args:
        model: The backbone to train (all parameters updated).
        train_set / test_set: Data splits.
        epochs: Full passes over the training set.
        batch_size: Mini-batch size.
        rng: Shuffling randomness.
        lr: Learning rate.
        optimizer: ``"adam"`` or ``"sgd"``.
        weight_decay: L2 regularisation strength.
        verbose: Print one line per epoch.

    Returns:
        A :class:`TrainHistory` with per-epoch loss and accuracies.
    """
    if optimizer == "adam":
        opt = Adam(model.parameters(), lr=lr, weight_decay=weight_decay)
    elif optimizer == "sgd":
        opt = SGD(model.parameters(), lr=lr, momentum=0.9, weight_decay=weight_decay)
    else:
        raise TrainingError(f"unknown optimizer {optimizer!r}")
    criterion = CrossEntropyLoss()
    loader = DataLoader(train_set, batch_size=batch_size, shuffle=True, rng=rng)
    history = TrainHistory()
    # Step decay stabilises the tail of training (Adam on small synthetic
    # sets otherwise oscillates once close to convergence).
    decay_at = max(1, int(epochs * 0.7))
    model.train()
    for epoch in range(epochs):
        if epoch == decay_at:
            opt.lr = lr * 0.3
        epoch_loss = 0.0
        batches = 0
        for images, labels in loader:
            logits = model(Tensor(images))
            loss = criterion(logits, labels)
            opt.zero_grad()
            loss.backward()
            opt.step()
            epoch_loss += loss.item()
            batches += 1
        mean_loss = epoch_loss / max(batches, 1)
        if not np.isfinite(mean_loss):
            raise TrainingError(f"training diverged at epoch {epoch} (loss={mean_loss})")
        history.losses.append(mean_loss)
        history.train_accuracies.append(evaluate_accuracy(model, train_set, batch_size))
        history.test_accuracies.append(evaluate_accuracy(model, test_set, batch_size))
        model.train()
        if verbose:
            print(
                f"epoch {epoch + 1}/{epochs}: loss={mean_loss:.4f} "
                f"train_acc={history.train_accuracies[-1]:.3f} "
                f"test_acc={history.test_accuracies[-1]:.3f}"
            )
    return history
