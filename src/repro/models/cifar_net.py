"""CIFAR-10 network for the object surrogate (paper benchmark 2).

A compact VGG-style network with batch normalisation; five conv blocks
(``conv0``..``conv4``) with the paper's cut at the last one.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import SplittableModel, _BlockBuilder
from repro.nn import BatchNorm2d, Conv2d, Dropout, Flatten, Linear, MaxPool2d, ReLU


def build_cifar_net(
    rng: np.random.Generator, width: float = 1.0, num_classes: int = 10
) -> SplittableModel:
    """Construct the CIFAR network (3x32x32 input)."""
    c1 = max(4, int(round(32 * width)))
    c2 = max(4, int(round(32 * width)))
    c3 = max(8, int(round(64 * width)))
    c4 = max(8, int(round(64 * width)))
    c5 = max(8, int(round(128 * width)))
    hidden = max(16, int(round(256 * width)))

    b = _BlockBuilder()
    b.add("conv0", Conv2d(3, c1, 3, padding=1, rng=rng))
    b.add("bn0", BatchNorm2d(c1))
    b.add("relu0", ReLU())  # -> c1 x 32 x 32
    b.end_conv_block()
    b.add("conv1", Conv2d(c1, c2, 3, padding=1, rng=rng))
    b.add("bn1", BatchNorm2d(c2))
    b.add("relu1", ReLU())
    b.add("pool1", MaxPool2d(2))  # -> c2 x 16 x 16
    b.end_conv_block()
    b.add("conv2", Conv2d(c2, c3, 3, padding=1, rng=rng))
    b.add("bn2", BatchNorm2d(c3))
    b.add("relu2", ReLU())  # -> c3 x 16 x 16
    b.end_conv_block()
    b.add("conv3", Conv2d(c3, c4, 3, padding=1, rng=rng))
    b.add("bn3", BatchNorm2d(c4))
    b.add("relu3", ReLU())
    b.add("pool3", MaxPool2d(2))  # -> c4 x 8 x 8
    b.end_conv_block()
    b.add("conv4", Conv2d(c4, c5, 3, padding=1, rng=rng))
    b.add("bn4", BatchNorm2d(c5))
    b.add("relu4", ReLU())
    b.add("pool4", MaxPool2d(2))  # -> c5 x 4 x 4
    b.end_conv_block()
    b.add("flatten", Flatten())
    b.add("fc0", Linear(c5 * 4 * 4, hidden, rng=rng))
    b.add("relu_fc0", ReLU())
    b.add("drop_fc0", Dropout(0.3, rng=rng))
    b.add("head", Linear(hidden, num_classes, rng=rng))
    return b.build("cifar", (3, 32, 32), num_classes)
