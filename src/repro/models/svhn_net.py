"""SVHN network for the street-number surrogate (paper benchmark 3).

Seven conv blocks ``conv0``..``conv6`` so the layer-wise experiments can
probe Conv Layers 0, 2, 4, 6 exactly as in the paper's Figures 5a and 6a.
``conv6`` is a 1x1 bottleneck whose output is *significantly smaller* than
the preceding layers — the property §3.4 uses to argue it is the obvious
cutting point (it slashes communication cost).
"""

from __future__ import annotations

import numpy as np

from repro.models.base import SplittableModel, _BlockBuilder
from repro.nn import BatchNorm2d, Conv2d, Flatten, Linear, MaxPool2d, ReLU


def build_svhn_net(
    rng: np.random.Generator, width: float = 1.0, num_classes: int = 10
) -> SplittableModel:
    """Construct the SVHN network (3x32x32 input)."""
    c0 = max(4, int(round(24 * width)))
    c2 = max(8, int(round(48 * width)))
    c4 = max(8, int(round(64 * width)))
    c6 = max(4, int(round(32 * width)))
    hidden = max(16, int(round(128 * width)))

    b = _BlockBuilder()
    b.add("conv0", Conv2d(3, c0, 3, padding=1, rng=rng))
    b.add("bn0", BatchNorm2d(c0))
    b.add("relu0", ReLU())  # -> c0 x 32 x 32
    b.end_conv_block()
    b.add("conv1", Conv2d(c0, c0, 3, padding=1, rng=rng))
    b.add("bn1", BatchNorm2d(c0))
    b.add("relu1", ReLU())
    b.add("pool1", MaxPool2d(2))  # -> c0 x 16 x 16
    b.end_conv_block()
    b.add("conv2", Conv2d(c0, c2, 3, padding=1, rng=rng))
    b.add("bn2", BatchNorm2d(c2))
    b.add("relu2", ReLU())  # -> c2 x 16 x 16
    b.end_conv_block()
    b.add("conv3", Conv2d(c2, c2, 3, padding=1, rng=rng))
    b.add("bn3", BatchNorm2d(c2))
    b.add("relu3", ReLU())
    b.add("pool3", MaxPool2d(2))  # -> c2 x 8 x 8
    b.end_conv_block()
    b.add("conv4", Conv2d(c2, c4, 3, padding=1, rng=rng))
    b.add("bn4", BatchNorm2d(c4))
    b.add("relu4", ReLU())  # -> c4 x 8 x 8
    b.end_conv_block()
    b.add("conv5", Conv2d(c4, c4, 3, padding=1, rng=rng))
    b.add("bn5", BatchNorm2d(c4))
    b.add("relu5", ReLU())
    b.add("pool5", MaxPool2d(2))  # -> c4 x 4 x 4
    b.end_conv_block()
    b.add("conv6", Conv2d(c4, c6, 1, rng=rng))
    b.add("bn6", BatchNorm2d(c6))
    b.add("relu6", ReLU())  # -> c6 x 4 x 4 (small bottleneck output)
    b.end_conv_block()
    b.add("flatten", Flatten())
    b.add("fc0", Linear(c6 * 4 * 4, hidden, rng=rng))
    b.add("relu_fc0", ReLU())
    b.add("head", Linear(hidden, num_classes, rng=rng))
    return b.build("svhn", (3, 32, 32), num_classes)
