"""AlexNet for the ImageNet surrogate (paper benchmark 4).

The classic five-conv AlexNet topology — including local response
normalisation after the first two convs — scaled to the 64x64 surrogate
input.  The paper cuts AlexNet at its last convolution (``conv4`` here),
i.e. the boundary between the ``features`` and ``classifier`` sections.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import SplittableModel, _BlockBuilder
from repro.nn import (
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    LocalResponseNorm,
    MaxPool2d,
    ReLU,
)


def build_alexnet(
    rng: np.random.Generator, width: float = 1.0, num_classes: int = 20
) -> SplittableModel:
    """Construct AlexNet (3x64x64 input)."""
    c0 = max(4, int(round(48 * width)))
    c1 = max(8, int(round(128 * width)))
    c2 = max(8, int(round(192 * width)))
    c3 = max(8, int(round(192 * width)))
    c4 = max(8, int(round(128 * width)))
    h0 = max(16, int(round(512 * width)))
    h1 = max(16, int(round(256 * width)))

    b = _BlockBuilder()
    b.add("conv0", Conv2d(3, c0, 7, stride=2, padding=3, rng=rng))
    b.add("relu0", ReLU())
    b.add("lrn0", LocalResponseNorm(size=5))
    b.add("pool0", MaxPool2d(3, 2))  # -> c0 x 15 x 15
    b.end_conv_block()
    b.add("conv1", Conv2d(c0, c1, 5, padding=2, rng=rng))
    b.add("relu1", ReLU())
    b.add("lrn1", LocalResponseNorm(size=5))
    b.add("pool1", MaxPool2d(3, 2))  # -> c1 x 7 x 7
    b.end_conv_block()
    b.add("conv2", Conv2d(c1, c2, 3, padding=1, rng=rng))
    b.add("relu2", ReLU())  # -> c2 x 7 x 7
    b.end_conv_block()
    b.add("conv3", Conv2d(c2, c3, 3, padding=1, rng=rng))
    b.add("relu3", ReLU())  # -> c3 x 7 x 7
    b.end_conv_block()
    b.add("conv4", Conv2d(c3, c4, 3, padding=1, rng=rng))
    b.add("relu4", ReLU())
    b.add("pool4", MaxPool2d(3, 2))  # -> c4 x 3 x 3
    b.end_conv_block()
    b.add("flatten", Flatten())
    b.add("drop0", Dropout(0.5, rng=rng))
    b.add("fc0", Linear(c4 * 3 * 3, h0, rng=rng))
    b.add("relu_fc0", ReLU())
    b.add("drop1", Dropout(0.5, rng=rng))
    b.add("fc1", Linear(h0, h1, rng=rng))
    b.add("relu_fc1", ReLU())
    b.add("head", Linear(h1, num_classes, rng=rng))
    return b.build("alexnet", (3, 64, 64), num_classes)
