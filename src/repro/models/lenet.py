"""LeNet for the MNIST surrogate (paper benchmark 1).

Three conv blocks (``conv0``..``conv2``) matching the cut points of the
paper's Figures 5b and 6b, where LeNet exposes Conv Layers 0, 1, 2 and
Shredder's chosen cut is ``conv2`` — the last convolution, whose output is
the "features" section boundary.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import SplittableModel, _BlockBuilder
from repro.nn import Conv2d, Flatten, Linear, MaxPool2d, ReLU


def build_lenet(
    rng: np.random.Generator, width: float = 1.0, num_classes: int = 10
) -> SplittableModel:
    """Construct LeNet (1x28x28 input).

    Args:
        rng: Weight-initialisation randomness.
        width: Channel width multiplier (tests use < 1 for speed).
        num_classes: Output classes.
    """
    c1 = max(2, int(round(6 * width)))
    c2 = max(4, int(round(16 * width)))
    c3 = max(8, int(round(120 * width)))
    hidden = max(8, int(round(84 * width)))

    b = _BlockBuilder()
    b.add("conv0", Conv2d(1, c1, 5, padding=2, rng=rng))
    b.add("relu0", ReLU())
    b.add("pool0", MaxPool2d(2))  # -> c1 x 14 x 14
    b.end_conv_block()
    b.add("conv1", Conv2d(c1, c2, 5, rng=rng))
    b.add("relu1", ReLU())
    b.add("pool1", MaxPool2d(2))  # -> c2 x 5 x 5
    b.end_conv_block()
    b.add("conv2", Conv2d(c2, c3, 5, rng=rng))
    b.add("relu2", ReLU())  # -> c3 x 1 x 1 (the C5 layer)
    b.end_conv_block()
    b.add("flatten", Flatten())
    b.add("fc0", Linear(c3, hidden, rng=rng))
    b.add("relu_fc0", ReLU())
    b.add("head", Linear(hidden, num_classes, rng=rng))
    return b.build("lenet", (1, 28, 28), num_classes)
