"""Deadline-aware batching-window policy.

PR 2's :class:`~repro.serve.queue.MicroBatcher` is greedy: it drains
whatever is pending the moment it is asked.  That maximises occupancy only
when the caller already holds a backlog; under a live arrival process a
serving engine must decide *when to stop waiting for more requests*, and
that decision is the latency/throughput trade-off the ROADMAP names
("deadline-aware batching windows").

:class:`AdaptiveBatcher` closes the current window at::

    min(earliest deadline - service estimate,   # SLO slack (deadline-aware)
        head arrival + batch_timeout)           # bounded wait for everyone

or immediately when ``batch_window`` requests are pending (or on an
explicit ``flush``).  With ``deadline_aware=False`` the SLO term is
ignored, which is exactly the fixed-window baseline the property suite
compares against: same timeout, same window, no knowledge of deadlines.

The policy is a pure function of the queue and the caller-supplied ``now``
— it never reads the wall clock itself — so the identical code path runs
under the real-time engine (:mod:`repro.serve.engine`) and the
deterministic virtual-time simulator (:mod:`repro.serve.replay`).

The module's second stage is the :class:`Shuffler`: once a micro-batch is
closed, it permutes the *rows* of the stacked (already-noisy) activation
across sessions under an explicit seeded policy, and records the inverse
permutation so the dispatcher can restore per-request order bit-exactly
after the cloud half returns.  Shuffling severs the wire-visible link
between a row's batch position and the frame's request table — the
positional side channel a curious cloud or on-path observer would use to
attribute rows to users — while the row-invariant executor guarantees the
permute → compute → unpermute round trip is the identity on every
request's logits (the shuffling contract; see ROADMAP standing
constraints).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.serve.queue import InferenceRequest, MicroBatcher, RequestQueue


class AdaptiveBatcher:
    """Closes micro-batch windows on deadline slack instead of fixed counts.

    Args:
        queue: The request source.
        batch_window: Maximum requests stacked per micro-batch.
        max_rows: Optional cap on total image rows per micro-batch.
        batch_timeout: Longest the head request may wait for the window to
            fill, in clock seconds.  Bounds the latency of SLO-free
            requests and is the only closing rule (besides a full window)
            for the deadline-unaware baseline.
        service_estimate: Expected seconds to serve one micro-batch, used
            as slack when translating a deadline into a close time.  The
            engine keeps this current with an EWMA of measured batch
            service times (:meth:`observe_service`); simulations set it
            from their service model.
        deadline_aware: ``False`` ignores request SLOs entirely (the
            fixed-window baseline policy).
        isolate_sessions: Batch-composition policy (see
            :class:`~repro.serve.queue.MicroBatcher`): ``True`` closes
            every micro-batch at the first session boundary so batches
            never mix users.
    """

    #: EWMA weight of the newest observed batch service time.
    SERVICE_EWMA = 0.3

    def __init__(
        self,
        queue: RequestQueue,
        batch_window: int = 8,
        *,
        max_rows: int | None = None,
        batch_timeout: float = 0.005,
        service_estimate: float = 0.0,
        deadline_aware: bool = True,
        isolate_sessions: bool = False,
    ) -> None:
        if batch_timeout < 0:
            raise ConfigurationError(
                f"batch timeout must be >= 0 seconds, got {batch_timeout}"
            )
        if service_estimate < 0:
            raise ConfigurationError(
                f"service estimate must be >= 0 seconds, got {service_estimate}"
            )
        self._inner = MicroBatcher(queue, batch_window, max_rows, isolate_sessions)
        self.queue = queue
        self.batch_window = batch_window
        self.batch_timeout = batch_timeout
        self.service_estimate = service_estimate
        self.deadline_aware = deadline_aware
        self.isolate_sessions = isolate_sessions

    # ------------------------------------------------------------------
    # Policy
    # ------------------------------------------------------------------
    def close_time(self) -> float | None:
        """The clock time at which the pending window must be closed.

        ``None`` when the queue is empty (nothing to close).  When the
        window is already full the head's own arrival time is returned —
        a time that is always in the past, i.e. "close now".  Drivers use
        this to sleep (engine) or jump the virtual clock (simulator) to
        the next scheduling event.
        """
        head = self.queue.peek()
        if head is None:
            return None
        if self._window_full():
            return head.submitted_at
        close = head.submitted_at + self.batch_timeout
        if self.deadline_aware:
            for request in self.queue:
                deadline = request.deadline
                if deadline is not None:
                    close = min(close, deadline - self.service_estimate)
        return close

    def _window_full(self) -> bool:
        """Whether the next batch can admit no further request — by count,
        by a session boundary (isolation policy: the FIFO prefix is capped
        the moment a different session queues behind the head run, so
        waiting cannot grow the batch), or by the row cap (waiting longer
        cannot grow a rows-full batch)."""
        if len(self.queue) >= self.batch_window:
            return True
        if self.isolate_sessions:
            head_key = None
            for request in self.queue:
                if head_key is None:
                    head_key = request.ordering_key
                elif request.ordering_key != head_key:
                    return True
        max_rows = self._inner.max_rows
        if max_rows is None:
            return False
        rows = 0
        for request in self.queue:
            rows += request.rows
            if rows >= max_rows:
                return True
        return False

    def next_batch(
        self, now: float, *, flush: bool = False
    ) -> list[InferenceRequest]:
        """The next micro-batch, or ``[]`` if the window should stay open.

        Args:
            now: Current time on the queue's clock.
            flush: Close the window regardless of slack (stream shutdown /
                drain — never leaves requests to starve).
        """
        close = self.close_time()
        if close is None:
            return []
        if flush or now >= close:
            return self._inner.next_batch()
        return []

    def observe_service(self, seconds: float) -> None:
        """Fold one measured batch service time into the slack estimate."""
        if seconds < 0:
            return
        if self.service_estimate <= 0.0:
            self.service_estimate = seconds
        else:
            self.service_estimate += self.SERVICE_EWMA * (
                seconds - self.service_estimate
            )


@dataclass(frozen=True)
class BatchPermutation:
    """One micro-batch's recorded row permutation and its inverse.

    Attributes:
        forward: ``wire[i] = plain[forward[i]]`` — the row order that
            actually went over the wire.
        inverse: ``plain[j] = wire[inverse[j]]`` — recorded at shuffle
            time so the dispatcher can restore per-request order without
            recomputing (or trusting) anything.
    """

    forward: tuple[int, ...]
    inverse: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.forward)

    def apply(self, tensor: np.ndarray) -> np.ndarray:
        """Rows of ``tensor`` in wire order (a fresh contiguous array)."""
        if len(tensor) != len(self.forward):
            raise ConfigurationError(
                f"permutation covers {len(self.forward)} rows, "
                f"tensor has {len(tensor)}"
            )
        return np.ascontiguousarray(tensor[np.asarray(self.forward)])

    def restore(self, tensor: np.ndarray) -> np.ndarray:
        """Rows of a wire-order ``tensor`` back in plain (request) order."""
        if len(tensor) != len(self.inverse):
            raise ConfigurationError(
                f"permutation covers {len(self.inverse)} rows, "
                f"tensor has {len(tensor)}"
            )
        return np.ascontiguousarray(tensor[np.asarray(self.inverse)])


class Shuffler:
    """Seeded cross-session row shuffling for closed micro-batches.

    The shuffling contract (enforced by the parity suites):

    * the permutation is drawn from an **explicit seeded policy** —
      batch ``b`` of a shuffler seeded ``s`` uses
      ``np.random.SeedSequence([s, b])`` — so runs are reproducible and
      two identically-seeded deployments shuffle identically;
    * the **inverse is recorded** (:class:`BatchPermutation`) before the
      frame is encoded, and the dispatcher restores per-request order
      with it after the cloud half returns;
    * shuffling happens **after** noise sampling and quantisation, both
      of which are row-local, and the executor is row-invariant — so
      per-session logits stay bit-identical to the unshuffled (and to
      the sequential reference) path.

    The stage permutes at *row* granularity over the whole stacked
    tensor, so multi-row requests are dispersed too: a wire row's
    position carries no information about which request — or session —
    contributed it beyond "one of the batch's sessions" (the anonymity
    set recorded in :class:`~repro.serve.metrics.ServingMetrics`).

    Args:
        seed: Policy seed.  The per-batch counter advances on every
            :meth:`permute` call, including trivially small batches, so
            batch ``b`` always draws from the same stream position.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self.batches = 0

    def permute(self, n_rows: int) -> BatchPermutation | None:
        """Draw the next batch's permutation; ``None`` if under 2 rows
        (a single row cannot mix, and recording it would be noise)."""
        if n_rows < 0:
            raise ConfigurationError(f"row count must be >= 0, got {n_rows}")
        counter = self.batches
        self.batches += 1
        if n_rows < 2:
            return None
        rng = np.random.default_rng(np.random.SeedSequence([self.seed, counter]))
        forward = rng.permutation(n_rows)
        inverse = np.empty(n_rows, dtype=np.int64)
        inverse[forward] = np.arange(n_rows)
        return BatchPermutation(
            forward=tuple(int(i) for i in forward),
            inverse=tuple(int(i) for i in inverse),
        )
