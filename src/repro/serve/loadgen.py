"""Trace-driven open-loop load generation for the serving benches.

The closed-loop benches submit request *i+1* when request *i* is done —
which can never overload anything and hides every queueing effect real
traffic has.  This module generates **open-loop** arrival traces the way
production load is actually shaped:

* **Arrival processes** — ``poisson`` (memoryless constant-rate),
  ``diurnal`` (sinusoidal rate modulation, a day compressed into
  ``period_seconds``), ``bursty`` (two-state Markov-modulated Poisson:
  calm base rate with exponentially-distributed bursts at
  ``burst_factor`` times it).
* **Population** — per-request users drawn Zipf-heavy-tailed from a
  population of up to millions of distinct session ids: a few hot users
  dominate while the long tail keeps the session table churning, which
  is exactly what stresses deterministic session→shard routing.
* **Reproducibility** — every trace is a pure function of its seed:
  same seed, same arrival times, same session ids, same row counts.
  Benches and the CI gates rely on this.

A trace is just a list of :class:`TraceEvent`; drive it in virtual time
(ignore the clock, submit in order — capacity measurement) or in wall
time via :func:`replay_trace` (sleep until each arrival — latency/SLO
measurement).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigurationError

#: Supported arrival shapes (the CLI's ``--trace`` choices).
TRACE_SHAPES = ("poisson", "diurnal", "bursty")


@dataclass(frozen=True)
class TraceEvent:
    """One open-loop arrival.

    Attributes:
        arrival: Seconds since trace start.
        session_id: The issuing user's stable session key.
        rows: Image rows this request carries.
        slo_seconds: Optional latency SLO.
    """

    arrival: float
    session_id: str
    rows: int
    slo_seconds: float | None = None


def _zipf_ranks(
    rng: np.random.Generator, n: int, n_users: int, exponent: float
) -> np.ndarray:
    """``n`` user ranks in ``[0, n_users)``, Zipf(``exponent``)-tailed.

    ``rng.zipf`` is unbounded; ranks beyond the population fold back
    uniformly so the distribution stays heavy-tailed but the id space
    stays exactly ``n_users`` wide.
    """
    ranks = rng.zipf(exponent, size=n) - 1
    overflow = ranks >= n_users
    if overflow.any():
        ranks[overflow] = rng.integers(0, n_users, size=int(overflow.sum()))
    return ranks


def generate_trace(
    n_requests: int,
    *,
    shape: str = "poisson",
    mean_rate_rps: float = 1000.0,
    seed: int = 0,
    n_users: int = 1_000_000,
    zipf_exponent: float = 1.2,
    rows_choices: Sequence[int] = (1,),
    slo_choices: Sequence[float | None] = (None,),
    burst_factor: float = 8.0,
    burst_fraction: float = 0.1,
    period_seconds: float = 1.0,
    diurnal_depth: float = 0.8,
) -> list[TraceEvent]:
    """A reproducible open-loop arrival trace.

    Args:
        n_requests: Events to generate.
        shape: ``poisson`` / ``diurnal`` / ``bursty``.
        mean_rate_rps: Long-run average arrival rate.
        seed: Sole source of randomness — same seed, same trace.
        n_users: Distinct session-id population (millions are fine; ids
            are generated lazily as strings, not materialised up front).
        zipf_exponent: Tail weight of the per-user request distribution
            (must be > 1; lower = heavier tail).
        rows_choices: Per-request row counts, drawn uniformly.
        slo_choices: Per-request SLOs, drawn uniformly (``None`` entries
            mean no deadline).
        burst_factor: ``bursty`` — rate multiplier while a burst is on.
        burst_fraction: ``bursty`` — long-run fraction of time in-burst.
        period_seconds: ``diurnal`` — length of one day-cycle.
        diurnal_depth: ``diurnal`` — modulation depth in ``[0, 1)``
            (peak rate is ``(1+depth)``, trough ``(1-depth)`` times the
            mean).

    Returns:
        Events sorted by arrival time (arrival starts at the first gap).
    """
    if n_requests < 1:
        raise ConfigurationError(f"need >= 1 request, got {n_requests}")
    if shape not in TRACE_SHAPES:
        raise ConfigurationError(
            f"unknown trace shape {shape!r}; options: {list(TRACE_SHAPES)}"
        )
    if mean_rate_rps <= 0:
        raise ConfigurationError(f"rate must be positive, got {mean_rate_rps}")
    if n_users < 1:
        raise ConfigurationError(f"need >= 1 user, got {n_users}")
    if zipf_exponent <= 1.0:
        raise ConfigurationError(
            f"zipf exponent must be > 1, got {zipf_exponent}"
        )
    if not 0.0 <= diurnal_depth < 1.0:
        raise ConfigurationError(
            f"diurnal depth must be in [0, 1), got {diurnal_depth}"
        )
    if not rows_choices or any(r < 1 for r in rows_choices):
        raise ConfigurationError(f"bad rows_choices {rows_choices!r}")
    rng = np.random.default_rng(seed)

    # Arrival gaps, one draw per request, shaped per process.
    base_gap = 1.0 / mean_rate_rps
    gaps = rng.exponential(base_gap, size=n_requests)
    if shape == "poisson":
        arrivals = np.cumsum(gaps)
    elif shape == "diurnal":
        # Thinning-free modulation: stretch each gap by the inverse
        # instantaneous rate at the current clock position.
        arrivals = np.empty(n_requests)
        clock = 0.0
        for i in range(n_requests):
            phase = 2.0 * np.pi * (clock / period_seconds)
            rate_scale = 1.0 + diurnal_depth * np.sin(phase)
            clock += gaps[i] / rate_scale
            arrivals[i] = clock
    else:  # bursty: two-state Markov-modulated Poisson process
        if burst_factor <= 1.0:
            raise ConfigurationError(
                f"burst factor must be > 1, got {burst_factor}"
            )
        if not 0.0 < burst_fraction < 1.0:
            raise ConfigurationError(
                f"burst fraction must be in (0, 1), got {burst_fraction}"
            )
        # Scale the calm rate so the long-run mean stays mean_rate_rps.
        calm_rate = mean_rate_rps / (
            1.0 - burst_fraction + burst_fraction * burst_factor
        )
        burst_rate = calm_rate * burst_factor
        # Dwell times: bursts last ~20 mean gaps; calm periods balance
        # the requested burst fraction.
        burst_dwell = 20.0 * base_gap
        calm_dwell = burst_dwell * (1.0 - burst_fraction) / burst_fraction
        # Each arrival fires when the integrated (piecewise-constant)
        # rate accumulates one unit-rate exponential draw.
        units = gaps * mean_rate_rps
        arrivals = np.empty(n_requests)
        clock = 0.0
        in_burst = False
        state_left = rng.exponential(calm_dwell)
        for i in range(n_requests):
            u = units[i]
            while True:
                rate = burst_rate if in_burst else calm_rate
                if u <= rate * state_left:
                    step = u / rate
                    clock += step
                    state_left -= step
                    break
                u -= rate * state_left
                clock += state_left
                in_burst = not in_burst
                state_left = rng.exponential(
                    burst_dwell if in_burst else calm_dwell
                )
            arrivals[i] = clock

    ranks = _zipf_ranks(rng, n_requests, n_users, zipf_exponent)
    rows = rng.choice(np.asarray(rows_choices, dtype=np.int64), size=n_requests)
    slo_idx = rng.integers(0, len(slo_choices), size=n_requests)
    return [
        TraceEvent(
            arrival=float(arrivals[i]),
            session_id=f"u{int(ranks[i])}",
            rows=int(rows[i]),
            slo_seconds=slo_choices[int(slo_idx[i])],
        )
        for i in range(n_requests)
    ]


def trace_stats(trace: Sequence[TraceEvent]) -> dict:
    """Summary statistics of a trace (recorded next to bench results)."""
    if not trace:
        return {"requests": 0}
    arrivals = np.array([e.arrival for e in trace])
    sessions = {e.session_id for e in trace}
    per_user = np.bincount(
        np.unique([e.session_id for e in trace], return_inverse=True)[1]
    )
    return {
        "requests": len(trace),
        "duration_seconds": float(arrivals[-1]),
        "mean_rate_rps": len(trace) / float(arrivals[-1]) if arrivals[-1] else 0.0,
        "distinct_sessions": len(sessions),
        "max_requests_per_user": int(per_user.max()),
        "rows": int(sum(e.rows for e in trace)),
    }


def replay_trace(
    trace: Sequence[TraceEvent],
    submit: Callable[[TraceEvent], None],
    *,
    on_tick: Callable[[], None] | None = None,
    clock: Callable[[], float] = time.perf_counter,
    sleep: Callable[[float], None] = time.sleep,
) -> float:
    """Replay a trace open-loop against the wall clock.

    Sleeps until each event's arrival time, then calls ``submit(event)``
    regardless of whether earlier requests completed (that is what makes
    it open-loop).  ``on_tick`` runs after every submission — the place
    to pump a serving plane.

    Returns:
        Wall seconds the replay took.
    """
    start = clock()
    for event in trace:
        wait = event.arrival - (clock() - start)
        if wait > 0:
            sleep(wait)
        submit(event)
        if on_tick is not None:
            on_tick()
    return clock() - start
