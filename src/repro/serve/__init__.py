"""``repro.serve`` — the throughput-oriented split-inference serving engine.

The paper's deployment story (§2.5 / Figure 2) is one edge device sending
one noisy activation at a time.  A multi-user deployment serves many
concurrent requests, and that is where batching pays.  This package grew
in two steps:

* **PR 2** added the FIFO request queue and micro-batcher
  (:mod:`repro.serve.queue`), the batched session running one stacked
  local/remote pass and one wire frame per micro-batch
  (:mod:`repro.serve.session`), and per-session metrics
  (:mod:`repro.serve.metrics`).
* **PR 3** made serving deadline-aware and concurrent: requests carry an
  optional latency SLO and session id, the
  :class:`~repro.serve.scheduler.AdaptiveBatcher` closes batching windows
  on deadline slack instead of fixed counts, and the
  :class:`~repro.serve.engine.ServingEngine` drains micro-batches through
  a pool of cloud workers while its dispatcher keeps noise sampling
  single-owner and releases responses in per-session order.  The
  scheduling policy also runs under a deterministic virtual clock
  (:mod:`repro.serve.replay`) for SLO experiments and property tests.

* **PR 5** turned the single-pipeline engine into a **multi-deployment
  control plane** (:mod:`repro.serve.controlplane`): a
  :class:`~repro.serve.controlplane.DeploymentRegistry` hosts N named
  ``(model, cut, noise collection)`` deployments — each with its own
  noise stream, batching window/policy, and metrics — behind a
  :class:`~repro.serve.controlplane.Router` and one **shared** cloud
  worker pool with per-deployment executor caches, worker **crash
  recovery** (fault-injected deaths requeue the in-flight batch on the
  survivors exactly-once), an explicit batch-composition policy
  (``isolate_sessions`` vs ``mixed``, measured by the metrics'
  cross-user ``mixing_index``), and an asyncio front door
  (:class:`~repro.serve.aio.AsyncServingClient`).  The
  :class:`~repro.serve.engine.ServingEngine` is now the single-deployment
  facade over that plane.

* **PR 6** made the control plane **elastic**: crashed workers heal back
  (pre-warmed respawns, :meth:`~repro.serve.controlplane.ControlPlane.heal`
  / ``auto_heal``), deployments hot-swap or unregister under live
  traffic behind a drain barrier
  (:meth:`~repro.serve.controlplane.ControlPlane.swap` /
  :meth:`~repro.serve.controlplane.ControlPlane.unregister`), an
  :class:`~repro.serve.controlplane.Autoscaler` resizes the pool from
  the plane's own metrics signals, and per-deployment
  :class:`~repro.serve.admission.AdmissionController`\\ s (token bucket +
  queue cap + deadline shedding) reject overload with typed
  :class:`~repro.errors.AdmissionError` /
  :class:`~repro.errors.OverloadError` — a 429-style front door; once a
  request is admitted it is served exactly once, in order,
  bit-identically.

* **PR 7** sharded the plane across worker **processes**
  (:mod:`repro.serve.shard`): a
  :class:`~repro.serve.shard.ShardedServingEngine` spawns N shard
  subprocesses — each a full engine rebuilt from a spawn-safe
  :class:`~repro.serve.shard.ShardSpec` — and routes requests by
  deterministic session hashing (:func:`~repro.serve.shard.route_session`),
  moving SHRB/SHRD frames over **real sockets** through the
  length-prefixed incremental transport (:mod:`repro.serve.transport`).
  Each shard is bit-identical to its own sequential reference (per-shard
  noise stream, :func:`~repro.serve.shard.shard_seed`); a killed shard is
  respawned pre-warmed and its admitted log replayed exactly-once
  (duplicates discarded), extending the PR 6 elasticity contract across
  process boundaries.  The trace harness (:mod:`repro.serve.loadgen`)
  generates reproducible open-loop arrivals (Poisson / diurnal / bursty)
  over Zipf-heavy-tailed million-user populations for the sharded benches.

* **PR 8** bridged shuffling and privacy: a
  :class:`~repro.serve.scheduler.Shuffler` stage permutes the rows of
  every closed micro-batch **across sessions** under an explicit seeded
  policy and records the inverse (:class:`~repro.serve.scheduler.BatchPermutation`)
  so the dispatcher restores per-request order bit-exactly — the wire
  frame's request table no longer truthfully describes row ownership,
  which removes the positional side channel an honest-but-curious cloud
  would use to attribute rows to users.  Enable it per deployment
  (``register(..., shuffle=True)``, ``deploy(shuffle=True)``,
  ``repro serve --shuffle``); :class:`~repro.serve.metrics.ServingMetrics`
  tracks shuffled batches and per-batch **anonymity sets** (distinct
  sessions mixed together) and reports the closed-form shuffle
  amplification bound
  (:meth:`~repro.serve.metrics.ServingMetrics.shuffle_amplification`,
  backed by :func:`repro.privacy.shuffle_eval.amplified_epsilon`);
  :mod:`repro.privacy.shuffle_eval` measures the leakage empirically
  with the repo's real attacks.  ``ServingMetrics.mixing_index`` is now
  ``None`` when nothing was dispatched (mixing is *undefined*, matching
  ``slo_attainment``) — a served-but-unmixed stream still reads ``0.0``.

Serving is bit-for-bit equivalent to the retained sequential reference
path (:class:`repro.edge.InferenceSession`) on the same request stream —
for every batching window *and* every worker count, per deployment: all
paths run the batch-invariant executor and consume the same noise sample
stream, whose single explicit owner is the dispatcher
(:class:`~repro.core.sampler.NoiseStream`).  Build a session directly,
via :meth:`repro.core.ShredderPipeline.deploy`, or stand up several
tenants at once with :meth:`repro.core.ShredderPipeline.deploy_many`.
"""

from repro.errors import (
    AdmissionError,
    DeploymentDrainError,
    OverloadError,
    ShardCrashError,
)
from repro.serve.admission import AdmissionController, TokenBucket
from repro.serve.aio import AsyncServingClient
from repro.serve.loadgen import (
    TRACE_SHAPES,
    TraceEvent,
    generate_trace,
    replay_trace,
    trace_stats,
)
from repro.serve.controlplane import (
    Autoscaler,
    AutoscaleDecision,
    ControlPlane,
    Deployment,
    DeploymentRegistry,
    DeploymentSpec,
    RequestHandle,
    Router,
)
from repro.serve.engine import ServingEngine
from repro.serve.metrics import ServingMetrics, percentile
from repro.serve.queue import InferenceRequest, MicroBatcher, RequestQueue
from repro.serve.replay import (
    ScheduleResult,
    TimedRequest,
    VirtualClock,
    random_trace,
    simulate_schedule,
)
from repro.serve.scheduler import AdaptiveBatcher, BatchPermutation, Shuffler
from repro.serve.session import BatchedInferenceSession
from repro.serve.shard import (
    ShardSpec,
    ShardedServingEngine,
    route_session,
    shard_seed,
)
from repro.serve.transport import FrameDecoder, SocketTransport, transport_pair

__all__ = [
    "AdaptiveBatcher",
    "AdmissionController",
    "AdmissionError",
    "AsyncServingClient",
    "AutoscaleDecision",
    "Autoscaler",
    "BatchPermutation",
    "BatchedInferenceSession",
    "ControlPlane",
    "Deployment",
    "DeploymentDrainError",
    "DeploymentRegistry",
    "DeploymentSpec",
    "FrameDecoder",
    "InferenceRequest",
    "MicroBatcher",
    "OverloadError",
    "RequestHandle",
    "RequestQueue",
    "Router",
    "ScheduleResult",
    "ServingEngine",
    "ServingMetrics",
    "ShardCrashError",
    "ShardSpec",
    "ShardedServingEngine",
    "Shuffler",
    "SocketTransport",
    "TRACE_SHAPES",
    "TokenBucket",
    "TimedRequest",
    "TraceEvent",
    "VirtualClock",
    "generate_trace",
    "percentile",
    "random_trace",
    "replay_trace",
    "route_session",
    "shard_seed",
    "simulate_schedule",
    "trace_stats",
    "transport_pair",
]
