"""``repro.serve`` — the throughput-oriented split-inference serving engine.

The paper's deployment story (§2.5 / Figure 2) is one edge device sending
one noisy activation at a time.  A multi-user deployment serves many
concurrent requests, and that is where batching pays: this package adds a
request queue and micro-batcher (:mod:`repro.serve.queue`), a batched
session running one stacked local/remote pass and one wire frame per
micro-batch (:mod:`repro.serve.session`), and per-session metrics —
latency percentiles, batch occupancy, bytes on the wire
(:mod:`repro.serve.metrics`).

Batched serving is bit-for-bit equivalent to the retained sequential
reference path (:class:`repro.edge.InferenceSession`) on the same request
stream: both run the batch-invariant executor and consume the same noise
sample stream.  Build a session directly, or via
:meth:`repro.core.ShredderPipeline.deploy`.
"""

from repro.serve.metrics import ServingMetrics
from repro.serve.queue import InferenceRequest, MicroBatcher, RequestQueue
from repro.serve.session import BatchedInferenceSession

__all__ = [
    "BatchedInferenceSession",
    "InferenceRequest",
    "MicroBatcher",
    "RequestQueue",
    "ServingMetrics",
]
