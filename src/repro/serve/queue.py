"""Request queue and micro-batcher for the serving runtime.

Incoming requests (each a small image batch from one user) are appended to
a FIFO :class:`RequestQueue`; the :class:`MicroBatcher` drains up to
``batch_window`` pending requests at a time, which the session then pushes
through one stacked edge/cloud round trip.  FIFO draining preserves arrival
order, which is what makes the batched engine consume the shared noise
generator exactly as the sequential reference path would — the foundation
of the bit-for-bit parity guarantee.

Requests optionally carry a latency SLO (a deadline relative to
submission) and a session id; the deadline-aware scheduler
(:mod:`repro.serve.scheduler`) closes batching windows on deadline slack,
and the multi-worker engine (:mod:`repro.serve.engine`) preserves response
ordering *within* a session.  The queue takes an injectable clock so the
whole scheduling stack can be driven deterministically in virtual time
(:mod:`repro.serve.replay`) as well as against the wall clock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from collections import deque
from typing import Callable, Hashable, Iterator

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class InferenceRequest:
    """One pending request.

    Attributes:
        request_id: Session-unique, monotonically increasing id.
        images: ``(n, C, H, W)`` image batch (single images are stored with
            the batch dimension restored).
        submitted_at: Submission time on the queue's clock (for latency
            accounting and deadline math).
        slo_seconds: Optional latency SLO; the request's deadline is
            ``submitted_at + slo_seconds``.
        session_id: Optional user-session key; the serving engine releases
            results of one session in submission order.
    """

    request_id: int
    images: np.ndarray
    submitted_at: float = field(default_factory=time.perf_counter)
    slo_seconds: float | None = None
    session_id: Hashable | None = None

    @property
    def rows(self) -> int:
        """Samples this request contributes to a micro-batch."""
        return len(self.images)

    @property
    def deadline(self) -> float | None:
        """Absolute deadline on the queue's clock (``None`` without SLO)."""
        if self.slo_seconds is None:
            return None
        return self.submitted_at + self.slo_seconds

    @property
    def ordering_key(self) -> Hashable:
        """Delivery-ordering domain of this request.

        Requests sharing a key are released in submission order; a
        sessionless request orders only against itself.  The live engine
        and the virtual-time simulator must gate on the *same* key, which
        is why it lives here.
        """
        if self.session_id is None:
            return ("solo", self.request_id)
        return ("session", self.session_id)


class RequestQueue:
    """FIFO queue assigning request ids at submission.

    Args:
        clock: Time source stamped onto requests; defaults to the wall
            clock, replaced with a virtual clock in scheduling simulations.
    """

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._pending: deque[InferenceRequest] = deque()
        self._next_id = 0
        self._clock = clock or time.perf_counter

    def submit(
        self,
        images: np.ndarray,
        *,
        slo_seconds: float | None = None,
        session_id: Hashable | None = None,
    ) -> int:
        """Enqueue one request; returns its id.

        A 3-D ``(C, H, W)`` array is treated as a single image.
        """
        images = np.asarray(images)
        if images.ndim == 3:
            images = images[None]
        if images.ndim != 4:
            raise ConfigurationError(
                f"requests must be (C, H, W) or (n, C, H, W) images, "
                f"got shape {images.shape}"
            )
        if len(images) == 0:
            raise ConfigurationError("cannot submit an empty request")
        if slo_seconds is not None and slo_seconds <= 0:
            raise ConfigurationError(
                f"a latency SLO must be positive, got {slo_seconds}"
            )
        request = InferenceRequest(
            request_id=self._next_id,
            images=images,
            submitted_at=self._clock(),
            slo_seconds=slo_seconds,
            session_id=session_id,
        )
        self._next_id += 1
        self._pending.append(request)
        return request.request_id

    @property
    def submitted(self) -> int:
        """Total requests ever submitted (the autoscaler's arrival counter)."""
        return self._next_id

    def peek(self) -> InferenceRequest | None:
        """The head request without dequeuing (``None`` when empty)."""
        return self._pending[0] if self._pending else None

    def pop_window(self, max_requests: int) -> list[InferenceRequest]:
        """Dequeue up to ``max_requests`` requests in arrival order."""
        if max_requests < 1:
            raise ConfigurationError(
                f"window must be >= 1 request, got {max_requests}"
            )
        window: list[InferenceRequest] = []
        while self._pending and len(window) < max_requests:
            window.append(self._pending.popleft())
        return window

    def requeue_front(self, requests: list[InferenceRequest]) -> None:
        """Return already-popped requests to the head of the queue.

        Used by the micro-batcher when a row cap splits a window; the
        requests re-enter in their original arrival order, preserving FIFO.
        """
        for request in reversed(requests):
            self._pending.appendleft(request)

    def __iter__(self) -> Iterator[InferenceRequest]:
        """Pending requests in arrival order (for deadline scans)."""
        return iter(self._pending)

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)


class MicroBatcher:
    """Groups pending requests into micro-batches.

    Args:
        queue: The request source.
        batch_window: Maximum requests stacked per micro-batch.
        max_rows: Optional cap on total image rows per micro-batch (bounds
            the stacked activation's memory for multi-image requests); a
            single oversized request still ships alone rather than starve.
        isolate_sessions: Batch-composition policy.  ``False`` (the
            ``mixed`` policy) stacks any pending requests together —
            maximal occupancy, but one micro-batch mixes activations of
            independent users, the cross-user surface the shuffling
            analyses warn about.  ``True`` closes every micro-batch at the
            first session boundary, so a batch only ever carries one
            session's requests (sessionless requests each form their own
            batch).  Both policies drain the queue as a FIFO *prefix*, so
            noise draws stay in arrival order and bit parity is unaffected
            — only batch composition (and therefore occupancy/throughput
            and the mixing index) changes.
    """

    def __init__(
        self,
        queue: RequestQueue,
        batch_window: int = 8,
        max_rows: int | None = None,
        isolate_sessions: bool = False,
    ) -> None:
        if batch_window < 1:
            raise ConfigurationError(
                f"batch window must be >= 1, got {batch_window}"
            )
        if max_rows is not None and max_rows < 1:
            raise ConfigurationError(f"max_rows must be >= 1, got {max_rows}")
        self.queue = queue
        self.batch_window = batch_window
        self.max_rows = max_rows
        self.isolate_sessions = isolate_sessions

    def next_batch(self) -> list[InferenceRequest]:
        """The next micro-batch (empty list when the queue is drained)."""
        window = self.queue.pop_window(self.batch_window)
        if not window or (self.max_rows is None and not self.isolate_sessions):
            return window
        taken: list[InferenceRequest] = []
        rows = 0
        head_key = window[0].ordering_key
        for index, request in enumerate(window):
            if taken and (
                (self.isolate_sessions and request.ordering_key != head_key)
                or (self.max_rows is not None and rows + request.rows > self.max_rows)
            ):
                # Put the remainder back in order for the next batch.
                self.queue.requeue_front(window[index:])
                break
            taken.append(request)
            rows += request.rows
        return taken
