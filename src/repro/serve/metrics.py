"""Per-session serving metrics: latency percentiles, occupancy, traffic.

Wall-clock latency is measured from request submission to prediction
demultiplexing (so it includes queueing delay inside the batching window);
the simulated channel seconds come from the :class:`~repro.edge.Channel`
cost model and are reported separately — the two axes a deployment tunes
against each other when picking a batching window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class ServingMetrics:
    """Accumulated statistics for one serving session.

    Attributes:
        requests: Completed requests.
        samples: Total image rows across completed requests.
        micro_batches: Stacked round trips taken.
        uplink_bytes / downlink_bytes: Wire traffic.
        wall_seconds: Wall-clock time spent inside ``step`` calls.
        simulated_wire_seconds: Channel-model transfer time.
        latencies: Per-request wall-clock latency (submission to result).
        occupancies: Requests per micro-batch.
    """

    requests: int = 0
    samples: int = 0
    micro_batches: int = 0
    uplink_bytes: int = 0
    downlink_bytes: int = 0
    wall_seconds: float = 0.0
    simulated_wire_seconds: float = 0.0
    latencies: list[float] = field(default_factory=list)
    occupancies: list[int] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def latency_percentile(self, q: float) -> float:
        """Wall-clock latency percentile ``q`` (in seconds)."""
        if not self.latencies:
            return 0.0
        return float(np.percentile(self.latencies, q))

    @property
    def mean_occupancy(self) -> float:
        """Mean requests per micro-batch (the batching win)."""
        if not self.occupancies:
            return 0.0
        return float(np.mean(self.occupancies))

    @property
    def requests_per_second(self) -> float:
        """Completed requests per wall-clock second of serving work."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.requests / self.wall_seconds

    def as_dict(self) -> dict:
        """JSON-friendly summary (used by the serving benchmark)."""
        return {
            "requests": self.requests,
            "samples": self.samples,
            "micro_batches": self.micro_batches,
            "mean_occupancy": self.mean_occupancy,
            "uplink_bytes": self.uplink_bytes,
            "downlink_bytes": self.downlink_bytes,
            "wall_seconds": self.wall_seconds,
            "simulated_wire_seconds": self.simulated_wire_seconds,
            "requests_per_second": self.requests_per_second,
            "latency_p50_ms": 1e3 * self.latency_percentile(50),
            "latency_p90_ms": 1e3 * self.latency_percentile(90),
            "latency_p99_ms": 1e3 * self.latency_percentile(99),
        }

    def format(self) -> str:
        """Human-readable multi-line summary."""
        d = self.as_dict()
        return (
            f"requests          {d['requests']} ({d['samples']} samples in "
            f"{d['micro_batches']} micro-batches, "
            f"occupancy {d['mean_occupancy']:.2f})\n"
            f"throughput        {d['requests_per_second']:.0f} req/s "
            f"({d['wall_seconds']*1e3:.1f} ms wall)\n"
            f"latency           p50 {d['latency_p50_ms']:.2f} ms   "
            f"p90 {d['latency_p90_ms']:.2f} ms   p99 {d['latency_p99_ms']:.2f} ms\n"
            f"wire              {d['uplink_bytes']/1e6:.3f} MB up / "
            f"{d['downlink_bytes']/1e6:.3f} MB down, "
            f"{d['simulated_wire_seconds']*1e3:.1f} ms simulated"
        )
