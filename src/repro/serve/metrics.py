"""Per-session serving metrics: latency percentiles, SLO attainment,
queue-age histograms, per-worker occupancy, traffic.

Wall-clock latency is measured from request submission to result delivery
(so it includes queueing delay inside the batching window *and* any wait
for per-session ordering); the simulated channel seconds come from the
:class:`~repro.edge.Channel` cost model and are reported separately — the
two axes a deployment tunes against each other when picking a batching
window.  Deadline-aware serving adds a third axis: the fraction of
SLO-carrying requests delivered inside their deadline
(:attr:`ServingMetrics.slo_attainment`).

The percentile math is implemented explicitly (:func:`percentile`, linear
interpolation over the sorted sample — numpy's default method) rather than
delegated, and is pinned against ``np.percentile`` on adversarial
distributions by ``tests/serve/test_metrics.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError


def percentile(values: Sequence[float], q: float) -> float:
    """Percentile ``q`` of ``values`` by linear interpolation.

    Matches ``np.percentile``'s default (``linear``) method: the quantile
    position is ``(q/100) * (n-1)`` over the sorted sample, interpolating
    between the two bracketing order statistics.  An empty sample returns
    0.0 (metrics objects start empty).
    """
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError(f"percentile must be in [0, 100], got {q}")
    data = np.sort(np.asarray(values, dtype=np.float64))
    if data.size == 0:
        return 0.0
    if data.size == 1:
        return float(data[0])
    position = (q / 100.0) * (data.size - 1)
    low = int(np.floor(position))
    high = int(np.ceil(position))
    fraction = position - low
    return float(data[low] + (data[high] - data[low]) * fraction)


@dataclass
class ServingMetrics:
    """Accumulated statistics for one serving session.

    Attributes:
        requests: Completed requests.
        samples: Total image rows across completed requests.
        micro_batches: Stacked round trips taken.
        uplink_bytes / downlink_bytes: Wire traffic.
        wall_seconds: Wall-clock (or virtual) time spent serving.
        simulated_wire_seconds: Channel-model transfer time.
        latencies: Per-request latency (submission to delivery).
        occupancies: Requests per micro-batch.
        queue_ages: Per-request queueing delay (submission to dispatch);
            the part of latency the batching window is responsible for.
        slo_met / slo_total: Deadline bookkeeping over requests that
            carried an SLO.
        worker_batches: Micro-batches served per worker id.
        worker_busy_seconds: Busy time per worker id.
        mixing_fractions: Per dispatched request, the fraction of its
            micro-batch's rows that belong to *other* sessions — the
            cross-user mixing surface of shared micro-batches (deployments
            never share a batch, so cross-deployment mixing is
            structurally zero).  Recorded at dispatch time.
        requeued_batches: Micro-batches requeued onto surviving workers
            after a worker crash (exactly-once recovery).
        rejected_requests: Requests refused at the admission gate
            (:class:`~repro.errors.AdmissionError`: token bucket empty or
            ``max_pending`` reached).  Rejected requests never enter the
            queue and appear in no other counter.
        shed_requests: Requests shed at submission because their SLO was
            already unmeetable (:class:`~repro.errors.OverloadError`).
            Like rejections, shed requests never enter the queue.
        respawned_workers: Worker contexts re-spawned by healing after a
            crash (pool-level; tracked on the plane's pool metrics).
        pool_size_samples: Live-worker-count samples over the session
            (taken at each dispatch and on every scale/heal event) —
            the autoscaler's observable trace.
        shuffled_batches: Micro-batches whose wire rows were permuted by
            the :class:`~repro.serve.scheduler.Shuffler` stage before
            encoding.
        anonymity_sets: Distinct sessions per shuffled micro-batch — the
            ``n`` that enters the shuffle-amplification accounting (a
            row's position reveals at best "one of n users").
    """

    requests: int = 0
    samples: int = 0
    micro_batches: int = 0
    uplink_bytes: int = 0
    downlink_bytes: int = 0
    wall_seconds: float = 0.0
    simulated_wire_seconds: float = 0.0
    latencies: list[float] = field(default_factory=list)
    occupancies: list[int] = field(default_factory=list)
    queue_ages: list[float] = field(default_factory=list)
    slo_met: int = 0
    slo_total: int = 0
    worker_batches: dict[int, int] = field(default_factory=dict)
    worker_busy_seconds: dict[int, float] = field(default_factory=dict)
    mixing_fractions: list[float] = field(default_factory=list)
    requeued_batches: int = 0
    rejected_requests: int = 0
    shed_requests: int = 0
    respawned_workers: int = 0
    pool_size_samples: list[int] = field(default_factory=list)
    shuffled_batches: int = 0
    anonymity_sets: list[int] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_completion(
        self, latency: float, slo_seconds: float | None = None
    ) -> None:
        """Account one delivered request (latency + deadline outcome)."""
        self.latencies.append(latency)
        if slo_seconds is not None:
            self.slo_total += 1
            if latency <= slo_seconds:
                self.slo_met += 1

    def record_worker(self, worker_id: int, busy_seconds: float) -> None:
        """Account one micro-batch served by ``worker_id``."""
        self.worker_batches[worker_id] = self.worker_batches.get(worker_id, 0) + 1
        self.worker_busy_seconds[worker_id] = (
            self.worker_busy_seconds.get(worker_id, 0.0) + busy_seconds
        )

    def record_mixing(
        self, request_keys: Sequence, request_rows: Sequence[int]
    ) -> None:
        """Account cross-user mixing for one dispatched micro-batch.

        Args:
            request_keys: One ordering key per request in the batch.
            request_rows: Image rows each request contributes.

        Every request records ``other_rows / total_rows`` — the fraction
        of the stacked activation it shared a batch with that belongs to
        *other* sessions.  A single-session batch records 0.0 per request.
        """
        total = int(sum(request_rows))
        if total == 0:
            return
        own: dict = {}
        for key, rows in zip(request_keys, request_rows):
            own[key] = own.get(key, 0) + int(rows)
        for key in request_keys:
            self.mixing_fractions.append((total - own[key]) / total)

    def record_shuffle(self, request_keys: Sequence) -> None:
        """Account one shuffled micro-batch and its anonymity set.

        Args:
            request_keys: One ordering key per request in the batch.

        The anonymity set is the number of *distinct* sessions whose rows
        were permuted together: a positional adversary observing the wire
        can attribute a row to at best "one of n users".  Recorded once
        per batch the :class:`~repro.serve.scheduler.Shuffler` permuted.
        """
        self.shuffled_batches += 1
        self.anonymity_sets.append(len(set(request_keys)))

    # ------------------------------------------------------------------
    # Aggregation (sharded serving)
    # ------------------------------------------------------------------
    @classmethod
    def merge(cls, parts: Sequence["ServingMetrics"]) -> "ServingMetrics":
        """One coherent view over per-shard metrics.

        The sharded parent holds N independent :class:`ServingMetrics`
        (one per shard subprocess); this combines them:

        * **Counters** (requests, bytes, SLO tallies, requeues,
          rejections, respawns, ...) are summed.
        * **Percentile samples** (latencies, queue ages, mixing
          fractions) are concatenated — order is irrelevant to the
          percentile math.
        * **Occupancy and pool-size samples** are interleaved
          round-robin across shards, approximating global time order
          (shards record them concurrently).
        * **Wall seconds** take the maximum: shards serve concurrently,
          so the plane's serving span is the slowest shard's span and
          ``requests_per_second`` reads as aggregate throughput.
          Simulated wire seconds stay summed (total modelled transfer).
        * **Per-worker tallies** are namespaced as ``(part, worker)``
          keys — worker 0 of shard 1 is not worker 0 of shard 2.
        """
        merged = cls()
        for part in parts:
            merged.requests += part.requests
            merged.samples += part.samples
            merged.micro_batches += part.micro_batches
            merged.uplink_bytes += part.uplink_bytes
            merged.downlink_bytes += part.downlink_bytes
            merged.wall_seconds = max(merged.wall_seconds, part.wall_seconds)
            merged.simulated_wire_seconds += part.simulated_wire_seconds
            merged.latencies.extend(part.latencies)
            merged.queue_ages.extend(part.queue_ages)
            merged.mixing_fractions.extend(part.mixing_fractions)
            merged.slo_met += part.slo_met
            merged.slo_total += part.slo_total
            merged.requeued_batches += part.requeued_batches
            merged.rejected_requests += part.rejected_requests
            merged.shed_requests += part.shed_requests
            merged.respawned_workers += part.respawned_workers
            merged.shuffled_batches += part.shuffled_batches
            merged.anonymity_sets.extend(part.anonymity_sets)
        for index, part in enumerate(parts):
            for worker, batches in part.worker_batches.items():
                merged.worker_batches[(index, worker)] = batches
            for worker, busy in part.worker_busy_seconds.items():
                merged.worker_busy_seconds[(index, worker)] = busy
        for samples, target in (
            ([part.occupancies for part in parts], merged.occupancies),
            ([part.pool_size_samples for part in parts], merged.pool_size_samples),
        ):
            longest = max((len(s) for s in samples), default=0)
            for position in range(longest):
                for shard_samples in samples:
                    if position < len(shard_samples):
                        target.append(shard_samples[position])
        return merged

    # ------------------------------------------------------------------
    # Wire round-trip (shard subprocess -> parent; raw samples, not the
    # as_dict() summary, so the parent can merge and re-derive)
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """Every raw field as JSON-safe data (no live objects)."""
        return {
            "requests": self.requests,
            "samples": self.samples,
            "micro_batches": self.micro_batches,
            "uplink_bytes": self.uplink_bytes,
            "downlink_bytes": self.downlink_bytes,
            "wall_seconds": self.wall_seconds,
            "simulated_wire_seconds": self.simulated_wire_seconds,
            "latencies": list(self.latencies),
            "occupancies": list(self.occupancies),
            "queue_ages": list(self.queue_ages),
            "slo_met": self.slo_met,
            "slo_total": self.slo_total,
            "worker_batches": {str(k): v for k, v in self.worker_batches.items()},
            "worker_busy_seconds": {
                str(k): v for k, v in self.worker_busy_seconds.items()
            },
            "mixing_fractions": list(self.mixing_fractions),
            "requeued_batches": self.requeued_batches,
            "rejected_requests": self.rejected_requests,
            "shed_requests": self.shed_requests,
            "respawned_workers": self.respawned_workers,
            "pool_size_samples": list(self.pool_size_samples),
            "shuffled_batches": self.shuffled_batches,
            "anonymity_sets": list(self.anonymity_sets),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ServingMetrics":
        """Rebuild a metrics object written by :meth:`to_payload`."""

        def worker_key(key: str):
            return int(key) if key.lstrip("-").isdigit() else key

        metrics = cls(
            requests=int(payload["requests"]),
            samples=int(payload["samples"]),
            micro_batches=int(payload["micro_batches"]),
            uplink_bytes=int(payload["uplink_bytes"]),
            downlink_bytes=int(payload["downlink_bytes"]),
            wall_seconds=float(payload["wall_seconds"]),
            simulated_wire_seconds=float(payload["simulated_wire_seconds"]),
            slo_met=int(payload["slo_met"]),
            slo_total=int(payload["slo_total"]),
            requeued_batches=int(payload["requeued_batches"]),
            rejected_requests=int(payload["rejected_requests"]),
            shed_requests=int(payload["shed_requests"]),
            respawned_workers=int(payload["respawned_workers"]),
            shuffled_batches=int(payload.get("shuffled_batches", 0)),
        )
        metrics.latencies = [float(v) for v in payload["latencies"]]
        metrics.occupancies = [int(v) for v in payload["occupancies"]]
        metrics.queue_ages = [float(v) for v in payload["queue_ages"]]
        metrics.mixing_fractions = [float(v) for v in payload["mixing_fractions"]]
        metrics.pool_size_samples = [int(v) for v in payload["pool_size_samples"]]
        metrics.anonymity_sets = [int(v) for v in payload.get("anonymity_sets", [])]
        metrics.worker_batches = {
            worker_key(k): int(v) for k, v in payload["worker_batches"].items()
        }
        metrics.worker_busy_seconds = {
            worker_key(k): float(v)
            for k, v in payload["worker_busy_seconds"].items()
        }
        return metrics

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def latency_percentile(self, q: float) -> float:
        """Latency percentile ``q`` (in seconds)."""
        return percentile(self.latencies, q)

    def queue_age_percentile(self, q: float) -> float:
        """Queueing-delay percentile ``q`` (in seconds)."""
        return percentile(self.queue_ages, q)

    def queue_age_histogram(self, bins: int = 8) -> dict:
        """Queue-age histogram: ``{"edges": [s...], "counts": [n...]}``."""
        if bins < 1:
            raise ConfigurationError(f"need >= 1 histogram bin, got {bins}")
        if not self.queue_ages:
            return {"edges": [], "counts": []}
        counts, edges = np.histogram(np.asarray(self.queue_ages), bins=bins)
        return {"edges": [float(e) for e in edges], "counts": [int(c) for c in counts]}

    @property
    def slo_attainment(self) -> float | None:
        """Fraction of SLO-carrying requests delivered in time.

        ``None`` when no request carried an SLO (attainment is undefined,
        not perfect).
        """
        if self.slo_total == 0:
            return None
        return self.slo_met / self.slo_total

    @property
    def mixing_index(self) -> float | None:
        """Mean cross-user mixing over dispatched requests.

        0.0 under the ``isolate_sessions`` batch policy (no batch ever
        carries two sessions) and whenever traffic is single-session; up
        to ``(window-1)/window`` when every batch row belongs to a
        different user.  This is the measurable knob the shuffling-privacy
        analyses ask for: how much of the stacked activation a request
        travels with belongs to someone else.

        ``None`` when nothing was dispatched (mixing is undefined, not
        perfect isolation — matching :attr:`slo_attainment`).  Isolated
        or single-session dispatches still record 0.0 fractions, so a
        served-but-unmixed session reads 0.0, never ``None``.
        """
        if not self.mixing_fractions:
            return None
        return float(np.mean(self.mixing_fractions))

    @property
    def mean_anonymity_set(self) -> float | None:
        """Mean distinct sessions per shuffled batch (``None`` if no
        batch was shuffled)."""
        if not self.anonymity_sets:
            return None
        return float(np.mean(self.anonymity_sets))

    def shuffle_amplification(
        self, epsilon0: float, delta: float = 1e-5
    ) -> float | None:
        """Amplified central epsilon from the recorded anonymity sets.

        Evaluates the shuffle-amplification bound (see
        :func:`repro.privacy.shuffle_eval.amplified_epsilon`) at the
        *smallest* recorded anonymity set — the conservative choice: the
        least-mixed shuffled batch bounds what any batch revealed.
        Returns ``None`` when no batch was shuffled.

        Args:
            epsilon0: Per-report local epsilon of the on-device noise.
            delta: Amplification failure probability.
        """
        if not self.anonymity_sets:
            return None
        from repro.privacy.shuffle_eval import amplified_epsilon

        return amplified_epsilon(epsilon0, min(self.anonymity_sets), delta)

    @property
    def mean_occupancy(self) -> float:
        """Mean requests per micro-batch (the batching win)."""
        if not self.occupancies:
            return 0.0
        return float(np.mean(self.occupancies))

    @property
    def requests_per_second(self) -> float:
        """Completed requests per second of serving time."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.requests / self.wall_seconds

    def worker_occupancy(self) -> dict[int, float]:
        """Busy fraction per worker over the session's serving time."""
        if self.wall_seconds <= 0:
            return {worker: 0.0 for worker in self.worker_busy_seconds}
        return {
            worker: busy / self.wall_seconds
            for worker, busy in sorted(self.worker_busy_seconds.items())
        }

    def as_dict(self) -> dict:
        """JSON-friendly summary (used by the serving benchmark)."""
        return {
            "requests": self.requests,
            "samples": self.samples,
            "micro_batches": self.micro_batches,
            "mean_occupancy": self.mean_occupancy,
            "uplink_bytes": self.uplink_bytes,
            "downlink_bytes": self.downlink_bytes,
            "wall_seconds": self.wall_seconds,
            "simulated_wire_seconds": self.simulated_wire_seconds,
            "requests_per_second": self.requests_per_second,
            "latency_p50_ms": 1e3 * self.latency_percentile(50),
            "latency_p90_ms": 1e3 * self.latency_percentile(90),
            "latency_p99_ms": 1e3 * self.latency_percentile(99),
            "queue_age_p50_ms": 1e3 * self.queue_age_percentile(50),
            "queue_age_p90_ms": 1e3 * self.queue_age_percentile(90),
            "slo_total": self.slo_total,
            "slo_attainment": self.slo_attainment,
            "mixing_index": self.mixing_index,
            "shuffled_batches": self.shuffled_batches,
            "mean_anonymity_set": self.mean_anonymity_set,
            "requeued_batches": self.requeued_batches,
            "rejected_requests": self.rejected_requests,
            "shed_requests": self.shed_requests,
            "respawned_workers": self.respawned_workers,
            "pool_size": {
                "samples": len(self.pool_size_samples),
                "min": min(self.pool_size_samples) if self.pool_size_samples else None,
                "max": max(self.pool_size_samples) if self.pool_size_samples else None,
                "mean": (
                    float(np.mean(self.pool_size_samples))
                    if self.pool_size_samples
                    else None
                ),
            },
            "workers": {
                str(worker): {
                    "micro_batches": self.worker_batches.get(worker, 0),
                    "busy_seconds": busy,
                }
                for worker, busy in sorted(self.worker_busy_seconds.items())
            },
        }

    def format(self) -> str:
        """Human-readable multi-line summary."""
        d = self.as_dict()
        lines = [
            f"requests          {d['requests']} ({d['samples']} samples in "
            f"{d['micro_batches']} micro-batches, "
            f"occupancy {d['mean_occupancy']:.2f})",
            f"throughput        {d['requests_per_second']:.0f} req/s "
            f"({d['wall_seconds']*1e3:.1f} ms wall)",
            f"latency           p50 {d['latency_p50_ms']:.2f} ms   "
            f"p90 {d['latency_p90_ms']:.2f} ms   p99 {d['latency_p99_ms']:.2f} ms",
            f"queue age         p50 {d['queue_age_p50_ms']:.2f} ms   "
            f"p90 {d['queue_age_p90_ms']:.2f} ms",
            f"wire              {d['uplink_bytes']/1e6:.3f} MB up / "
            f"{d['downlink_bytes']/1e6:.3f} MB down, "
            f"{d['simulated_wire_seconds']*1e3:.1f} ms simulated",
        ]
        if self.slo_total:
            lines.insert(
                4,
                f"SLO attainment    {self.slo_attainment:.1%} "
                f"({self.slo_met}/{self.slo_total} deadlines met)",
            )
        if self.mixing_fractions:
            lines.append(
                f"cross-user mix    {self.mixing_index:.1%} of batch rows "
                "from other sessions (mean per request)"
            )
        if self.shuffled_batches:
            lines.append(
                f"shuffling         {self.shuffled_batches} micro-batches "
                f"permuted (mean anonymity set "
                f"{self.mean_anonymity_set:.1f} sessions)"
            )
        if self.requeued_batches:
            lines.append(
                f"crash recovery    {self.requeued_batches} micro-batches "
                "requeued after worker loss"
            )
        if self.rejected_requests or self.shed_requests:
            lines.append(
                f"admission         {self.rejected_requests} rejected "
                f"(rate/queue cap), {self.shed_requests} shed "
                "(unmeetable SLO)"
            )
        if self.respawned_workers:
            lines.append(
                f"healing           {self.respawned_workers} workers respawned"
            )
        if self.pool_size_samples:
            lines.append(
                f"pool size         min {min(self.pool_size_samples)}   "
                f"mean {float(np.mean(self.pool_size_samples)):.1f}   "
                f"max {max(self.pool_size_samples)} "
                f"({len(self.pool_size_samples)} samples)"
            )
        if self.worker_busy_seconds:
            occupancy = self.worker_occupancy()
            lines.append(
                "workers           "
                + "   ".join(
                    f"w{worker}: {self.worker_batches.get(worker, 0)} batches "
                    f"({occupancy[worker]:.0%} busy)"
                    for worker in sorted(self.worker_busy_seconds)
                )
            )
        return "\n".join(lines)
