"""Process-sharded serving: N subprocess shards, each a full control plane.

Every earlier serving layer ran in **one interpreter**: the C kernels
release the GIL, but the dispatcher's edge half, noise draws, queueing,
and framing are serialized, so N worker threads never bought N× compute.
This module shards the plane across worker *processes*: the parent
spawns N shard subprocesses, each owning a complete
:class:`~repro.serve.engine.ServingEngine` (executors, noise stream,
metrics), and routes every request by **deterministic session hashing**
(:func:`route_session` — a stable CRC32, never Python's salted
``hash()``).  Activations and logits cross real sockets as the existing
SHRB/SHRD frames inside the length-prefixed transport
(:mod:`repro.serve.transport`).

**Parity strategy (ROADMAP item 3).**  One global noise stream cannot
span processes, so each shard owns its own stream, seeded from
``(base_seed, shard_index)`` via :func:`shard_seed`.  Routing is
deterministic and a session never spans shards, so every shard is
bit-identical to its *own* sequential
:class:`~repro.edge.InferenceSession` reference run over exactly the
subsequence of requests routed to it — the property
``tests/serve/test_sharded_parity.py`` pins for 1/2/4 shards.

**Healing (the PR 6 contract across process boundaries).**  The parent
keeps a per-shard log of every admitted request.  When a shard dies
(:class:`~repro.errors.ShardCrashError` from its socket), the parent
respawns it pre-warmed and replays the **entire** log in original
admission order: replay reproduces the shard's noise draws bit-exactly,
results already delivered to the caller are discarded on re-arrival, and
the remainder completes exactly once, in per-session order.  Admitted
work is never silently dropped.

**Spawn safety.**  A shard subprocess is bootstrapped from a
:class:`ShardSpec` of *plain data only* — model name + state-dict
arrays, cut name, noise member tensors, seeds, and channel parameters.
No live :class:`~repro.edge.Channel`, executor, socket, or thread ever
crosses the process boundary, which is what makes the ``spawn`` start
method (no inherited address space) work identically to ``fork``.
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import os
import select
import socket
import struct
import time
import zlib
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Sequence

import numpy as np

from repro.edge.protocol import (
    BatchActivationMessage,
    BatchPredictionMessage,
    decode_activation_batch,
    decode_prediction_batch,
    encode_activation_batch,
    encode_prediction_batch,
)
from repro.errors import ConfigurationError, ShardCrashError
from repro.serve.metrics import ServingMetrics
from repro.serve.transport import SocketTransport

# ----------------------------------------------------------------------
# Message kinds (first byte of every transport frame)
# ----------------------------------------------------------------------
_MSG_HELLO = 0  # child -> parent: {"shard": i, "token": t} — engine is warm
_MSG_SUBMIT = 1  # parent -> child: header + SHRB activation frame
_MSG_RESULT = 2  # child -> parent: SHRD prediction frame
_MSG_DRAIN = 3  # parent -> child: flush everything
_MSG_DRAINED = 4  # child -> parent: queue and flights are empty
_MSG_METRICS = 5  # parent -> child: send raw metrics
_MSG_METRICS_REPLY = 6  # child -> parent: ServingMetrics.to_payload() JSON
_MSG_SHUTDOWN = 7  # parent -> child: close and exit

_HEADER_LEN = struct.Struct("<I")


def _pack(kind: int, *parts: bytes) -> bytes:
    return bytes([kind]) + b"".join(parts)


def _pack_json(kind: int, payload: dict) -> bytes:
    return _pack(kind, json.dumps(payload).encode("utf-8"))


def _unpack_json(body: bytes) -> dict:
    return json.loads(body.decode("utf-8"))


# ----------------------------------------------------------------------
# Deterministic routing and seeding
# ----------------------------------------------------------------------
def route_session(session_id: Hashable, n_shards: int) -> int:
    """The shard owning ``session_id`` — stable across processes and runs.

    Python's built-in ``hash()`` is salted per process, which would make
    routing (and therefore every shard's noise stream) irreproducible;
    this uses CRC32 of the id's string form instead.

    **Canonicalisation contract** (pinned by
    ``tests/serve/test_sharded_parity.py``): the id is canonicalised
    through ``str()`` before hashing, i.e. the route is
    ``zlib.crc32(str(session_id).encode("utf-8")) % n_shards``.  Two ids
    with equal string forms — ``1`` and ``"1"`` — therefore route to the
    same shard *by design*: the sharded wire header already serialises
    session ids as strings (see ``_send_batch``), so a shard cannot
    distinguish them anyway, and hashing the pre-``str()`` value would
    let the parent and a replaying/healed shard disagree about session
    identity.  Callers who need distinct sessions must use ids with
    distinct string forms.
    """
    if n_shards < 1:
        raise ConfigurationError(f"need >= 1 shard, got {n_shards}")
    return zlib.crc32(str(session_id).encode("utf-8")) % n_shards


def shard_seed(base_seed: int, shard_index: int) -> int:
    """The noise seed of shard ``shard_index`` (and of its sequential
    reference session) — a stable function of the plane's base seed."""
    return int(
        np.random.SeedSequence([int(base_seed), int(shard_index)]).generate_state(1)[0]
    )


# ----------------------------------------------------------------------
# Spawn-safe shard bootstrap
# ----------------------------------------------------------------------
@dataclass
class ShardSpec:
    """Plain-data recipe a shard subprocess rebuilds its engine from.

    Every field is arrays, strings, or numbers — never a live model,
    channel, executor, or socket — so the spec pickles identically under
    ``fork`` and ``spawn``.  Build one with :meth:`capture`.
    """

    model_name: str
    width: float
    model_state: dict[str, np.ndarray]
    cut: str
    mean: np.ndarray
    std: np.ndarray
    noise_tensors: np.ndarray | None  # (members, *activation_shape)
    base_seed: int = 7
    workers: int = 1
    batch_window: int = 8
    max_rows: int | None = None
    batch_timeout: float = 0.0
    deadline_aware: bool = True
    isolate_sessions: bool = False
    quantization: tuple[float, int, int] | None = None
    weight_bits: int | None = None
    kernel_backend: str = "auto"
    shuffle: bool = False
    shuffle_seed: int | None = None
    channel: dict = field(default_factory=dict)  # Channel(**channel) kwargs

    _LIVE_TYPES = ("Channel", "NoiseStream", "ServingEngine", "ControlPlane")

    def __post_init__(self) -> None:
        for name, value in (
            ("channel", self.channel),
            ("quantization", self.quantization),
        ):
            if type(value).__name__ in self._LIVE_TYPES:
                raise ConfigurationError(
                    f"ShardSpec.{name} must be plain data, got a live "
                    f"{type(value).__name__}; pass its parameters instead"
                )
        if self.channel and not isinstance(self.channel, dict):
            raise ConfigurationError(
                "ShardSpec.channel must be a dict of Channel kwargs "
                f"(got {type(self.channel).__name__})"
            )
        if self.workers < 1:
            raise ConfigurationError(f"need >= 1 worker, got {self.workers}")

    @classmethod
    def capture(
        cls,
        model,
        cut: str,
        *,
        mean: np.ndarray,
        std: np.ndarray,
        noise=None,
        width: float | None = None,
        base_seed: int = 7,
        channel: dict | None = None,
        quantization=None,
        **knobs,
    ) -> "ShardSpec":
        """Serialise a live ``(model, cut, noise)`` deployment to plain data.

        Args:
            model: A :class:`~repro.models.SplittableModel` (its name and
                state dict are captured; the live object stays behind).
            noise: A :class:`~repro.core.NoiseCollection` or ``None``.
            width: Channel-width multiplier the model was built with;
                defaults to the current scale's default.
            channel: ``Channel`` constructor kwargs (never the object).
            quantization: A ``QuantizationParams`` or ``(scale, zero
                point, bits)`` tuple.
            knobs: Remaining :class:`ShardSpec` fields (workers,
                batch_window, ...).
        """
        from repro.config import get_scale
        from repro.models import default_width

        if width is None:
            width = default_width(get_scale())
        state = {k: np.asarray(v).copy() for k, v in model.state_dict().items()}
        tensors = None
        if noise is not None:
            tensors = np.stack([s.tensor for s in noise.samples])
        if quantization is not None and not isinstance(quantization, tuple):
            quantization = (
                float(quantization.scale),
                int(quantization.zero_point),
                int(quantization.bits),
            )
        return cls(
            model_name=model.model_name,
            width=float(width),
            model_state=state,
            cut=cut,
            mean=np.asarray(mean, dtype=np.float32).copy(),
            std=np.asarray(std, dtype=np.float32).copy(),
            noise_tensors=tensors,
            base_seed=base_seed,
            channel=channel if channel is not None else {},
            quantization=quantization,
            **knobs,
        )

    def build_engine(self, shard_index: int):
        """Reconstruct this shard's :class:`ServingEngine` (child side)."""
        from repro.core.sampler import NoiseCollection
        from repro.edge.channel import Channel
        from repro.edge.quantization import QuantizationParams
        from repro.models import build_model
        from repro.serve.engine import ServingEngine

        model = build_model(
            self.model_name, np.random.default_rng(0), width=self.width
        )
        model.load_state_dict(self.model_state)
        model.eval()
        model.freeze()
        noise = None
        if self.noise_tensors is not None:
            noise = NoiseCollection(self.noise_tensors.shape[1:])
            for tensor in self.noise_tensors:
                noise.add(tensor, accuracy=0.0, in_vivo_privacy=0.0)
        quantization = None
        if self.quantization is not None:
            scale, zero_point, bits = self.quantization
            quantization = QuantizationParams(
                scale=scale, zero_point=zero_point, bits=bits
            )
        return ServingEngine(
            model,
            self.cut,
            self.mean,
            self.std,
            noise=noise,
            channel=Channel(**self.channel) if self.channel else None,
            rng=np.random.default_rng(shard_seed(self.base_seed, shard_index)),
            workers=self.workers,
            batch_window=self.batch_window,
            max_rows=self.max_rows,
            batch_timeout=self.batch_timeout,
            deadline_aware=self.deadline_aware,
            isolate_sessions=self.isolate_sessions,
            quantization=quantization,
            weight_bits=self.weight_bits,
            kernel_backend=self.kernel_backend,
            shuffle=self.shuffle,
            shuffle_seed=self.shuffle_seed,
        )

    def reference_session(self, shard_index: int, n_shards: int):
        """The sequential reference this shard must be bit-identical to.

        Also used by tests to compute, for a full request stream, the
        subsequence shard ``shard_index`` serves (see
        :func:`route_session`).
        """
        from repro.core.sampler import NoiseCollection
        from repro.edge.device import InferenceSession
        from repro.models import build_model

        model = build_model(
            self.model_name, np.random.default_rng(0), width=self.width
        )
        model.load_state_dict(self.model_state)
        model.eval()
        model.freeze()
        noise = None
        if self.noise_tensors is not None:
            noise = NoiseCollection(self.noise_tensors.shape[1:])
            for tensor in self.noise_tensors:
                noise.add(tensor, accuracy=0.0, in_vivo_privacy=0.0)
        return InferenceSession(
            model,
            self.cut,
            self.mean,
            self.std,
            noise=noise,
            rng=np.random.default_rng(shard_seed(self.base_seed, shard_index)),
            kernel_backend=self.kernel_backend,
            weight_bits=self.weight_bits,
        )


# ----------------------------------------------------------------------
# Shard subprocess
# ----------------------------------------------------------------------
def _shard_main(
    spec: ShardSpec, shard_index: int, address: tuple[str, int], token: str
) -> None:
    """Entry point of one shard subprocess.

    Builds the engine from the spec (slow part: kernel compilation —
    shared across shards via the ``REPRO_KERNEL_DIR`` artifact cache),
    connects back to the parent, announces readiness, then serves until
    shutdown or parent death.
    """
    engine = spec.build_engine(shard_index)
    sock = socket.create_connection(address, timeout=30.0)
    sock.settimeout(None)
    transport = SocketTransport(sock, shard_id=shard_index)
    transport.send(_pack_json(_MSG_HELLO, {"shard": shard_index, "token": token}))

    pending: dict[int, int] = {}  # local id -> global id

    def deliver(local_ids: Iterable[int]) -> None:
        # One SHRD frame per delivery batch: per-frame overhead amortises
        # across every result the pump turn produced.
        local_ids = list(local_ids)
        if not local_ids:
            return
        ids, splits, parts = [], [], []
        for local_id in local_ids:
            logits = engine.result(local_id)
            ids.append(pending.pop(local_id))
            splits.append(logits.shape[0])
            parts.append(logits)
        transport.send(
            _pack(
                _MSG_RESULT,
                encode_prediction_batch(
                    BatchPredictionMessage(
                        request_ids=tuple(ids),
                        splits=tuple(splits),
                        logits=np.ascontiguousarray(
                            np.concatenate(parts, axis=0)
                        ),
                    )
                ),
            )
        )

    # Engine turns are ~100x the cost of a socket read, so the loop
    # drains the inbound socket greedily and only runs the engine when
    # the parent has momentarily stopped streaming (or the admitted
    # backlog passes the high watermark — submissions must not outrun
    # serving without bound).  Partial windows are only force-flushed
    # once the inbound side has been quiet for a grace period: flushing
    # on every momentary socket gap would dispatch fragment batches,
    # each paying a full wire round-trip on latency-bound channels.
    high_watermark = 4 * max(1, spec.batch_window)
    idle_flush = max(spec.batch_timeout, 0.002)
    unpumped = 0
    last_rx = time.monotonic()

    try:
        while True:
            frame = transport.try_recv()
            if frame is None:
                if pending:
                    flush = (time.monotonic() - last_rx) >= idle_flush
                    delivered = engine.pump(flush=flush)
                    deliver(delivered)
                    unpumped = 0
                    # Nothing deliverable means the workers are mid-batch:
                    # yield briefly instead of spinning the GIL away from
                    # them.
                    frame = transport.recv(timeout=0.0 if delivered else 0.0005)
                else:
                    frame = transport.recv(timeout=0.05)
                if frame is None:
                    continue
            last_rx = time.monotonic()
            kind = frame[0]
            body = frame[1:]
            if kind == _MSG_SUBMIT:
                # One SUBMIT frame carries a *batch* of requests (the SHRB
                # format is n-ary already); submitting them in frame order
                # preserves the admission order the noise stream depends on.
                (header_len,) = _HEADER_LEN.unpack_from(body)
                header = _unpack_json(body[4 : 4 + header_len])
                uplink = decode_activation_batch(body[4 + header_len :])
                tensor = np.asarray(uplink.tensor, dtype=np.float32)
                offset = 0
                for global_id, rows, session, slo in zip(
                    uplink.request_ids,
                    uplink.splits,
                    header["sessions"],
                    header["slos"],
                ):
                    local_id = engine.submit(
                        tensor[offset : offset + rows],
                        slo_seconds=slo,
                        session_id=session,
                    )
                    offset += rows
                    pending[local_id] = global_id
                    unpumped += 1
                if unpumped >= high_watermark:
                    deliver(engine.pump())
                    unpumped = 0
            elif kind == _MSG_DRAIN:
                deliver(engine.drain())
                transport.send(_pack_json(_MSG_DRAINED, {"shard": shard_index}))
            elif kind == _MSG_METRICS:
                transport.send(
                    _pack_json(_MSG_METRICS_REPLY, engine.metrics.to_payload())
                )
            elif kind == _MSG_SHUTDOWN:
                break
            else:
                raise ConfigurationError(f"unknown shard message kind {kind}")
    except ShardCrashError:
        pass  # the parent died; nothing left to serve for
    finally:
        engine.close()
        transport.close()


# ----------------------------------------------------------------------
# Parent
# ----------------------------------------------------------------------
@dataclass
class _Logged:
    """One admitted request, retained for crash replay."""

    global_id: int
    images: np.ndarray
    session_id: Hashable | None
    slo_seconds: float | None


class _Shard:
    """Parent-side handle on one shard subprocess."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.process = None
        self.transport: SocketTransport | None = None
        self.log: list[_Logged] = []  # admission-ordered, for replay
        self.staged: list[_Logged] = []  # admitted but not yet on the wire
        self.outstanding: set[int] = set()
        self.discard: set[int] = set()  # replayed ids already delivered
        self.drained = False
        self.generation = 0  # bumps per (re)spawn; guards nested replays
        self.metrics_reply: dict | None = None


class ShardedServingEngine:
    """N subprocess shards behind deterministic session routing.

    Args:
        spec: The spawn-safe deployment recipe every shard builds from.
        shards: Subprocess count (each runs ``spec.workers`` cloud
            worker threads internally).
        start_method: ``fork`` / ``spawn`` / ``forkserver``; ``None``
            uses the platform default.  Both ``fork`` and ``spawn`` are
            supported — the spec carries no live state.
        spawn_timeout: Seconds to wait for a shard to build its engine
            and report ready.
        auto_heal: Respawn dead shards and replay their logs (default).
            When off, a shard death surfaces as
            :class:`~repro.errors.ShardCrashError`.
        coalesce: Submissions per shard to stage before sending one
            multi-request SHRB frame (framing + syscall cost amortise
            across the batch — the parent's routing hot path).  Staged
            requests are flushed by reaching the threshold, by
            :meth:`poll`, or by any control message (drain, metrics,
            shutdown), so nothing is held indefinitely.  Defaults to the
            spec's batch window.
    """

    def __init__(
        self,
        spec: ShardSpec,
        *,
        shards: int = 2,
        start_method: str | None = None,
        spawn_timeout: float = 120.0,
        auto_heal: bool = True,
        coalesce: int | None = None,
    ) -> None:
        if shards < 1:
            raise ConfigurationError(f"need >= 1 shard, got {shards}")
        if coalesce is not None and coalesce < 1:
            raise ConfigurationError(f"need coalesce >= 1, got {coalesce}")
        self.spec = spec
        self.n_shards = shards
        self.auto_heal = auto_heal
        self.coalesce = coalesce or max(1, spec.batch_window)
        self.respawned_shards = 0
        self._spawn_timeout = spawn_timeout
        self._ctx = multiprocessing.get_context(start_method)
        self._token = os.urandom(8).hex()
        self._next_id = itertools.count()
        self._rr = itertools.count()  # round-robin for sessionless requests
        self._results: dict[int, np.ndarray] = {}
        self._closed = False
        self._listener = socket.create_server(("127.0.0.1", 0))
        self._listener.listen(shards)
        self._address = self._listener.getsockname()
        self._shards = [_Shard(i) for i in range(shards)]
        try:
            for shard in self._shards:
                self._spawn(shard)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Shard lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, shard: _Shard) -> None:
        """Start (or restart) one shard and wait until it is warm."""
        process = self._ctx.Process(
            target=_shard_main,
            args=(self.spec, shard.index, self._address, self._token),
            daemon=True,
        )
        process.start()
        deadline = time.monotonic() + self._spawn_timeout
        self._listener.settimeout(1.0)
        while True:
            if time.monotonic() > deadline:
                process.terminate()
                raise ShardCrashError(
                    f"shard {shard.index} did not report ready within "
                    f"{self._spawn_timeout:.0f}s",
                    shard_id=shard.index,
                )
            if not process.is_alive():
                raise ShardCrashError(
                    f"shard {shard.index} died during bootstrap "
                    f"(exit code {process.exitcode})",
                    shard_id=shard.index,
                )
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            transport = SocketTransport(conn, shard_id=shard.index)
            hello = transport.recv(timeout=self._spawn_timeout)
            if hello is None or hello[0] != _MSG_HELLO:
                transport.close()
                continue
            meta = _unpack_json(hello[1:])
            if meta.get("token") != self._token:
                transport.close()  # not ours
                continue
            if meta.get("shard") != shard.index:
                # A concurrent respawn's connection; shouldn't happen —
                # spawns are serialized — so treat as a protocol breach.
                transport.close()
                raise ShardCrashError(
                    f"expected shard {shard.index} on the wire, got "
                    f"{meta.get('shard')}",
                    shard_id=shard.index,
                )
            break
        conn.setblocking(False)
        shard.process = process
        shard.transport = transport
        shard.drained = False
        shard.generation += 1
        shard.metrics_reply = None

    def _heal(self, shard: _Shard) -> None:
        """Respawn a dead shard pre-warmed and replay its admitted log.

        Replaying the *whole* log in admission order reproduces the
        shard's noise stream bit-exactly; results the caller already
        collected re-arrive and are discarded, the rest complete exactly
        once.
        """
        if not self.auto_heal:
            raise ShardCrashError(
                f"shard {shard.index} died (auto_heal off)",
                shard_id=shard.index,
            )
        if shard.transport is not None:
            shard.transport.close()
        if shard.process is not None:
            shard.process.join(timeout=5.0)
            if shard.process.is_alive():
                shard.process.kill()
                shard.process.join(timeout=5.0)
        self._spawn(shard)
        self.respawned_shards += 1
        # Anything staged at crash time is already in the log and will go
        # out with the replay below — sending it twice would desync noise.
        shard.staged = []
        # Everything already delivered (whether or not the caller has
        # collected it) re-arrives during replay and must be dropped.
        shard.discard = {
            logged.global_id
            for logged in shard.log
            if logged.global_id not in shard.outstanding
        }
        generation = shard.generation
        for start in range(0, len(shard.log), self.coalesce):
            self._send_batch(shard, shard.log[start : start + self.coalesce])
            if shard.generation != generation:
                # The shard died again mid-replay; the nested heal already
                # replayed the whole log against the newest incarnation —
                # continuing here would double-submit (and desync noise).
                return

    # ------------------------------------------------------------------
    # Wire helpers
    # ------------------------------------------------------------------
    def _send_batch(self, shard: _Shard, batch: Sequence[_Logged]) -> None:
        """One multi-request SUBMIT frame; heals (and aborts) on peer death."""
        if not batch:
            return
        header = json.dumps(
            {
                "sessions": [
                    None if l.session_id is None else str(l.session_id)
                    for l in batch
                ],
                "slos": [l.slo_seconds for l in batch],
            }
        ).encode("utf-8")
        frame = _pack(
            _MSG_SUBMIT,
            _HEADER_LEN.pack(len(header)),
            header,
            encode_activation_batch(
                BatchActivationMessage(
                    request_ids=tuple(l.global_id for l in batch),
                    splits=tuple(l.images.shape[0] for l in batch),
                    tensor=np.ascontiguousarray(
                        np.concatenate([l.images for l in batch], axis=0),
                        dtype=np.float32,
                    ),
                )
            ),
        )
        try:
            shard.transport.send(frame, on_block=self._absorb_once)
        except ShardCrashError:
            self._heal(shard)  # replays the log, including this batch

    def _flush(self, shard: _Shard) -> None:
        if shard.staged:
            batch, shard.staged = shard.staged, []
            self._send_batch(shard, batch)

    def _absorb_once(self, timeout: float = 0.0) -> list[int]:
        """Drain whatever inbound frames are ready; returns delivered ids."""
        delivered: list[int] = []
        live = [s for s in self._shards if s.transport is not None]
        if not live:
            return delivered
        try:
            ready, _, _ = select.select([s.transport for s in live], [], [], timeout)
        except (OSError, ValueError):
            ready = []
        for transport in ready:
            shard = self._shards[transport.shard_id]
            while True:
                try:
                    frame = shard.transport.try_recv()
                except ShardCrashError:
                    self._heal(shard)
                    break
                if frame is None:
                    break
                delivered.extend(self._handle(shard, frame))
        return delivered

    def _handle(self, shard: _Shard, frame: bytes) -> list[int]:
        kind = frame[0]
        if kind == _MSG_RESULT:
            downlink = decode_prediction_batch(frame[1:])
            delivered: list[int] = []
            offset = 0
            for global_id, rows in zip(downlink.request_ids, downlink.splits):
                logits = downlink.logits[offset : offset + rows]
                offset += rows
                if global_id in shard.discard:
                    shard.discard.remove(global_id)  # replayed duplicate
                    continue
                shard.outstanding.discard(global_id)
                self._results[global_id] = np.array(logits, copy=True)
                delivered.append(global_id)
            return delivered
        if kind == _MSG_DRAINED:
            shard.drained = True
            return []
        if kind == _MSG_METRICS_REPLY:
            shard.metrics_reply = _unpack_json(frame[1:])
            return []
        raise ConfigurationError(f"unknown parent message kind {kind}")

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------
    def route(self, session_id: Hashable | None) -> int:
        """The shard index a request with ``session_id`` is served by."""
        if session_id is None:
            return next(self._rr) % self.n_shards
        return route_session(session_id, self.n_shards)

    def submit(
        self,
        images: np.ndarray,
        *,
        slo_seconds: float | None = None,
        session_id: Hashable | None = None,
    ) -> int:
        """Route one request to its shard; returns the global request id."""
        if self._closed:
            raise ConfigurationError("sharded engine is closed")
        global_id = next(self._next_id)
        shard = self._shards[self.route(session_id)]
        logged = _Logged(
            global_id=global_id,
            images=np.array(images, dtype=np.float32, copy=True),
            session_id=session_id,
            slo_seconds=slo_seconds,
        )
        shard.log.append(logged)
        shard.outstanding.add(global_id)
        shard.staged.append(logged)
        if len(shard.staged) >= self.coalesce:
            self._flush(shard)
            # Results are tiny (one logits row per request); the kernel
            # socket buffers hold thousands, so draining on the flush
            # boundary keeps syscalls off the routing hot path.  A full
            # *outbound* buffer still drains inbound via ``on_block``.
            self._absorb_once()
        return global_id

    def poll(self) -> list[int]:
        """Non-blocking collection; returns newly deliverable ids."""
        for shard in self._shards:
            self._flush(shard)
        return self._absorb_once()

    def drain(self, timeout: float = 300.0) -> list[int]:
        """Flush every shard and wait for all admitted work to deliver."""
        if self._closed:
            raise ConfigurationError("sharded engine is closed")
        delivered: list[int] = []
        deadline = time.monotonic() + timeout
        for shard in self._shards:
            shard.drained = False
        # DRAIN barriers are per-incarnation: a shard healed mid-drain has
        # a fresh engine that never saw the barrier, so track which
        # generation each DRAIN actually reached and re-send on respawn.
        drain_sent: dict[int, int] = {}
        while True:
            for shard in self._shards:
                if not shard.drained and drain_sent.get(shard.index) != shard.generation:
                    self._send_control(shard, _MSG_DRAIN)
                    drain_sent[shard.index] = shard.generation
            remaining = [
                s
                for s in self._shards
                if not s.drained or s.outstanding or s.discard
            ]
            if not remaining:
                return delivered
            if time.monotonic() > deadline:
                raise ShardCrashError(
                    f"drain timed out with {sum(len(s.outstanding) for s in remaining)} "
                    "requests outstanding"
                )
            delivered.extend(self._absorb_once(timeout=0.05))

    def _send_control(self, shard: _Shard, kind: int) -> None:
        # Control messages are ordering barriers: staged submissions must
        # reach the shard before the drain/metrics request does.
        self._flush(shard)
        try:
            shard.transport.send(_pack(kind), on_block=self._absorb_once)
        except ShardCrashError:
            self._heal(shard)
            shard.drained = False
            shard.transport.send(_pack(kind), on_block=self._absorb_once)

    def result(self, request_id: int) -> np.ndarray:
        """Collect (and release) a delivered request's logits."""
        if request_id not in self._results:
            raise ConfigurationError(
                f"request {request_id} has no deliverable result (still in "
                "flight, unknown, or already collected)"
            )
        return self._results.pop(request_id)

    def infer_stream(
        self,
        stream: Iterable[np.ndarray] | Sequence[np.ndarray],
        *,
        slo_seconds: float | Sequence[float | None] | None = None,
        session_ids: Sequence[Hashable] | None = None,
    ) -> list[np.ndarray]:
        """Submit a whole stream, drain it, return logits in order."""
        stream = list(stream)
        if slo_seconds is None or np.isscalar(slo_seconds):
            slos: list = [slo_seconds] * len(stream)
        else:
            slos = list(slo_seconds)
        if session_ids is None:
            sessions: list = [None] * len(stream)
        else:
            sessions = list(session_ids)
        ids = [
            self.submit(images, slo_seconds=slo, session_id=session)
            for images, slo, session in zip(stream, slos, sessions)
        ]
        self.drain()
        return [self.result(request_id) for request_id in ids]

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def metrics(self, timeout: float = 30.0) -> ServingMetrics:
        """One merged view over every shard's raw metrics."""
        for shard in self._shards:
            shard.metrics_reply = None
            self._send_control(shard, _MSG_METRICS)
        deadline = time.monotonic() + timeout
        while any(s.metrics_reply is None for s in self._shards):
            if time.monotonic() > deadline:
                raise ShardCrashError("metrics collection timed out")
            self._absorb_once(timeout=0.05)
        return ServingMetrics.merge(
            [ServingMetrics.from_payload(s.metrics_reply) for s in self._shards]
        )

    def shard_pids(self) -> list[int]:
        """Live shard process ids (fault-injection tests kill these)."""
        return [s.process.pid for s in self._shards if s.process is not None]

    @property
    def outstanding(self) -> int:
        """Admitted requests not yet delivered."""
        return sum(len(s.outstanding) for s in self._shards)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            if shard.transport is not None:
                try:
                    shard.transport.send(_pack(_MSG_SHUTDOWN))
                except ShardCrashError:
                    pass
        for shard in self._shards:
            if shard.process is not None:
                shard.process.join(timeout=5.0)
                if shard.process.is_alive():
                    shard.process.kill()
                    shard.process.join(timeout=5.0)
            if shard.transport is not None:
                shard.transport.close()
            shard.transport = None
            shard.process = None
        self._listener.close()

    def __enter__(self) -> "ShardedServingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass
