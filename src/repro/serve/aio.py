"""Asyncio facade over the serving control plane.

The serving stack is deliberately thread-based (the dispatcher owns the
noise stream; cloud workers are a thread pool), but a modern serving
front door wants ``async``: many concurrent logical callers multiplexed
onto one event loop, each just ``await``-ing its result.
:class:`AsyncServingClient` bridges the two worlds without touching the
engine's concurrency story:

* a single background **dispatcher thread** owns every interaction with
  the wrapped :class:`~repro.serve.controlplane.ControlPlane` (submission,
  pumping, result collection) — so the plane's single-owner noise stream
  and single-threaded dispatch invariants hold exactly as they do under
  synchronous use;
* ``await client.submit(images, ...)`` enqueues the request through a
  thread-safe inbox and suspends on an :class:`asyncio.Future` that the
  dispatcher resolves via ``loop.call_soon_threadsafe`` when the plane
  delivers;
* **backpressure** is a bounded in-flight budget: at most ``max_pending``
  requests may be admitted-but-unfinished, enforced with an
  :class:`asyncio.Semaphore` — the ``(max_pending + 1)``-th ``submit``
  suspends until a result frees a slot, so a slow engine propagates
  pressure to producers instead of buffering without bound;
* a **cancelled** caller releases its backpressure slot immediately and
  its result is dropped on delivery (the future's ``done()`` state is
  checked before resolution) — cancellation never wedges the dispatcher
  or other callers.

The facade must be the plane's first (and only) driver: the dispatcher
thread becomes the owner of each deployment's noise stream on first
dispatch.  Wrap a freshly built plane/engine, or ``release()`` its
streams first.

Two elastic-lifecycle bridges ride on the same dispatcher thread:

* **typed overload rejections** — when a deployment's admission gate
  refuses a submission, only *that* caller's ``await`` raises the
  :class:`~repro.errors.AdmissionError` /
  :class:`~repro.errors.OverloadError` (429-style); every other caller
  is untouched;
* **control ops** — :meth:`AsyncServingClient.control` runs an arbitrary
  plane operation (:meth:`~repro.serve.controlplane.ControlPlane.swap`,
  :meth:`~repro.serve.controlplane.ControlPlane.unregister`,
  :meth:`~repro.serve.controlplane.ControlPlane.scale_to`, ...) on the
  dispatcher thread — the only thread allowed to touch the plane — and
  returns its result to the awaiting caller.  After each op the client
  sweeps its outstanding requests: results delivered during a drain
  barrier resolve immediately, and requests whose deployment was
  unregistered fail with a typed error instead of hanging.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass
from queue import Empty, SimpleQueue
from typing import Callable, Hashable

import numpy as np

from repro.errors import ConfigurationError
from repro.serve.controlplane import ControlPlane, RequestHandle


@dataclass
class _Submission:
    """One caller's request travelling from the event loop to the plane."""

    images: np.ndarray
    deployment: str | None
    slo_seconds: float | None
    session_id: Hashable | None
    future: asyncio.Future
    loop: asyncio.AbstractEventLoop


@dataclass
class _ControlOp:
    """One lifecycle operation bound for the dispatcher thread."""

    fn: Callable[[ControlPlane], object]
    future: asyncio.Future
    loop: asyncio.AbstractEventLoop


class AsyncServingClient:
    """``async submit()/await`` front-end over a serving control plane.

    Args:
        plane: The control plane (or single-deployment
            :class:`~repro.serve.engine.ServingEngine`) to serve through.
            The client drives it but does not own it: :meth:`close` stops
            the dispatcher thread and leaves the plane open unless
            ``close_plane=True``.
        max_pending: Bounded-queue backpressure: maximum requests admitted
            and not yet completed before ``submit`` suspends.
        poll_interval: Dispatcher idle sleep between pump turns (seconds);
            bounds added latency when the plane is quiet.

    One client binds to one event loop (the loop of its first ``submit``).

    Failure semantics: a worker error surfacing from the plane fails
    *every* outstanding ``await`` with that exception (the plane cannot
    attribute in-flight losses to callers), after which the client keeps
    accepting new submissions — matching the engine's own
    keep-serving-after-failure contract.
    """

    def __init__(
        self,
        plane: ControlPlane,
        *,
        max_pending: int = 64,
        poll_interval: float = 0.0005,
    ) -> None:
        if max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if poll_interval < 0:
            raise ConfigurationError(
                f"poll_interval must be >= 0, got {poll_interval}"
            )
        self._plane = plane
        self.max_pending = max_pending
        self._poll_interval = poll_interval
        self._inbox: SimpleQueue[_Submission] = SimpleQueue()
        self._controls: SimpleQueue[_ControlOp] = SimpleQueue()
        self._stop = threading.Event()
        self._closed = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._semaphore: asyncio.Semaphore | None = None
        #: Requests admitted and not yet resolved (loop-thread view).
        self.pending = 0
        #: High-water mark of :attr:`pending` — lets tests assert the
        #: backpressure bound actually engaged.
        self.peak_pending = 0
        self._thread = threading.Thread(
            target=self._run, name="shredder-async-dispatcher", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # Event-loop side
    # ------------------------------------------------------------------
    def _bind_loop(self) -> asyncio.Semaphore:
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
            self._semaphore = asyncio.Semaphore(self.max_pending)
        elif self._loop is not loop:
            raise ConfigurationError(
                "AsyncServingClient is bound to the event loop of its "
                "first submit; create one client per loop"
            )
        return self._semaphore

    async def submit(
        self,
        images: np.ndarray,
        *,
        deployment: str | None = None,
        slo_seconds: float | None = None,
        session_id: Hashable | None = None,
    ) -> np.ndarray:
        """Serve one request; returns its logits.

        Suspends while the in-flight budget (``max_pending``) is
        exhausted, then until the plane delivers the result.  Cancelling
        the awaiting task releases its budget slot immediately; the
        already-submitted request still executes (its result is dropped).
        """
        if self._closed:
            raise ConfigurationError("async serving client is closed")
        semaphore = self._bind_loop()
        await semaphore.acquire()
        if self._closed:
            # close() ran while this caller was suspended on backpressure;
            # the dispatcher is gone, so enqueueing would hang forever.
            semaphore.release()
            raise ConfigurationError("async serving client is closed")
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self.pending += 1
        self.peak_pending = max(self.peak_pending, self.pending)
        self._inbox.put(
            _Submission(
                images=images,
                deployment=deployment,
                slo_seconds=slo_seconds,
                session_id=session_id,
                future=future,
                loop=loop,
            )
        )
        try:
            return await future
        finally:
            self.pending -= 1
            semaphore.release()

    async def classify(self, images: np.ndarray, **kwargs) -> np.ndarray:
        """Predicted labels for one request."""
        logits = await self.submit(images, **kwargs)
        return logits.argmax(axis=1)

    async def control(self, fn: Callable[[ControlPlane], object]) -> object:
        """Run one lifecycle operation on the dispatcher thread.

        ``fn(plane)`` executes between serving turns on the only thread
        allowed to touch the plane, so drain barriers, swaps, pool
        resizes, and metric reads never race the dispatcher.  Returns
        ``fn``'s result (or raises its exception) to this caller only.

        Control ops bypass the submission backpressure budget — an
        operator must be able to shed/resize even when the plane is
        saturated.
        """
        if self._closed:
            raise ConfigurationError("async serving client is closed")
        self._bind_loop()
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._controls.put(_ControlOp(fn=fn, future=future, loop=loop))
        return await future

    async def swap(self, name: str, **kwargs) -> list[RequestHandle]:
        """Hot-swap a deployment under live traffic (see
        :meth:`~repro.serve.controlplane.ControlPlane.swap`)."""
        return await self.control(lambda plane: plane.swap(name, **kwargs))

    async def unregister(self, name: str, **kwargs) -> dict[int, np.ndarray]:
        """Remove a deployment under live traffic (see
        :meth:`~repro.serve.controlplane.ControlPlane.unregister`).

        Outstanding ``await``\\ s on the removed deployment resolve if
        their result was delivered by the drain barrier and fail with a
        typed :class:`~repro.errors.ConfigurationError` otherwise —
        never a hang.
        """
        return await self.control(lambda plane: plane.unregister(name, **kwargs))

    # ------------------------------------------------------------------
    # Dispatcher thread
    # ------------------------------------------------------------------
    def _run(self) -> None:
        pending: dict[RequestHandle, _Submission] = {}
        while True:
            progressed = self._admit(pending)
            progressed = self._apply_controls(pending) or progressed
            # The whole serving turn sits under one guard: an exception
            # anywhere (worker failure, fault exhaustion, a handle
            # collected behind our back) must fail the waiting callers,
            # never silently kill this thread and wedge them.
            try:
                for handle in self._plane.pump_handles(
                    flush=self._stop.is_set()
                ):
                    logits = self._plane.result_for(handle)
                    submission = pending.pop(handle, None)
                    if submission is not None:
                        self._resolve(submission, logits)
                    progressed = True
            except BaseException as exc:
                # Salvage what already completed (results delivered in the
                # same turn, or by an earlier batch, stay collectable);
                # everything else fails with the serving error.
                for handle, submission in list(pending.items()):
                    try:
                        logits = self._plane.result_for(handle)
                    except BaseException:
                        self._reject(submission, exc)
                    else:
                        self._resolve(submission, logits)
                pending.clear()
            if (
                self._stop.is_set()
                and not pending
                and self._inbox.empty()
                and self._controls.empty()
                and not self._plane.pending
                and not self._plane.in_flight
            ):
                return
            if not progressed:
                time.sleep(self._poll_interval)

    def _admit(self, pending: dict[RequestHandle, _Submission]) -> bool:
        """Move inbox submissions onto the plane (dispatcher thread)."""
        progressed = False
        while True:
            try:
                submission = self._inbox.get_nowait()
            except Empty:
                return progressed
            try:
                handle = self._plane.router.route(
                    submission.images,
                    deployment=submission.deployment,
                    slo_seconds=submission.slo_seconds,
                    session_id=submission.session_id,
                )
            except BaseException as exc:  # bad request: fail only its caller
                self._reject(submission, exc)
                continue
            pending[handle] = submission
            progressed = True

    def _apply_controls(
        self, pending: dict[RequestHandle, _Submission]
    ) -> bool:
        """Run queued lifecycle ops on the plane (dispatcher thread)."""
        progressed = False
        while True:
            try:
                op = self._controls.get_nowait()
            except Empty:
                return progressed
            progressed = True
            outcome = None
            try:
                outcome = op.fn(self._plane)
            except BaseException as exc:  # op failed: fail only its caller
                self._reject(op, exc)
            else:
                self._resolve(op, outcome)
            self._sweep(
                pending, outcome if isinstance(outcome, dict) else None
            )

    def _sweep(
        self,
        pending: dict[RequestHandle, _Submission],
        leftovers: dict | None = None,
    ) -> None:
        """Settle outstanding callers a lifecycle op just affected: drain
        barriers deliver results early; unregister removes the tenant, in
        which case drained results survive in the op's ``leftovers`` dict
        and still resolve their callers — anything else fails typed, so
        no ``await`` ever hangs on a removed deployment."""
        for handle, submission in list(pending.items()):
            if handle.deployment not in self._plane.registry:
                del pending[handle]
                result = (
                    None if leftovers is None
                    else leftovers.get(handle.request_id)
                )
                if result is not None:
                    self._resolve(submission, result)
                else:
                    self._reject(
                        submission,
                        ConfigurationError(
                            f"deployment {handle.deployment!r} was "
                            f"unregistered while request "
                            f"{handle.request_id} was outstanding"
                        ),
                    )
            elif self._plane.has_result(handle):
                del pending[handle]
                self._resolve(submission, self._plane.result_for(handle))

    @staticmethod
    def _resolve(submission: _Submission, logits: np.ndarray) -> None:
        def deliver() -> None:
            if not submission.future.done():  # cancelled callers: drop
                submission.future.set_result(logits)

        try:
            submission.loop.call_soon_threadsafe(deliver)
        except RuntimeError:  # loop already closed; nobody is listening
            pass

    @staticmethod
    def _reject(submission: _Submission, exc: BaseException) -> None:
        def deliver() -> None:
            if not submission.future.done():
                submission.future.set_exception(exc)

        try:
            submission.loop.call_soon_threadsafe(deliver)
        except RuntimeError:  # pragma: no cover - loop already closed
            pass

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, *, close_plane: bool = False, timeout: float = 30.0) -> None:
        """Stop the dispatcher (drains outstanding work first).

        Thread-join runs under ``try/finally`` with the optional plane
        shutdown, so neither step can leak the other's resources on an
        exception path.  Safe to call from any thread except the
        dispatcher itself; idempotent.
        """
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        try:
            self._thread.join(timeout)
        finally:
            if close_plane:
                self._plane.close()

    async def aclose(self, *, close_plane: bool = False) -> None:
        """Async :meth:`close` (joins the dispatcher off the event loop)."""
        await asyncio.to_thread(self.close, close_plane=close_plane)

    async def __aenter__(self) -> "AsyncServingClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()
