"""Admission control for the elastic serving control plane.

Under overload a serving system has exactly three honest options: queue
(and blow every tenant's tail), shed implicitly (silent drops, broken
clients), or reject explicitly at the front door.  This module implements
the third — the 429-style contract of the control plane
(:mod:`repro.serve.controlplane`):

* :class:`TokenBucket` — the classic rate limiter: a bucket of ``burst``
  tokens refilled continuously at ``rate_rps`` tokens per second.  A
  request is admitted iff a token is available, so sustained admission
  can never exceed the configured rate and short bursts up to the bucket
  capacity are absorbed without rejection.  The bucket is a pure function
  of the caller-supplied clock (``now``), so the identical code path runs
  against the wall clock in the live plane and against a deterministic
  virtual clock in the property-based test suite
  (``tests/serve/test_admission.py`` pins the never-admits-above-rate and
  monotone-refill invariants with hypothesis).

* :class:`AdmissionController` — one deployment's admission gate,
  combining the token bucket with a pending-queue cap (``max_pending``)
  and optional deadline-based shedding (reject a request whose SLO is
  already unmeetable given the current backlog and the measured batch
  service time — the feedforward term the control plane computes from its
  batcher's service EWMA and the pool size).  Rejections surface as typed
  :class:`~repro.errors.AdmissionError` (rate / queue capacity) or
  :class:`~repro.errors.OverloadError` (deadline shed); a request that
  passes the gate is *admitted* and will be served exactly once, in
  order, bit-identically — the plane never sheds after admission.

Checks are ordered so that a request rejected by the queue cap or shed on
its deadline does **not** consume a token: tokens meter admitted work,
not offered work.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.errors import AdmissionError, ConfigurationError, OverloadError


class TokenBucket:
    """Continuous-refill token bucket.

    Args:
        rate_rps: Sustained admission rate (tokens added per second).
        burst: Bucket capacity (maximum tokens; the largest burst admitted
            without rejection).  Defaults to one second's worth of tokens,
            but never less than one token.
        clock: Default time source for calls that do not pass ``now``;
            defaults to ``time.monotonic``.  Passing explicit ``now``
            values (as the control plane and the test suite do) makes the
            bucket fully deterministic.

    The bucket starts full.  Time moving backwards is ignored (refill is
    monotone): a stale ``now`` neither refunds nor drains tokens.
    """

    def __init__(
        self,
        rate_rps: float,
        burst: float | None = None,
        *,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if rate_rps <= 0:
            raise ConfigurationError(
                f"admission rate must be positive, got {rate_rps}"
            )
        if burst is not None and burst < 1:
            raise ConfigurationError(
                f"admission burst must be >= 1 token, got {burst}"
            )
        self.rate_rps = float(rate_rps)
        self.burst = float(burst) if burst is not None else max(1.0, self.rate_rps)
        self._clock = clock or time.monotonic
        self._tokens = self.burst
        self._updated: float | None = None

    def _refill(self, now: float) -> None:
        if self._updated is None:
            self._updated = now
            return
        if now <= self._updated:  # monotone: never drain on clock skew
            return
        self._tokens = min(
            self.burst, self._tokens + (now - self._updated) * self.rate_rps
        )
        self._updated = now

    def available(self, now: float | None = None) -> float:
        """Tokens available at ``now`` (refills first)."""
        self._refill(self._clock() if now is None else now)
        return self._tokens

    def try_acquire(self, now: float | None = None, tokens: float = 1.0) -> bool:
        """Admit ``tokens`` worth of work if the bucket allows it.

        Returns ``True`` (and debits the bucket) when at least ``tokens``
        are available; ``False`` leaves the bucket untouched.
        """
        if tokens <= 0:
            raise ConfigurationError(f"must acquire > 0 tokens, got {tokens}")
        self._refill(self._clock() if now is None else now)
        if self._tokens + 1e-12 < tokens:  # float-dust tolerance on refill math
            return False
        self._tokens -= tokens
        return True


class AdmissionController:
    """One deployment's admission gate (queue cap + rate + deadline shed).

    Args:
        max_pending: Reject (:class:`~repro.errors.AdmissionError`) when
            this many requests are already queued for the deployment.
            ``None`` disables the cap.
        rate_rps: Sustained admission rate enforced by a
            :class:`TokenBucket`; ``None`` disables rate limiting.
        burst: Token-bucket capacity (see :class:`TokenBucket`).
        shed_unmeetable: When ``True``, a request carrying an SLO is shed
            (:class:`~repro.errors.OverloadError`) if the plane's
            predicted completion delay already exceeds it — rejecting
            doomed work at the door keeps the pool for requests that can
            still meet their deadlines.
        clock: Default time source for the bucket (overridden by explicit
            ``now`` arguments).
    """

    def __init__(
        self,
        *,
        max_pending: int | None = None,
        rate_rps: float | None = None,
        burst: float | None = None,
        shed_unmeetable: bool = False,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if max_pending is not None and max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if rate_rps is None and burst is not None:
            raise ConfigurationError(
                "admission burst is a token-bucket knob; set rate_rps too"
            )
        self.max_pending = max_pending
        self.shed_unmeetable = bool(shed_unmeetable)
        self.bucket = (
            TokenBucket(rate_rps, burst, clock=clock)
            if rate_rps is not None
            else None
        )

    def check(
        self,
        *,
        now: float,
        pending: int,
        predicted_delay_seconds: float | None = None,
        slo_seconds: float | None = None,
    ) -> None:
        """Admit one request or raise the matching typed rejection.

        Args:
            now: Current time on the plane's clock (drives bucket refill).
            pending: Requests currently queued for the deployment.
            predicted_delay_seconds: The plane's estimate of this
                request's completion delay (window close wait + backlog
                batches over the live pool at the measured service time);
                ``None`` disables the deadline check for this call.
            slo_seconds: The request's latency SLO, if it carries one.

        Raises:
            AdmissionError: Queue cap reached, or the token bucket is out
                of tokens.
            OverloadError: ``shed_unmeetable`` is set and the predicted
                delay already exceeds the request's SLO.
        """
        if self.max_pending is not None and pending >= self.max_pending:
            raise AdmissionError(
                f"admission refused: {pending} requests already pending "
                f"(max_pending={self.max_pending}); retry after backlog drains"
            )
        if (
            self.shed_unmeetable
            and slo_seconds is not None
            and predicted_delay_seconds is not None
            and predicted_delay_seconds > slo_seconds
        ):
            raise OverloadError(
                f"request shed: predicted completion delay "
                f"{predicted_delay_seconds * 1e3:.1f} ms already exceeds the "
                f"{slo_seconds * 1e3:.1f} ms SLO; serving it would miss its "
                "deadline and delay admissible work"
            )
        if self.bucket is not None and not self.bucket.try_acquire(now):
            raise AdmissionError(
                f"admission refused: deployment rate limit "
                f"({self.bucket.rate_rps:g} req/s, burst "
                f"{self.bucket.burst:g}) exhausted"
            )
