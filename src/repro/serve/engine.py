"""Deadline-aware, multi-worker split-inference serving engine.

This grows PR 2's single-threaded FIFO micro-batcher into a serving
topology with three moving parts:

* the **dispatcher** (the caller's thread) forms micro-batches with the
  deadline-aware :class:`~repro.serve.scheduler.AdaptiveBatcher`, runs the
  *edge* half — local forward, per-request noise draws, frame encoding —
  and hands encoded uplink frames to the pool;
* a pool of **cloud workers** (``workers`` threads, each with its own
  :class:`~repro.edge.device.CloudServer` over the shared remote weights
  and its own :class:`~repro.edge.channel.Channel` clone) transmits,
  decodes, runs the remote half, and ships the downlink frame — concurrent
  micro-batches overlap their wire waits and (on multi-core hosts) their
  remote compute;
* the dispatcher **collector** demultiplexes finished batches in whatever
  order workers complete them and releases results under a per-session
  ordering gate: within one ``session_id``, responses always become
  available in submission order.

Reproducibility under concurrency is *by construction*, not by luck: the
dispatcher is the single owner of the noise-sampling generator
(:class:`~repro.core.sampler.NoiseStream` enforces this), and it draws each
request's noise members in arrival order before any worker touches the
batch.  Worker scheduling therefore cannot perturb a single bit of any
result, which is what the multi-worker parity suite
(``tests/serve/test_multiworker_parity.py``) pins down: bit-identical
logits vs. the sequential :class:`~repro.edge.InferenceSession` for every
worker count.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from queue import SimpleQueue
from typing import Callable, Hashable, Iterable, Sequence

import numpy as np

from repro.core.sampler import NoiseCollection, NoiseStream
from repro.edge.channel import Channel
from repro.edge.costs import cut_cost
from repro.edge.device import CloudServer, EdgeDevice, SessionReport
from repro.edge.protocol import (
    BatchPredictionMessage,
    decode_activation_batch,
    decode_prediction_batch,
    encode_activation_batch,
    encode_prediction_batch,
)
from repro.edge.quantization import QuantizationParams
from repro.errors import ConfigurationError
from repro.models.base import SplittableModel
from repro.serve.metrics import ServingMetrics
from repro.serve.queue import InferenceRequest, RequestQueue
from repro.serve.scheduler import AdaptiveBatcher


@dataclass
class _WorkerContext:
    """One cloud worker's private runtime (executor scratch + channel)."""

    worker_id: int
    server: CloudServer
    channel: Channel


@dataclass
class _ServiceResult:
    """What a worker hands back to the collector for one micro-batch."""

    worker_id: int
    decoded: BatchPredictionMessage
    downlink_bytes: int
    wire_seconds: float
    busy_seconds: float


@dataclass
class _Flight:
    """One dispatched micro-batch awaiting its worker."""

    seq: int
    window: list[InferenceRequest]
    future: Future
    uplink_bytes: int


class ServingEngine:
    """Deadline-aware multi-worker serving over a split backbone.

    Args:
        model: The full backbone (used for splitting and cost bookkeeping).
        cut: Cut-point name.
        mean / std: Input normalisation constants.
        noise: Noise collection for the edge device (optional).
        channel: Link prototype; every worker serves over its own clone
            (same parameters, private statistics).  Default: fast clean
            link.
        rng: Noise-sampling randomness (shared stream with the sequential
            reference path for parity); a generator or a
            :class:`~repro.core.sampler.NoiseStream`.
        workers: Cloud worker threads draining micro-batches concurrently.
        batch_window: Maximum requests stacked per micro-batch.
        max_rows: Optional cap on image rows per micro-batch.
        batch_timeout: Longest the head request waits for its window to
            fill (seconds on ``clock``).
        deadline_aware: Close windows on SLO slack (default); ``False``
            gives the fixed-window baseline policy.
        quantization: Optional affine code for the stacked uplink payload.
        kernel_backend: Forward-executor backend (``"auto"`` / ``"native"``
            / ``"numpy"``), selected **once here** and applied to the edge
            device and every cloud worker, so batched and sequential paths
            always run the same kernels (the bit-parity contract; see
            :mod:`repro.edge.executor`).
        clock: Time source for queueing/deadline decisions and latency
            accounting; defaults to the wall clock.  Workers always
            measure their busy time on the wall clock.
    """

    def __init__(
        self,
        model: SplittableModel,
        cut: str,
        mean: np.ndarray,
        std: np.ndarray,
        noise: NoiseCollection | None = None,
        channel: Channel | None = None,
        rng: np.random.Generator | NoiseStream | None = None,
        *,
        workers: int = 1,
        batch_window: int = 8,
        max_rows: int | None = None,
        batch_timeout: float = 0.005,
        deadline_aware: bool = True,
        quantization: QuantizationParams | None = None,
        kernel_backend: str = "auto",
        clock: Callable[[], float] | None = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"need >= 1 cloud worker, got {workers}")
        local, remote = model.split(cut)
        self.noise_stream = rng if isinstance(rng, NoiseStream) else NoiseStream(rng)
        self.device = EdgeDevice(local, mean, std, noise, self.noise_stream,
                                 quantization, kernel_backend=kernel_backend)
        self.workers = workers
        self.cut = cut
        self.batch_window = batch_window
        self._clock = clock or time.perf_counter
        self.queue = RequestQueue(clock=self._clock)
        self.batcher = AdaptiveBatcher(
            self.queue,
            batch_window,
            max_rows=max_rows,
            batch_timeout=batch_timeout,
            deadline_aware=deadline_aware,
        )
        prototype = channel or Channel()
        self._contexts: SimpleQueue[_WorkerContext] = SimpleQueue()
        self._worker_channels: list[Channel] = []
        # Pre-size every executor for every batch geometry the planner's
        # window can produce (deadline-aware closing ships partial
        # windows, so sizes 1..batch_window all occur): scratch buffers
        # and compiled native programs exist before the first request
        # arrives, keeping allocation/lowering jitter out of the serving
        # latency percentiles.  Multi-row requests beyond the window
        # still lower lazily on first sight.
        activation_shapes = [
            self.device._executor.warm((rows, *model.input_shape))
            for rows in range(1, batch_window + 1)
        ]
        servers = [CloudServer(remote, kernel_backend) for _ in range(workers)]
        for server in servers:
            for shape in activation_shapes:
                server._executor.warm(shape)
        for worker_id, server in enumerate(servers):
            worker_channel = prototype.clone()
            self._worker_channels.append(worker_channel)
            self._contexts.put(
                _WorkerContext(worker_id, server, worker_channel)
            )
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="shredder-cloud"
        )
        self._edge_cost = cut_cost(model, cut)
        self._flights: deque[_Flight] = deque()
        self._next_seq = 0
        self._computed: dict[int, np.ndarray] = {}
        self._deliverable: dict[int, np.ndarray] = {}
        self._session_waiting: dict[Hashable, deque[InferenceRequest]] = {}
        self.metrics = ServingMetrics()
        self._span_start: float | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------
    def submit(
        self,
        images: np.ndarray,
        *,
        slo_seconds: float | None = None,
        session_id: Hashable | None = None,
    ) -> int:
        """Enqueue one request; returns the id to collect the result with."""
        return self.queue.submit(
            images, slo_seconds=slo_seconds, session_id=session_id
        )

    @property
    def pending(self) -> int:
        """Requests waiting in the queue (not yet dispatched)."""
        return len(self.queue)

    @property
    def in_flight(self) -> int:
        """Micro-batches dispatched to workers and not yet collected."""
        return len(self._flights)

    def pump(self, *, flush: bool = False) -> list[int]:
        """One dispatcher turn: dispatch ready windows, collect finished
        batches, and return the ids that became deliverable (per-session
        submission order within each session).

        Non-blocking: finished micro-batches are absorbed in completion
        order; unfinished ones stay in flight.

        Args:
            flush: Close partial windows immediately instead of waiting
                out deadline slack / the batching timeout.
        """
        self._dispatch_ready(flush=flush)
        return self._collect(block=False)

    def next_action_time(self) -> float | None:
        """When the scheduler next needs this engine pumped (queue's clock).

        ``None`` when the queue is empty; a serving loop sleeps (or a
        virtual-time driver jumps) to this instant before calling
        :meth:`pump` again.
        """
        return self.batcher.close_time()

    def drain(self) -> list[int]:
        """Flush the queue, wait for every worker, deliver everything.

        Returns all ids delivered during the drain.  ``metrics.wall_seconds``
        tracks the serving span (first dispatch to latest delivery) for
        both this and the :meth:`pump`-driven path.
        """
        delivered: list[int] = []
        while self.queue or self._flights:
            self._dispatch_ready(flush=True)
            delivered.extend(self._collect(block=bool(self._flights)))
        return delivered

    def result(self, request_id: int) -> np.ndarray:
        """Collect (and release) the logits of a delivered request.

        A request is *delivered* once computed **and** every earlier
        request of its session has been delivered — the per-session
        ordering contract.
        """
        if request_id not in self._deliverable:
            raise ConfigurationError(
                f"request {request_id} has no deliverable result (still "
                "queued or in flight, gated behind an earlier request of "
                "its session, unknown, or already collected)"
            )
        return self._deliverable.pop(request_id)

    # ------------------------------------------------------------------
    # Stream convenience API
    # ------------------------------------------------------------------
    def infer_stream(
        self,
        stream: Iterable[np.ndarray] | Sequence[np.ndarray],
        *,
        slo_seconds: float | Sequence[float | None] | None = None,
        session_ids: Sequence[Hashable] | None = None,
    ) -> list[np.ndarray]:
        """Submit a whole request stream, drain it, and return per-request
        logits in submission order.

        Args:
            stream: Per-request image batches.
            slo_seconds: One SLO for every request (scalar) or one per
                request (sequence, ``None`` entries = no SLO).
            session_ids: Optional per-request session keys.
        """
        stream = list(stream)
        if slo_seconds is None or np.isscalar(slo_seconds):
            slos = [slo_seconds] * len(stream)
        else:
            slos = list(slo_seconds)
            if len(slos) != len(stream):
                raise ConfigurationError(
                    f"{len(slos)} SLOs for {len(stream)} requests"
                )
        if session_ids is None:
            sessions: list[Hashable] = [None] * len(stream)
        else:
            sessions = list(session_ids)
            if len(sessions) != len(stream):
                raise ConfigurationError(
                    f"{len(sessions)} session ids for {len(stream)} requests"
                )
        ids = [
            self.submit(images, slo_seconds=slo, session_id=session)
            for images, slo, session in zip(stream, slos, sessions)
        ]
        self.drain()
        return [self.result(request_id) for request_id in ids]

    def classify_stream(
        self,
        stream: Iterable[np.ndarray] | Sequence[np.ndarray],
        **kwargs,
    ) -> list[np.ndarray]:
        """Predicted labels per request, in submission order."""
        return [
            logits.argmax(axis=1)
            for logits in self.infer_stream(stream, **kwargs)
        ]

    # ------------------------------------------------------------------
    # Dispatch (dispatcher thread only)
    # ------------------------------------------------------------------
    def _dispatch_ready(self, *, flush: bool) -> None:
        if self._closed:
            raise ConfigurationError("serving engine is closed")
        now = self._clock()
        while True:
            window = self.batcher.next_batch(now, flush=flush)
            if not window:
                return
            self._dispatch(window, now)

    def _dispatch(self, window: list[InferenceRequest], now: float) -> None:
        if self._span_start is None:
            self._span_start = now
        for request in window:
            self.metrics.queue_ages.append(now - request.submitted_at)
            self._session_waiting.setdefault(
                request.ordering_key, deque()
            ).append(request)
        # Edge half in the dispatcher: the noise stream has exactly one
        # owner, and draws happen in arrival order — the parity contract.
        message = self.device.forward_batch(
            [request.images for request in window],
            [request.request_id for request in window],
        )
        uplink = encode_activation_batch(message)
        future = self._pool.submit(self._service_batch, uplink)
        self._flights.append(_Flight(self._next_seq, window, future, len(uplink)))
        self._next_seq += 1

    # ------------------------------------------------------------------
    # Cloud half (worker threads)
    # ------------------------------------------------------------------
    def _service_batch(self, uplink: bytes) -> _ServiceResult:
        context = self._contexts.get()
        started = time.perf_counter()
        wire_before = context.channel.stats.simulated_seconds
        try:
            delivered = decode_activation_batch(context.channel.transmit(uplink))
            response = context.server.predict_batch(delivered)
            downlink = context.channel.transmit(encode_prediction_batch(response))
            decoded = decode_prediction_batch(downlink)
            return _ServiceResult(
                worker_id=context.worker_id,
                decoded=decoded,
                downlink_bytes=len(downlink),
                wire_seconds=context.channel.stats.simulated_seconds - wire_before,
                busy_seconds=time.perf_counter() - started,
            )
        finally:
            self._contexts.put(context)

    # ------------------------------------------------------------------
    # Collection (dispatcher thread only)
    # ------------------------------------------------------------------
    def _collect(self, *, block: bool) -> list[int]:
        delivered: list[int] = []
        while self._flights:
            ready = [f for f in self._flights if f.future.done()]
            if not ready:
                if not block:
                    break
                # Wait for the oldest flight; workers race, so a newer one
                # may well finish first — the next loop pass absorbs it.
                flight = self._flights[0]
                try:
                    flight.future.result()
                except BaseException:
                    self._discard_flight(flight)
                    raise
                continue
            for flight in ready:
                self._flights.remove(flight)
                try:
                    result = flight.future.result()
                except BaseException:
                    self._discard_flight(flight)
                    raise
                self._absorb(flight, result, delivered)
            if not block:
                break
        return delivered

    def _discard_flight(self, flight: _Flight) -> None:
        """Drop a failed micro-batch without wedging the engine.

        The flight's requests are lost (the worker error propagates to the
        caller), but they must not stay in the session-ordering gate or
        the flight deque — later requests of the same sessions, and later
        ``pump``/``drain`` calls, keep working.
        """
        if flight in self._flights:
            self._flights.remove(flight)
        for request in flight.window:
            waiting = self._session_waiting.get(request.ordering_key)
            if waiting is None:
                continue
            try:
                waiting.remove(request)
            except ValueError:
                pass
            if not waiting:
                del self._session_waiting[request.ordering_key]

    def _absorb(
        self, flight: _Flight, result: _ServiceResult, delivered: list[int]
    ) -> None:
        now = self._clock()
        for request, logits in zip(
            flight.window, result.decoded.split_logits()
        ):
            self._computed[request.request_id] = logits
        self.metrics.requests += len(flight.window)
        self.metrics.samples += sum(request.rows for request in flight.window)
        self.metrics.micro_batches += 1
        self.metrics.occupancies.append(len(flight.window))
        self.metrics.uplink_bytes += flight.uplink_bytes
        self.metrics.downlink_bytes += result.downlink_bytes
        self.metrics.simulated_wire_seconds += result.wire_seconds
        self.metrics.record_worker(result.worker_id, result.busy_seconds)
        self.batcher.observe_service(result.busy_seconds)
        for request in flight.window:
            self._release_session(request.ordering_key, now, delivered)

    def _release_session(
        self, key: Hashable, now: float, delivered: list[int]
    ) -> None:
        waiting = self._session_waiting.get(key)
        while waiting and waiting[0].request_id in self._computed:
            request = waiting.popleft()
            logits = self._computed.pop(request.request_id)
            self._deliverable[request.request_id] = logits
            self.metrics.record_completion(
                now - request.submitted_at, request.slo_seconds
            )
            delivered.append(request.request_id)
            if self._span_start is not None:
                self.metrics.wall_seconds = now - self._span_start
        if waiting is not None and not waiting:
            del self._session_waiting[key]

    # ------------------------------------------------------------------
    # Accounting / lifecycle
    # ------------------------------------------------------------------
    def report(self) -> SessionReport:
        """Sequential-session-compatible traffic/compute accounting."""
        return SessionReport(
            requests=self.metrics.requests,
            uplink_bytes=self.metrics.uplink_bytes,
            downlink_bytes=self.metrics.downlink_bytes,
            simulated_seconds=sum(
                channel.stats.simulated_seconds
                for channel in self._worker_channels
            ),
            edge_kilomacs_per_sample=self._edge_cost.kilomacs,
        )

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if not self._closed:
            self._closed = True
            self._pool.shutdown(wait=True)

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
