"""Deadline-aware, multi-worker split-inference serving engine.

Since the control-plane refactor this module is the **single-deployment
facade** over :class:`~repro.serve.controlplane.ControlPlane`: a
:class:`ServingEngine` is a control plane hosting exactly one deployment
(named :attr:`ServingEngine.DEFAULT_DEPLOYMENT`), with the PR 3 request
API preserved — integer request ids, ``submit``/``pump``/``drain``/
``result``, ``infer_stream`` — plus direct access to the deployment's
device, noise stream, queue, batcher, and metrics.  The actual serving
topology (dispatcher-owned edge half and noise draws, shared cloud worker
pool, per-session ordered release, crash recovery) lives in
:mod:`repro.serve.controlplane`; multi-model serving registers more
deployments on a :class:`~repro.serve.controlplane.ControlPlane` directly
(or via :meth:`repro.core.ShredderPipeline.deploy_many`).

Reproducibility under concurrency is *by construction*, not by luck: the
dispatcher is the single owner of the noise-sampling generator
(:class:`~repro.core.sampler.NoiseStream` enforces this), and it draws each
request's noise members in arrival order before any worker touches the
batch.  Worker scheduling therefore cannot perturb a single bit of any
result, which is what the multi-worker parity suite
(``tests/serve/test_multiworker_parity.py``) pins down: bit-identical
logits vs. the sequential :class:`~repro.edge.InferenceSession` for every
worker count.
"""

from __future__ import annotations

import threading
from typing import Callable, Hashable, Iterable, Sequence

import numpy as np

from repro.core.sampler import NoiseCollection, NoiseStream
from repro.edge.channel import Channel
from repro.edge.device import SessionReport
from repro.edge.quantization import QuantizationParams
from repro.errors import ConfigurationError
from repro.models.base import SplittableModel
from repro.serve.controlplane import (
    ControlPlane,
    RequestHandle,
    _ServiceResult,
    _Task,
)


class ServingEngine(ControlPlane):
    """Deadline-aware multi-worker serving over one split backbone.

    Args:
        model: The full backbone (used for splitting and cost bookkeeping).
        cut: Cut-point name.
        mean / std: Input normalisation constants.
        noise: Noise collection for the edge device (optional).
        channel: Link prototype; every worker serves over its own clone
            (same parameters, private statistics).  Default: fast clean
            link.
        rng: Noise-sampling randomness (shared stream with the sequential
            reference path for parity); a generator or a
            :class:`~repro.core.sampler.NoiseStream`.
        workers: Cloud worker threads draining micro-batches concurrently.
        batch_window: Maximum requests stacked per micro-batch.
        max_rows: Optional cap on image rows per micro-batch.
        batch_timeout: Longest the head request waits for its window to
            fill (seconds on ``clock``).
        deadline_aware: Close windows on SLO slack (default); ``False``
            gives the fixed-window baseline policy.
        isolate_sessions: Batch-composition policy: ``True`` closes every
            micro-batch at the first session boundary so batches never mix
            users (the metrics' mixing index reads 0); default ``False``
            (``mixed``).
        quantization: Optional affine code for the stacked uplink payload.
        weight_bits: ``8`` serves on int8-quantised weights (opt-in
            ``int8_weights`` IR rewrite); the sequential reference must
            match (parity within a weight regime, never across).
        kernel_backend: Forward-executor backend (``"auto"`` / ``"native"``
            / ``"numpy"``), selected **once here** and applied to the edge
            device and every cloud worker, so batched and sequential paths
            always run the same kernels (the bit-parity contract; see
            :mod:`repro.edge.executor`).
        fault_injector: Optional crash-injection hook (see
            :class:`~repro.serve.controlplane.ControlPlane`).
        clock: Time source for queueing/deadline decisions and latency
            accounting; defaults to the wall clock.  Workers always
            measure their busy time on the wall clock.
        max_workers / auto_heal: Elastic pool knobs (see
            :class:`~repro.serve.controlplane.ControlPlane`).
        max_pending / admission_rate_rps / admission_burst /
        shed_unmeetable: Admission-control knobs for the sole deployment
            (see :class:`~repro.serve.admission.AdmissionController`);
            over capacity :meth:`submit` raises a typed
            :class:`~repro.errors.AdmissionError` /
            :class:`~repro.errors.OverloadError`.
        shuffle / shuffle_seed: Cross-session row shuffling for the sole
            deployment (see :meth:`ControlPlane.register` and
            :class:`~repro.serve.scheduler.Shuffler`); parity-preserving
            by the shuffling contract.
    """

    #: Name of the engine's sole deployment on the underlying plane.
    DEFAULT_DEPLOYMENT = "default"

    def __init__(
        self,
        model: SplittableModel,
        cut: str,
        mean: np.ndarray,
        std: np.ndarray,
        noise: NoiseCollection | None = None,
        channel: Channel | None = None,
        rng: np.random.Generator | NoiseStream | None = None,
        *,
        workers: int = 1,
        batch_window: int = 8,
        max_rows: int | None = None,
        batch_timeout: float = 0.005,
        deadline_aware: bool = True,
        isolate_sessions: bool = False,
        quantization: QuantizationParams | None = None,
        weight_bits: int | None = None,
        kernel_backend: str = "auto",
        fault_injector: Callable[[int, _Task], bool] | None = None,
        clock: Callable[[], float] | None = None,
        max_workers: int | None = None,
        auto_heal: bool = False,
        max_pending: int | None = None,
        admission_rate_rps: float | None = None,
        admission_burst: float | None = None,
        shed_unmeetable: bool = False,
        shuffle: bool = False,
        shuffle_seed: int | None = None,
    ) -> None:
        super().__init__(
            workers=workers,
            channel=channel,
            kernel_backend=kernel_backend,
            fault_injector=fault_injector,
            clock=clock,
            max_workers=max_workers,
            auto_heal=auto_heal,
        )
        deployment = self.register(
            self.DEFAULT_DEPLOYMENT,
            model,
            cut,
            mean=mean,
            std=std,
            noise=noise,
            rng=rng,
            batch_window=batch_window,
            max_rows=max_rows,
            batch_timeout=batch_timeout,
            deadline_aware=deadline_aware,
            isolate_sessions=isolate_sessions,
            quantization=quantization,
            weight_bits=weight_bits,
            kernel_backend=kernel_backend,
            max_pending=max_pending,
            admission_rate_rps=admission_rate_rps,
            admission_burst=admission_burst,
            shed_unmeetable=shed_unmeetable,
            shuffle=shuffle,
            shuffle_seed=shuffle_seed,
        )
        self._deployment = deployment
        self.cut = cut
        self.batch_window = batch_window
        self.device = deployment.device
        self.noise_stream = deployment.noise_stream
        self.queue = deployment.queue
        self.batcher = deployment.batcher
        self.metrics = deployment.metrics
        # The legacy worker-side hook (`_service_batch(uplink)`) needs the
        # current task when a subclass delegates back to the base
        # implementation; each worker thread services one batch at a time,
        # so a thread-local hands it across the override boundary.
        self._task_local = threading.local()

    # ------------------------------------------------------------------
    # Request lifecycle (integer-id facade over the plane's handles)
    # ------------------------------------------------------------------
    def submit(
        self,
        images: np.ndarray,
        *,
        slo_seconds: float | None = None,
        session_id: Hashable | None = None,
    ) -> int:
        """Enqueue one request; returns the id to collect the result with."""
        return self.router.route(
            images,
            deployment=self.DEFAULT_DEPLOYMENT,
            slo_seconds=slo_seconds,
            session_id=session_id,
        ).request_id

    def pump(self, *, flush: bool = False) -> list[int]:
        """One dispatcher turn: dispatch ready windows, collect finished
        batches, and return the ids that became deliverable (per-session
        submission order within each session).

        Non-blocking: finished micro-batches are absorbed in completion
        order; unfinished ones stay in flight.

        Args:
            flush: Close partial windows immediately instead of waiting
                out deadline slack / the batching timeout.
        """
        return [handle.request_id for handle in self.pump_handles(flush=flush)]

    def drain(self) -> list[int]:
        """Flush the queue, wait for every worker, deliver everything.

        Returns all ids delivered during the drain.  ``metrics.wall_seconds``
        tracks the serving span (first dispatch to latest delivery) for
        both this and the :meth:`pump`-driven path.
        """
        return [handle.request_id for handle in self.drain_handles()]

    def result(self, request_id: int) -> np.ndarray:
        """Collect (and release) the logits of a delivered request.

        A request is *delivered* once computed **and** every earlier
        request of its session has been delivered — the per-session
        ordering contract.
        """
        if request_id not in self._deployment.deliverable:
            raise ConfigurationError(
                f"request {request_id} has no deliverable result (still "
                "queued or in flight, gated behind an earlier request of "
                "its session, unknown, or already collected)"
            )
        return self._deployment.deliverable.pop(request_id)

    # ------------------------------------------------------------------
    # Stream convenience API
    # ------------------------------------------------------------------
    def infer_stream(
        self,
        stream: Iterable[np.ndarray] | Sequence[np.ndarray],
        *,
        slo_seconds: float | Sequence[float | None] | None = None,
        session_ids: Sequence[Hashable] | None = None,
    ) -> list[np.ndarray]:
        """Submit a whole request stream, drain it, and return per-request
        logits in submission order.

        Args:
            stream: Per-request image batches.
            slo_seconds: One SLO for every request (scalar) or one per
                request (sequence, ``None`` entries = no SLO).
            session_ids: Optional per-request session keys.
        """
        stream = list(stream)
        if slo_seconds is None or np.isscalar(slo_seconds):
            slos = [slo_seconds] * len(stream)
        else:
            slos = list(slo_seconds)
            if len(slos) != len(stream):
                raise ConfigurationError(
                    f"{len(slos)} SLOs for {len(stream)} requests"
                )
        if session_ids is None:
            sessions: list[Hashable] = [None] * len(stream)
        else:
            sessions = list(session_ids)
            if len(sessions) != len(stream):
                raise ConfigurationError(
                    f"{len(sessions)} session ids for {len(stream)} requests"
                )
        ids = [
            self.submit(images, slo_seconds=slo, session_id=session)
            for images, slo, session in zip(stream, slos, sessions)
        ]
        self.drain()
        return [self.result(request_id) for request_id in ids]

    def classify_stream(
        self,
        stream: Iterable[np.ndarray] | Sequence[np.ndarray],
        **kwargs,
    ) -> list[np.ndarray]:
        """Predicted labels per request, in submission order."""
        return [
            logits.argmax(axis=1)
            for logits in self.infer_stream(stream, **kwargs)
        ]

    # ------------------------------------------------------------------
    # Cloud half (worker threads) — legacy hook preserved for subclasses
    # ------------------------------------------------------------------
    def _execute(self, task: _Task) -> _ServiceResult:
        self._task_local.task = task
        try:
            return self._service_batch(task.uplink)
        finally:
            self._task_local.task = None

    def _service_batch(self, uplink: bytes) -> _ServiceResult:
        """Service one encoded micro-batch on a worker thread.

        Subclasses (tests, fault harnesses) may override this to observe
        or perturb the cloud half; calling ``super()._service_batch(uplink)``
        runs the real context checkout + transmit + remote forward.
        """
        task = getattr(self._task_local, "task", None)
        if task is None or task.uplink is not uplink:
            # A subclass re-encoded the frame (or the hook is driven
            # outside a worker turn): rebuild the task around these bytes.
            deployment = (
                task.deployment if task is not None else self.DEFAULT_DEPLOYMENT
            )
            task = _Task(deployment, uplink, ())
        return ControlPlane._execute(self, task)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def report(self) -> SessionReport:
        """Sequential-session-compatible traffic/compute accounting."""
        return self.report_for(self.DEFAULT_DEPLOYMENT)

    def __enter__(self) -> "ServingEngine":
        return self
