"""Multi-deployment serving control plane.

PR 3's :class:`~repro.serve.engine.ServingEngine` hosts exactly one
``(model, cut, noise collection)`` tuple per process.  The deployment
story of the paper — one cloud endpoint serving *many* edge users — wants
several of those tuples behind one front door, sharing the expensive part
(the cloud worker pool) while keeping everything privacy-critical
(noise streams, batch composition, ordering) strictly per deployment.
This module is that control plane, in four pieces:

* :class:`DeploymentRegistry` — holds N named :class:`Deployment`\\ s, each
  its own split model, noise collection and single-owner
  :class:`~repro.core.sampler.NoiseStream`, per-deployment
  :class:`~repro.serve.scheduler.AdaptiveBatcher` (window, timeout,
  deadline policy, batch-composition policy) and
  :class:`~repro.serve.metrics.ServingMetrics`.  Registration pre-warms a
  per-worker executor cache keyed by deployment, so the first request of
  any deployment pays no allocation or kernel-lowering jitter.
* :class:`Router` — tags each request with its deployment and feeds the
  per-deployment batcher; results are addressed by
  :class:`RequestHandle` ``(deployment, request_id)``.
* a **shared worker pool** — ``workers`` cloud threads execute encoded
  micro-batches from *any* deployment (each worker context holds one
  :class:`~repro.edge.device.CloudServer` + channel clone per deployment).
* **crash recovery** — a worker that dies mid-batch (via the
  ``fault_injector`` hook) is detected by the dispatcher, its in-flight
  batch is requeued to the surviving workers exactly once per crash, and
  bit parity + per-session ordering still hold, because the edge half
  (noise draws included) already happened on the dispatcher before the
  batch ever reached a worker: re-executing the pure cloud half on the
  same uplink bytes is deterministic.

Batch composition is an explicit, measurable policy rather than an
accident: micro-batches never span deployments (each deployment has its
own batcher), and within a deployment the ``isolate_sessions`` knob picks
between ``mixed`` batches (maximal occupancy) and single-session batches.
Either way :attr:`ServingMetrics.mixing_index` reports the realised
cross-user mixing — the fraction of batch rows a request shared its
stacked activation with that belong to other sessions.

The single-deployment :class:`~repro.serve.engine.ServingEngine` is now a
thin facade over this class (one deployment named ``"default"``), and the
asyncio front-end (:mod:`repro.serve.aio`) drives either from an event
loop.  Parity, ordering, and noise-draw accounting are pinned per
deployment by ``tests/serve/test_controlplane.py``.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from queue import Empty, SimpleQueue
from threading import Lock
from typing import Callable, Hashable, Iterator, NamedTuple

import numpy as np

from repro.core.sampler import NoiseCollection, NoiseStream
from repro.edge.channel import Channel
from repro.edge.costs import cut_cost
from repro.edge.device import CloudServer, EdgeDevice, SessionReport
from repro.edge.planner import plan_batch_window
from repro.edge.protocol import (
    BatchPredictionMessage,
    decode_activation_batch,
    decode_prediction_batch,
    encode_activation_batch,
    encode_prediction_batch,
)
from repro.edge.quantization import QuantizationParams
from repro.errors import ConfigurationError, ServingFaultError, WorkerCrashError
from repro.models.base import SplittableModel
from repro.serve.metrics import ServingMetrics
from repro.serve.queue import InferenceRequest, RequestQueue
from repro.serve.scheduler import AdaptiveBatcher


class RequestHandle(NamedTuple):
    """Addresses one request in the control plane."""

    deployment: str
    request_id: int


@dataclass(frozen=True)
class DeploymentSpec:
    """Declarative description of one deployment for ``deploy_many``.

    ``None`` fields fall back to the pipeline's (or the plane's) defaults.

    Attributes:
        noise: Trained collection; ``None`` serves the privacy-free
            baseline.
        cut: Cut-point name (default: the pipeline's cut).
        model: Backbone override (default: the pipeline's bundle model).
        batch_window: Requests per micro-batch; ``None`` asks the planner
            to choose from ``target_slo_seconds`` / ``arrival_rate_rps``.
        max_rows: Optional cap on stacked image rows per micro-batch.
        batch_timeout: Longest the head request waits for its window.
        deadline_aware: Close windows on SLO slack (default) or fixed.
        isolate_sessions: Batch-composition policy (``True`` = one session
            per micro-batch; ``False`` = ``mixed``).
        quantize_bits: Affine-quantise the stacked uplink payload
            (pipeline deployments only — calibration needs the pipeline's
            held-out activations).
        kernel_backend: Executor backend override (default: the plane's).
        target_slo_seconds / arrival_rate_rps / service_seconds_per_sample:
            Planner inputs used when ``batch_window`` is ``None``.
        rng: Noise-sampling randomness (default: a config-derived seed).
    """

    noise: NoiseCollection | None = None
    cut: str | None = None
    model: SplittableModel | None = None
    batch_window: int | None = 8
    max_rows: int | None = None
    batch_timeout: float = 0.005
    deadline_aware: bool = True
    isolate_sessions: bool = False
    quantize_bits: int | None = None
    kernel_backend: str | None = None
    target_slo_seconds: float | None = None
    arrival_rate_rps: float | None = None
    service_seconds_per_sample: float = 0.0
    rng: np.random.Generator | None = None


@dataclass
class Deployment:
    """Runtime state of one registered deployment (control-plane private).

    Everything privacy- or ordering-relevant is per deployment: the edge
    device (and through it the single-owner noise stream), the batcher and
    its policy knobs, the metrics, and the session-ordering gate.
    """

    name: str
    model: SplittableModel
    cut: str
    device: EdgeDevice
    remote: object  # the remote Sequential; workers build servers from it
    queue: RequestQueue
    batcher: AdaptiveBatcher
    metrics: ServingMetrics
    batch_window: int
    kernel_backend: str
    edge_kilomacs: float
    activation_shapes: list[tuple[int, ...]]
    channels: list[Channel] = field(default_factory=list)
    computed: dict[int, np.ndarray] = field(default_factory=dict)
    deliverable: dict[int, np.ndarray] = field(default_factory=dict)
    session_waiting: dict[Hashable, deque[InferenceRequest]] = field(
        default_factory=dict
    )
    span_start: float | None = None

    @property
    def noise_stream(self) -> NoiseStream:
        """The deployment's single-owner noise-sampling stream."""
        return self.device.noise_stream


class DeploymentRegistry:
    """Named deployments of one control plane (insertion-ordered)."""

    def __init__(self) -> None:
        self._deployments: dict[str, Deployment] = {}

    def add(self, deployment: Deployment) -> None:
        if deployment.name in self._deployments:
            raise ConfigurationError(
                f"deployment {deployment.name!r} is already registered"
            )
        self._deployments[deployment.name] = deployment

    def get(self, name: str) -> Deployment:
        try:
            return self._deployments[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown deployment {name!r} (registered: "
                f"{sorted(self._deployments) or 'none'})"
            ) from None

    def names(self) -> list[str]:
        return list(self._deployments)

    def __iter__(self) -> Iterator[Deployment]:
        return iter(self._deployments.values())

    def __len__(self) -> int:
        return len(self._deployments)

    def __contains__(self, name: str) -> bool:
        return name in self._deployments


class Router:
    """Tags requests with their deployment and feeds per-deployment queues.

    The router is deliberately dumb: deployment choice is explicit (the
    request names its tenant), and everything order-sensitive happens in
    the per-deployment FIFO queue it forwards to — which is what keeps
    noise draws in per-deployment arrival order no matter how tenants
    interleave.
    """

    def __init__(self, registry: DeploymentRegistry) -> None:
        self._registry = registry

    def resolve(self, deployment: str | None) -> Deployment:
        """Map an optional deployment name to a deployment.

        ``None`` routes to the only registered deployment; with several
        registered, the request must name one.
        """
        if deployment is not None:
            return self._registry.get(deployment)
        if len(self._registry) == 1:
            return next(iter(self._registry))
        raise ConfigurationError(
            f"plane hosts {len(self._registry)} deployments; requests must "
            f"name one of {self._registry.names()}"
        )

    def route(
        self,
        images: np.ndarray,
        *,
        deployment: str | None = None,
        slo_seconds: float | None = None,
        session_id: Hashable | None = None,
    ) -> RequestHandle:
        """Enqueue one request on its deployment's queue."""
        target = self.resolve(deployment)
        request_id = target.queue.submit(
            images, slo_seconds=slo_seconds, session_id=session_id
        )
        return RequestHandle(target.name, request_id)


@dataclass(frozen=True)
class _Task:
    """One encoded micro-batch bound for the shared worker pool."""

    deployment: str
    uplink: bytes
    request_ids: tuple[int, ...]


@dataclass
class _WorkerContext:
    """One cloud worker's private runtime: per-deployment executors and
    channel clones.  Checked out of the shared pool for one micro-batch at
    a time; a crashed worker's context is never returned."""

    worker_id: int
    servers: dict[str, CloudServer]
    channels: dict[str, Channel]
    alive: bool = True


@dataclass
class _ServiceResult:
    """What a worker hands back to the collector for one micro-batch."""

    worker_id: int
    decoded: BatchPredictionMessage
    downlink_bytes: int
    wire_seconds: float
    busy_seconds: float


@dataclass
class _Flight:
    """One dispatched micro-batch awaiting a worker."""

    seq: int
    deployment: str
    window: list[InferenceRequest]
    task: _Task
    future: Future
    uplink_bytes: int
    attempts: int = 1


class ControlPlane:
    """Multi-deployment serving over one shared cloud worker pool.

    The caller's thread is the **dispatcher**: it forms per-deployment
    micro-batches, runs each deployment's edge half (noise draws in
    arrival order on that deployment's single-owner stream), and hands
    encoded uplink frames to the shared pool.  Workers execute batches
    from any deployment through their per-deployment executor cache;
    the dispatcher collects completions in whatever order they land and
    releases results under each deployment's per-session ordering gate.

    Args:
        workers: Cloud worker threads shared by every deployment.
        channel: Link prototype; each (worker, deployment) pair serves
            over its own clone.  Default: fast clean link.
        kernel_backend: Default executor backend for deployments that do
            not override it.
        fault_injector: Crash-injection hook for fault-tolerance testing:
            called as ``hook(worker_id, task)`` before a worker services a
            batch; returning ``True`` kills that worker (its context
            leaves the pool) and the dispatcher requeues the batch on the
            survivors.  ``None`` disables injection.
        clock: Time source for queueing/deadline decisions and latency
            accounting; defaults to the wall clock.
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        channel: Channel | None = None,
        kernel_backend: str = "auto",
        fault_injector: Callable[[int, _Task], bool] | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"need >= 1 cloud worker, got {workers}")
        self.workers = workers
        self.kernel_backend = kernel_backend
        self.registry = DeploymentRegistry()
        self.router = Router(self.registry)
        self._channel_prototype = channel or Channel()
        self._fault_injector = fault_injector
        self._clock = clock or time.perf_counter
        self._contexts: SimpleQueue[_WorkerContext] = SimpleQueue()
        self._alive = workers
        self._alive_guard = Lock()
        for worker_id in range(workers):
            self._contexts.put(_WorkerContext(worker_id, {}, {}))
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="shredder-cloud"
        )
        self._flights: deque[_Flight] = deque()
        self._next_seq = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        model: SplittableModel,
        cut: str,
        *,
        mean: np.ndarray | None = None,
        std: np.ndarray | None = None,
        noise: NoiseCollection | None = None,
        rng: np.random.Generator | NoiseStream | None = None,
        batch_window: int | None = 8,
        max_rows: int | None = None,
        batch_timeout: float = 0.005,
        deadline_aware: bool = True,
        isolate_sessions: bool = False,
        quantization: QuantizationParams | None = None,
        kernel_backend: str | None = None,
        channel: Channel | None = None,
        target_slo_seconds: float | None = None,
        arrival_rate_rps: float | None = None,
        service_seconds_per_sample: float = 0.0,
    ) -> Deployment:
        """Register one named deployment and pre-warm every worker for it.

        A ``batch_window`` of ``None`` asks the planner for the largest
        window meeting ``target_slo_seconds`` at ``arrival_rate_rps``
        (:func:`repro.edge.planner.plan_batch_window`), so each deployment
        can run its own planner-chosen window.

        Registration must happen while no micro-batch is in flight (it
        re-equips every live worker context).
        """
        if self._closed:
            raise ConfigurationError("serving control plane is closed")
        if name in self.registry:
            raise ConfigurationError(
                f"deployment {name!r} is already registered"
            )
        if self._flights:
            raise ConfigurationError(
                "cannot register a deployment while micro-batches are in "
                "flight; drain first"
            )
        channels_count = model.input_shape[0]
        if mean is None:
            mean = np.zeros(channels_count, dtype=np.float32)
        if std is None:
            std = np.ones(channels_count, dtype=np.float32)
        backend = kernel_backend or self.kernel_backend
        prototype = channel or self._channel_prototype
        if batch_window is None:
            if target_slo_seconds is None or arrival_rate_rps is None:
                raise ConfigurationError(
                    f"deployment {name!r}: batch_window=None needs "
                    "target_slo_seconds and arrival_rate_rps for the planner"
                )
            batch_window = plan_batch_window(
                model,
                cut,
                target_slo_seconds=target_slo_seconds,
                arrival_rate_rps=arrival_rate_rps,
                service_seconds_per_sample=service_seconds_per_sample,
                channel=prototype,
            ).window
        local, remote = model.split(cut)
        stream = rng if isinstance(rng, NoiseStream) else NoiseStream(rng)
        device = EdgeDevice(
            local, mean, std, noise, stream, quantization,
            kernel_backend=backend,
        )
        queue = RequestQueue(clock=self._clock)
        batcher = AdaptiveBatcher(
            queue,
            batch_window,
            max_rows=max_rows,
            batch_timeout=batch_timeout,
            deadline_aware=deadline_aware,
            isolate_sessions=isolate_sessions,
        )
        # Pre-size the edge executor for every batch geometry the window
        # can produce (partial windows ship under deadline-aware closing,
        # so sizes 1..batch_window all occur).
        activation_shapes = [
            device.warm((rows, *model.input_shape))
            for rows in range(1, batch_window + 1)
        ]
        deployment = Deployment(
            name=name,
            model=model,
            cut=cut,
            device=device,
            remote=remote,
            queue=queue,
            batcher=batcher,
            metrics=ServingMetrics(),
            batch_window=batch_window,
            kernel_backend=backend,
            edge_kilomacs=cut_cost(model, cut).kilomacs,
            activation_shapes=activation_shapes,
        )
        # Equip every live worker context with this deployment's executor
        # and channel clone, pre-warmed.  Contexts are all parked in the
        # pool (no flights in flight), so draining them is race-free.
        # The registry entry is added only once every context is equipped
        # — a mid-warm failure (e.g. kernel_backend="native" without a
        # compiler) must not leave a routable deployment that would
        # KeyError inside the workers.
        contexts = [self._checkout_context() for _ in range(self.alive_workers)]
        try:
            for context in contexts:
                server = CloudServer(remote, backend)
                for shape in activation_shapes:
                    server.warm(shape)
                context.servers[name] = server
                worker_channel = prototype.clone()
                context.channels[name] = worker_channel
                deployment.channels.append(worker_channel)
            self.registry.add(deployment)
        except BaseException:
            for context in contexts:
                context.servers.pop(name, None)
                context.channels.pop(name, None)
            raise
        finally:
            for context in contexts:
                self._contexts.put(context)
        return deployment

    def _checkout_context(self) -> _WorkerContext:
        try:
            return self._contexts.get(timeout=1.0)
        except Empty:  # pragma: no cover - registration-while-busy guard
            raise ConfigurationError(
                "worker contexts unavailable during registration; is the "
                "plane serving traffic concurrently?"
            ) from None

    # ------------------------------------------------------------------
    # Request lifecycle (dispatcher thread)
    # ------------------------------------------------------------------
    def submit(
        self,
        images: np.ndarray,
        *,
        deployment: str | None = None,
        slo_seconds: float | None = None,
        session_id: Hashable | None = None,
    ) -> RequestHandle:
        """Enqueue one request; returns the handle to collect it with."""
        return self.router.route(
            images,
            deployment=deployment,
            slo_seconds=slo_seconds,
            session_id=session_id,
        )

    @property
    def pending(self) -> int:
        """Requests waiting in any deployment's queue."""
        return sum(len(deployment.queue) for deployment in self.registry)

    @property
    def in_flight(self) -> int:
        """Micro-batches dispatched to workers and not yet collected."""
        return len(self._flights)

    @property
    def alive_workers(self) -> int:
        """Workers that have not crashed."""
        with self._alive_guard:
            return self._alive

    def pump_handles(self, *, flush: bool = False) -> list[RequestHandle]:
        """One dispatcher turn: dispatch ready windows of every
        deployment, collect finished batches, and return the handles that
        became deliverable (per-session submission order within each
        deployment's sessions)."""
        self._dispatch_ready(flush=flush)
        return self._collect(block=False)

    def pump(self, *, flush: bool = False) -> list[RequestHandle]:
        """Alias of :meth:`pump_handles` (the single-deployment engine
        overrides this to return bare request ids)."""
        return self.pump_handles(flush=flush)

    def next_action_time(self) -> float | None:
        """Earliest instant any deployment's window must close (``None``
        when every queue is empty)."""
        closes = [
            close
            for deployment in self.registry
            if (close := deployment.batcher.close_time()) is not None
        ]
        return min(closes) if closes else None

    def drain_handles(self) -> list[RequestHandle]:
        """Flush every queue, wait for every worker, deliver everything."""
        delivered: list[RequestHandle] = []
        while self.pending or self._flights:
            self._dispatch_ready(flush=True)
            delivered.extend(self._collect(block=bool(self._flights)))
        return delivered

    def drain(self) -> list[RequestHandle]:
        """Alias of :meth:`drain_handles` (see :meth:`pump`)."""
        return self.drain_handles()

    def result_for(self, handle: RequestHandle) -> np.ndarray:
        """Collect (and release) the logits of a delivered request."""
        deployment = self.registry.get(handle.deployment)
        if handle.request_id not in deployment.deliverable:
            raise ConfigurationError(
                f"request {handle.request_id} of deployment "
                f"{handle.deployment!r} has no deliverable result (still "
                "queued or in flight, gated behind an earlier request of "
                "its session, unknown, or already collected)"
            )
        return deployment.deliverable.pop(handle.request_id)

    def result(self, handle: RequestHandle) -> np.ndarray:
        """Alias of :meth:`result_for` (see :meth:`pump`)."""
        return self.result_for(handle)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def metrics_by_deployment(self) -> dict[str, ServingMetrics]:
        """Each deployment's metrics object, by name."""
        return {
            deployment.name: deployment.metrics for deployment in self.registry
        }

    def report_for(self, deployment: str) -> SessionReport:
        """Sequential-session-compatible accounting for one deployment."""
        target = self.registry.get(deployment)
        return SessionReport(
            requests=target.metrics.requests,
            uplink_bytes=target.metrics.uplink_bytes,
            downlink_bytes=target.metrics.downlink_bytes,
            simulated_seconds=sum(
                channel.stats.simulated_seconds for channel in target.channels
            ),
            edge_kilomacs_per_sample=target.edge_kilomacs,
        )

    # ------------------------------------------------------------------
    # Dispatch (dispatcher thread only)
    # ------------------------------------------------------------------
    def _dispatch_ready(self, *, flush: bool) -> None:
        if self._closed:
            raise ConfigurationError("serving engine is closed")
        for deployment in self.registry:
            now = self._clock()
            while True:
                window = deployment.batcher.next_batch(now, flush=flush)
                if not window:
                    break
                self._dispatch(deployment, window, now)

    def _dispatch(
        self,
        deployment: Deployment,
        window: list[InferenceRequest],
        now: float,
    ) -> None:
        if deployment.span_start is None:
            deployment.span_start = now
        for request in window:
            deployment.metrics.queue_ages.append(now - request.submitted_at)
            deployment.session_waiting.setdefault(
                request.ordering_key, deque()
            ).append(request)
        deployment.metrics.record_mixing(
            [request.ordering_key for request in window],
            [request.rows for request in window],
        )
        # Edge half on the dispatcher: the deployment's noise stream has
        # exactly one owner, and draws happen in arrival order — the
        # parity contract, per deployment.
        message = deployment.device.forward_batch(
            [request.images for request in window],
            [request.request_id for request in window],
        )
        uplink = encode_activation_batch(message)
        task = _Task(
            deployment.name,
            uplink,
            tuple(request.request_id for request in window),
        )
        future = self._pool.submit(self._execute, task)
        self._flights.append(
            _Flight(self._next_seq, deployment.name, window, task, future,
                    len(uplink))
        )
        self._next_seq += 1

    # ------------------------------------------------------------------
    # Cloud half (worker threads)
    # ------------------------------------------------------------------
    def _execute(self, task: _Task) -> _ServiceResult:
        context = self._acquire_context()
        started = time.perf_counter()
        try:
            if self._fault_injector is not None and self._fault_injector(
                context.worker_id, task
            ):
                self._kill_context(context)
                raise WorkerCrashError(
                    f"worker {context.worker_id} crashed servicing a "
                    f"micro-batch of deployment {task.deployment!r}",
                    worker_id=context.worker_id,
                )
            channel = context.channels[task.deployment]
            server = context.servers[task.deployment]
            wire_before = channel.stats.simulated_seconds
            delivered = decode_activation_batch(channel.transmit(task.uplink))
            response = server.predict_batch(delivered)
            downlink = channel.transmit(encode_prediction_batch(response))
            decoded = decode_prediction_batch(downlink)
            return _ServiceResult(
                worker_id=context.worker_id,
                decoded=decoded,
                downlink_bytes=len(downlink),
                wire_seconds=channel.stats.simulated_seconds - wire_before,
                busy_seconds=time.perf_counter() - started,
            )
        finally:
            if context.alive:
                self._contexts.put(context)

    def _acquire_context(self) -> _WorkerContext:
        """Check a live worker context out of the pool.

        Raises :class:`~repro.errors.WorkerCrashError` instead of blocking
        forever when every worker has crashed while this task queued.
        """
        while True:
            try:
                return self._contexts.get(timeout=0.05)
            except Empty:
                if self.alive_workers == 0:
                    raise WorkerCrashError(
                        "no surviving worker context to service the batch"
                    ) from None

    def _kill_context(self, context: _WorkerContext) -> None:
        context.alive = False
        with self._alive_guard:
            self._alive -= 1

    # ------------------------------------------------------------------
    # Collection + crash recovery (dispatcher thread only)
    # ------------------------------------------------------------------
    def _collect(self, *, block: bool) -> list[RequestHandle]:
        delivered: list[RequestHandle] = []
        while self._flights:
            ready = [f for f in self._flights if f.future.done()]
            if not ready:
                if not block:
                    break
                # Wait for the oldest flight; workers race, so a newer one
                # may well finish first — the next loop pass absorbs it.
                flight = self._flights[0]
                try:
                    flight.future.result()
                except WorkerCrashError:
                    self._recover(flight)
                except BaseException:
                    self._discard_flight(flight)
                    raise
                continue
            for flight in ready:
                self._flights.remove(flight)
                try:
                    result = flight.future.result()
                except WorkerCrashError:
                    self._recover(flight)
                    continue
                except BaseException:
                    self._discard_flight(flight)
                    raise
                self._absorb(flight, result, delivered)
            if not block:
                break
        return delivered

    def _recover(self, flight: _Flight) -> None:
        """Requeue a crash-interrupted micro-batch exactly once.

        The crashed attempt produced no result (a worker dies *before*
        shipping its downlink), so re-executing the cloud half on the same
        uplink bytes completes the batch exactly once; noise was drawn on
        the dispatcher long before, so the retried logits are bit-identical
        to an undisturbed run.  When no worker survives, the flight is
        discarded and :class:`~repro.errors.ServingFaultError` surfaces.
        """
        if flight in self._flights:
            self._flights.remove(flight)
        if self.alive_workers == 0:
            self._discard_flight(flight)
            raise ServingFaultError(
                f"every cloud worker has crashed; micro-batch of deployment "
                f"{flight.deployment!r} (requests {list(flight.task.request_ids)}) "
                "cannot be recovered"
            )
        flight.attempts += 1
        self.registry.get(flight.deployment).metrics.requeued_batches += 1
        flight.future = self._pool.submit(self._execute, flight.task)
        self._flights.append(flight)

    def _discard_flight(self, flight: _Flight) -> None:
        """Drop a failed micro-batch without wedging the engine.

        The flight's requests are lost (the worker error propagates to the
        caller), but they must not stay in the session-ordering gate or
        the flight deque — later requests of the same sessions, and later
        ``pump``/``drain`` calls, keep working.
        """
        if flight in self._flights:
            self._flights.remove(flight)
        deployment = self.registry.get(flight.deployment)
        for request in flight.window:
            waiting = deployment.session_waiting.get(request.ordering_key)
            if waiting is None:
                continue
            try:
                waiting.remove(request)
            except ValueError:
                pass
            if not waiting:
                del deployment.session_waiting[request.ordering_key]

    def _absorb(
        self,
        flight: _Flight,
        result: _ServiceResult,
        delivered: list[RequestHandle],
    ) -> None:
        deployment = self.registry.get(flight.deployment)
        now = self._clock()
        for request, logits in zip(
            flight.window, result.decoded.split_logits()
        ):
            deployment.computed[request.request_id] = logits
        metrics = deployment.metrics
        metrics.requests += len(flight.window)
        metrics.samples += sum(request.rows for request in flight.window)
        metrics.micro_batches += 1
        metrics.occupancies.append(len(flight.window))
        metrics.uplink_bytes += flight.uplink_bytes
        metrics.downlink_bytes += result.downlink_bytes
        metrics.simulated_wire_seconds += result.wire_seconds
        metrics.record_worker(result.worker_id, result.busy_seconds)
        deployment.batcher.observe_service(result.busy_seconds)
        for request in flight.window:
            self._release_session(
                deployment, request.ordering_key, now, delivered
            )

    def _release_session(
        self,
        deployment: Deployment,
        key: Hashable,
        now: float,
        delivered: list[RequestHandle],
    ) -> None:
        waiting = deployment.session_waiting.get(key)
        while waiting and waiting[0].request_id in deployment.computed:
            request = waiting.popleft()
            logits = deployment.computed.pop(request.request_id)
            deployment.deliverable[request.request_id] = logits
            deployment.metrics.record_completion(
                now - request.submitted_at, request.slo_seconds
            )
            delivered.append(RequestHandle(deployment.name, request.request_id))
            if deployment.span_start is not None:
                deployment.metrics.wall_seconds = now - deployment.span_start
        if waiting is not None and not waiting:
            del deployment.session_waiting[key]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the shared worker pool down (idempotent).

        The pool join runs under ``try/finally`` so the threads are
        reaped even if cancelling the in-flight futures raises — shutdown
        must never leak worker threads on an exception path.
        """
        if self._closed:
            return
        self._closed = True
        try:
            for flight in list(self._flights):
                flight.future.cancel()
        finally:
            self._pool.shutdown(wait=True)

    def __enter__(self) -> "ControlPlane":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
