"""Multi-deployment serving control plane.

PR 3's :class:`~repro.serve.engine.ServingEngine` hosts exactly one
``(model, cut, noise collection)`` tuple per process.  The deployment
story of the paper — one cloud endpoint serving *many* edge users — wants
several of those tuples behind one front door, sharing the expensive part
(the cloud worker pool) while keeping everything privacy-critical
(noise streams, batch composition, ordering) strictly per deployment.
This module is that control plane, in four pieces:

* :class:`DeploymentRegistry` — holds N named :class:`Deployment`\\ s, each
  its own split model, noise collection and single-owner
  :class:`~repro.core.sampler.NoiseStream`, per-deployment
  :class:`~repro.serve.scheduler.AdaptiveBatcher` (window, timeout,
  deadline policy, batch-composition policy) and
  :class:`~repro.serve.metrics.ServingMetrics`.  Registration pre-warms a
  per-worker executor cache keyed by deployment, so the first request of
  any deployment pays no allocation or kernel-lowering jitter.
* :class:`Router` — tags each request with its deployment and feeds the
  per-deployment batcher; results are addressed by
  :class:`RequestHandle` ``(deployment, request_id)``.
* a **shared worker pool** — ``workers`` cloud threads execute encoded
  micro-batches from *any* deployment (each worker context holds one
  :class:`~repro.edge.device.CloudServer` + channel clone per deployment).
* **crash recovery** — a worker that dies mid-batch (via the
  ``fault_injector`` hook) is detected by the dispatcher, its in-flight
  batch is requeued to the surviving workers exactly once per crash, and
  bit parity + per-session ordering still hold, because the edge half
  (noise draws included) already happened on the dispatcher before the
  batch ever reached a worker: re-executing the pure cloud half on the
  same uplink bytes is deterministic.

Batch composition is an explicit, measurable policy rather than an
accident: micro-batches never span deployments (each deployment has its
own batcher), and within a deployment the ``isolate_sessions`` knob picks
between ``mixed`` batches (maximal occupancy) and single-session batches.
Either way :attr:`ServingMetrics.mixing_index` reports the realised
cross-user mixing — the fraction of batch rows a request shared its
stacked activation with that belong to other sessions.

The single-deployment :class:`~repro.serve.engine.ServingEngine` is now a
thin facade over this class (one deployment named ``"default"``), and the
asyncio front-end (:mod:`repro.serve.aio`) drives either from an event
loop.  Parity, ordering, and noise-draw accounting are pinned per
deployment by ``tests/serve/test_controlplane.py``.

Lifecycle (the elastic layer)
-----------------------------

The plane's pool and registry are mutable at runtime, under a small set
of invariant-preserving operations (all dispatcher-thread-only):

* **Healing** — :meth:`ControlPlane.heal` (or ``auto_heal=True``, which
  heals inside crash recovery) re-spawns crashed worker contexts up to
  ``target_workers``, each pre-warmed with every registered deployment's
  :class:`~repro.edge.device.CloudServer` executor cache and a fresh
  channel clone.  Capacity comes back, and bit parity is untouched:
  noise was drawn on the dispatcher before dispatch, so which (old or
  respawned) worker executes the pure cloud half cannot change a bit.
* **Scaling** — :meth:`ControlPlane.scale_to` grows/shrinks the pool
  between 1 and ``max_workers`` contexts; :meth:`enable_autoscale`
  installs an :class:`Autoscaler` that does it automatically from the
  metrics signals the plane already emits (arrival rates, backlog,
  service-time EWMA, SLO pressure) with the planner's
  :func:`~repro.edge.planner.predict_window_latency` wire term as the
  cold-start feedforward estimate.  Shrinking only retires *parked*
  contexts — an executing batch always finishes first.
* **Hot swap / unregister** — :meth:`swap` and :meth:`unregister` first
  drain the deployment's queue to a barrier
  (:meth:`drain_deployment` + a full in-flight quiesce, raising
  :class:`~repro.errors.DeploymentDrainError` on timeout) and then
  replace the deployment's model/cut/noise (re-equipping every worker)
  or remove the tenant entirely.  Other deployments keep serving across
  the barrier.  Parity across a swap point means: requests admitted
  *before* the swap are bit-identical to a sequential reference over the
  old ``(model, cut, noise, stream)``, requests admitted *after* to a
  fresh reference over the new one — the drain barrier guarantees no
  request straddles the two regimes.
* **Admission control** — deployments registered with ``max_pending`` /
  ``admission_rate_rps`` / ``shed_unmeetable`` gate every submission
  through an :class:`~repro.serve.admission.AdmissionController`; over
  capacity the submit call raises a typed
  :class:`~repro.errors.AdmissionError` or
  :class:`~repro.errors.OverloadError` (429-style) instead of queueing
  doomed work.  All rejection happens *at the front door*: once a
  request is admitted it is served exactly once, in order,
  bit-identically — overload never drops admitted work.
"""

from __future__ import annotations

import math
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from queue import Empty, SimpleQueue
from threading import Lock
from typing import Callable, Hashable, Iterator, NamedTuple

import numpy as np

from repro.core.sampler import NoiseCollection, NoiseStream
from repro.edge.channel import Channel
from repro.edge.costs import cut_cost
from repro.edge.device import CloudServer, EdgeDevice, SessionReport
from repro.edge.planner import (
    BYTES_PER_ELEMENT,
    plan_batch_window,
    predict_window_latency,
)
from repro.edge.protocol import (
    BatchActivationMessage,
    BatchPredictionMessage,
    decode_activation_batch,
    decode_prediction_batch,
    encode_activation_batch,
    encode_prediction_batch,
)
from repro.edge.quantization import QuantizationParams
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    DeploymentDrainError,
    OverloadError,
    ServingFaultError,
    WorkerCrashError,
)
from repro.models.base import SplittableModel
from repro.serve.admission import AdmissionController
from repro.serve.metrics import ServingMetrics
from repro.serve.queue import InferenceRequest, RequestQueue
from repro.serve.scheduler import AdaptiveBatcher, BatchPermutation, Shuffler

#: Sentinel distinguishing "argument omitted" from an explicit ``None``
#: (``swap(noise=None)`` means *remove* the noise collection).
_UNSET = object()


class RequestHandle(NamedTuple):
    """Addresses one request in the control plane."""

    deployment: str
    request_id: int


@dataclass(frozen=True)
class DeploymentSpec:
    """Declarative description of one deployment for ``deploy_many``.

    ``None`` fields fall back to the pipeline's (or the plane's) defaults.

    Attributes:
        noise: Trained collection; ``None`` serves the privacy-free
            baseline.
        cut: Cut-point name (default: the pipeline's cut).
        model: Backbone override (default: the pipeline's bundle model).
        batch_window: Requests per micro-batch; ``None`` asks the planner
            to choose from ``target_slo_seconds`` / ``arrival_rate_rps``.
        max_rows: Optional cap on stacked image rows per micro-batch.
        batch_timeout: Longest the head request waits for its window.
        deadline_aware: Close windows on SLO slack (default) or fixed.
        isolate_sessions: Batch-composition policy (``True`` = one session
            per micro-batch; ``False`` = ``mixed``).
        quantize_bits: Affine-quantise the stacked uplink payload
            (pipeline deployments only — calibration needs the pipeline's
            held-out activations).
        weight_bits: ``8`` serves the deployment on int8-quantised weights
            (opt-in ``int8_weights`` IR rewrite, label-agreement-gated);
            the sequential reference must match — parity holds within a
            weight regime, never across.
        kernel_backend: Executor backend override (default: the plane's).
        target_slo_seconds / arrival_rate_rps / service_seconds_per_sample:
            Planner inputs used when ``batch_window`` is ``None``.
        rng: Noise-sampling randomness (default: a config-derived seed).
        max_pending / admission_rate_rps / admission_burst /
        shed_unmeetable: Admission-control knobs (see
            :class:`~repro.serve.admission.AdmissionController`); all
            disabled by default.
        shuffle / shuffle_seed: Enable the seeded cross-session row
            shuffling stage (:class:`~repro.serve.scheduler.Shuffler`)
            on closed micro-batches; the inverse permutation is recorded
            so results restore to per-session order bit-exactly.
    """

    noise: NoiseCollection | None = None
    cut: str | None = None
    model: SplittableModel | None = None
    batch_window: int | None = 8
    max_rows: int | None = None
    batch_timeout: float = 0.005
    deadline_aware: bool = True
    isolate_sessions: bool = False
    quantize_bits: int | None = None
    weight_bits: int | None = None
    kernel_backend: str | None = None
    target_slo_seconds: float | None = None
    arrival_rate_rps: float | None = None
    service_seconds_per_sample: float = 0.0
    rng: np.random.Generator | None = None
    max_pending: int | None = None
    admission_rate_rps: float | None = None
    admission_burst: float | None = None
    shed_unmeetable: bool = False
    shuffle: bool = False
    shuffle_seed: int | None = None


@dataclass
class Deployment:
    """Runtime state of one registered deployment (control-plane private).

    Everything privacy- or ordering-relevant is per deployment: the edge
    device (and through it the single-owner noise stream), the batcher and
    its policy knobs, the metrics, and the session-ordering gate.
    """

    name: str
    model: SplittableModel
    cut: str
    device: EdgeDevice
    remote: object  # the remote Sequential; workers build servers from it
    queue: RequestQueue
    batcher: AdaptiveBatcher
    metrics: ServingMetrics
    batch_window: int
    kernel_backend: str
    weight_bits: int | None
    edge_kilomacs: float
    activation_shapes: list[tuple[int, ...]]
    channel_prototype: Channel
    admission: AdmissionController | None = None
    shuffler: Shuffler | None = None
    target_slo_seconds: float | None = None
    window_wire_seconds: float = 0.0
    channels: list[Channel] = field(default_factory=list)
    computed: dict[int, np.ndarray] = field(default_factory=dict)
    deliverable: dict[int, np.ndarray] = field(default_factory=dict)
    session_waiting: dict[Hashable, deque[InferenceRequest]] = field(
        default_factory=dict
    )
    span_start: float | None = None

    @property
    def noise_stream(self) -> NoiseStream:
        """The deployment's single-owner noise-sampling stream."""
        return self.device.noise_stream


class DeploymentRegistry:
    """Named deployments of one control plane (insertion-ordered)."""

    def __init__(self) -> None:
        self._deployments: dict[str, Deployment] = {}

    def add(self, deployment: Deployment) -> None:
        if deployment.name in self._deployments:
            raise ConfigurationError(
                f"deployment {deployment.name!r} is already registered"
            )
        self._deployments[deployment.name] = deployment

    def get(self, name: str) -> Deployment:
        try:
            return self._deployments[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown deployment {name!r} (registered: "
                f"{sorted(self._deployments) or 'none'})"
            ) from None

    def remove(self, name: str) -> Deployment:
        """Drop a deployment from the registry (it must exist)."""
        self.get(name)
        return self._deployments.pop(name)

    def names(self) -> list[str]:
        return list(self._deployments)

    def __iter__(self) -> Iterator[Deployment]:
        return iter(self._deployments.values())

    def __len__(self) -> int:
        return len(self._deployments)

    def __contains__(self, name: str) -> bool:
        return name in self._deployments


class Router:
    """Tags requests with their deployment and feeds per-deployment queues.

    The router is deliberately dumb: deployment choice is explicit (the
    request names its tenant), and everything order-sensitive happens in
    the per-deployment FIFO queue it forwards to — which is what keeps
    noise draws in per-deployment arrival order no matter how tenants
    interleave.  The one policy it applies is the admission gate: the
    plane's hook runs *before* the request enters the queue, so a
    rejected request (:class:`~repro.errors.AdmissionError` /
    :class:`~repro.errors.OverloadError`) never consumes a request id,
    never draws noise, and never blocks a session.
    """

    def __init__(
        self,
        registry: DeploymentRegistry,
        *,
        admission: Callable[[Deployment, np.ndarray, float | None], None]
        | None = None,
    ) -> None:
        self._registry = registry
        self._admission = admission

    def resolve(self, deployment: str | None) -> Deployment:
        """Map an optional deployment name to a deployment.

        ``None`` routes to the only registered deployment; with several
        registered, the request must name one.
        """
        if deployment is not None:
            return self._registry.get(deployment)
        if len(self._registry) == 1:
            return next(iter(self._registry))
        raise ConfigurationError(
            f"plane hosts {len(self._registry)} deployments; requests must "
            f"name one of {self._registry.names()}"
        )

    def route(
        self,
        images: np.ndarray,
        *,
        deployment: str | None = None,
        slo_seconds: float | None = None,
        session_id: Hashable | None = None,
    ) -> RequestHandle:
        """Enqueue one request on its deployment's queue.

        Raises:
            AdmissionError / OverloadError: The deployment's admission
                gate refused the request (it was never enqueued).
        """
        target = self.resolve(deployment)
        if self._admission is not None:
            self._admission(target, images, slo_seconds)
        request_id = target.queue.submit(
            images, slo_seconds=slo_seconds, session_id=session_id
        )
        return RequestHandle(target.name, request_id)


@dataclass(frozen=True)
class _Task:
    """One encoded micro-batch bound for the shared worker pool."""

    deployment: str
    uplink: bytes
    request_ids: tuple[int, ...]


@dataclass
class _WorkerContext:
    """One cloud worker's private runtime: per-deployment executors and
    channel clones.  Checked out of the shared pool for one micro-batch at
    a time; a crashed worker's context is never returned."""

    worker_id: int
    servers: dict[str, CloudServer]
    channels: dict[str, Channel]
    alive: bool = True


@dataclass
class _ServiceResult:
    """What a worker hands back to the collector for one micro-batch."""

    worker_id: int
    decoded: BatchPredictionMessage
    downlink_bytes: int
    wire_seconds: float
    busy_seconds: float


@dataclass
class _Flight:
    """One dispatched micro-batch awaiting a worker."""

    seq: int
    deployment: str
    window: list[InferenceRequest]
    task: _Task
    future: Future
    uplink_bytes: int
    #: Row permutation the shuffler applied to the uplink tensor; crash
    #: recovery requeues the same (permuted) bytes, so the recorded
    #: inverse stays valid across any number of attempts.
    permutation: BatchPermutation | None = None
    attempts: int = 1


class ControlPlane:
    """Multi-deployment serving over one shared cloud worker pool.

    The caller's thread is the **dispatcher**: it forms per-deployment
    micro-batches, runs each deployment's edge half (noise draws in
    arrival order on that deployment's single-owner stream), and hands
    encoded uplink frames to the shared pool.  Workers execute batches
    from any deployment through their per-deployment executor cache;
    the dispatcher collects completions in whatever order they land and
    releases results under each deployment's per-session ordering gate.

    Args:
        workers: Cloud worker threads shared by every deployment (the
            initial pool size, and the healing target until
            :meth:`scale_to` moves it).
        channel: Link prototype; each (worker, deployment) pair serves
            over its own clone.  Default: fast clean link.
        kernel_backend: Default executor backend for deployments that do
            not override it.
        fault_injector: Crash-injection hook for fault-tolerance testing:
            called as ``hook(worker_id, task)`` before a worker services a
            batch; returning ``True`` kills that worker (its context
            leaves the pool) and the dispatcher requeues the batch on the
            survivors.  ``None`` disables injection.
        clock: Time source for queueing/deadline decisions and latency
            accounting; defaults to the wall clock.
        max_workers: Hard ceiling on pool size for :meth:`scale_to` /
            :meth:`heal` / the autoscaler (the executor is sized for it
            up front; idle capacity costs nothing).  Default: ``workers``
            — the pool is fixed-size unless a larger ceiling is granted.
        auto_heal: Re-spawn crashed workers automatically during crash
            recovery, restoring the pool to ``target_workers`` (capacity
            healing, not just exactly-once requeue).
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        channel: Channel | None = None,
        kernel_backend: str = "auto",
        fault_injector: Callable[[int, _Task], bool] | None = None,
        clock: Callable[[], float] | None = None,
        max_workers: int | None = None,
        auto_heal: bool = False,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"need >= 1 cloud worker, got {workers}")
        if max_workers is not None and max_workers < workers:
            raise ConfigurationError(
                f"max_workers ({max_workers}) must be >= workers ({workers})"
            )
        self.workers = workers
        self.max_workers = max_workers if max_workers is not None else workers
        self.target_workers = workers
        self.auto_heal = auto_heal
        self.kernel_backend = kernel_backend
        self.registry = DeploymentRegistry()
        self.router = Router(self.registry, admission=self._admit_request)
        self._channel_prototype = channel or Channel()
        self._fault_injector = fault_injector
        self._clock = clock or time.perf_counter
        self._contexts: SimpleQueue[_WorkerContext] = SimpleQueue()
        self._all_contexts: list[_WorkerContext] = []
        self._next_worker_id = 0
        self._alive = 0
        self._alive_guard = Lock()
        #: Pool-level metrics (healing / scaling events); per-deployment
        #: admission counters live on each deployment's own metrics.
        self.pool_metrics = ServingMetrics()
        self._autoscaler: Autoscaler | None = None
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="shredder-cloud"
        )
        self._flights: deque[_Flight] = deque()
        self._next_seq = 0
        self._closed = False
        for _ in range(workers):
            self._spawn()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        model: SplittableModel,
        cut: str,
        *,
        mean: np.ndarray | None = None,
        std: np.ndarray | None = None,
        noise: NoiseCollection | None = None,
        rng: np.random.Generator | NoiseStream | None = None,
        batch_window: int | None = 8,
        max_rows: int | None = None,
        batch_timeout: float = 0.005,
        deadline_aware: bool = True,
        isolate_sessions: bool = False,
        quantization: QuantizationParams | None = None,
        weight_bits: int | None = None,
        kernel_backend: str | None = None,
        channel: Channel | None = None,
        target_slo_seconds: float | None = None,
        arrival_rate_rps: float | None = None,
        service_seconds_per_sample: float = 0.0,
        max_pending: int | None = None,
        admission_rate_rps: float | None = None,
        admission_burst: float | None = None,
        shed_unmeetable: bool = False,
        shuffle: bool = False,
        shuffle_seed: int | None = None,
    ) -> Deployment:
        """Register one named deployment and pre-warm every worker for it.

        A ``batch_window`` of ``None`` asks the planner for the largest
        window meeting ``target_slo_seconds`` at ``arrival_rate_rps``
        (:func:`repro.edge.planner.plan_batch_window`), so each deployment
        can run its own planner-chosen window.

        ``shuffle`` inserts the :class:`~repro.serve.scheduler.Shuffler`
        stage: every closed micro-batch's stacked rows are permuted
        across sessions under a seeded policy (``shuffle_seed``, default
        0) before encoding, and the recorded inverse restores per-request
        order at collection — bit parity with the sequential reference is
        preserved while the wire frame's row order stops revealing which
        session a row belongs to.  Shuffle-amplification accounting
        (anonymity sets per shuffled batch) lands in the deployment's
        :class:`~repro.serve.metrics.ServingMetrics`.

        ``max_pending`` / ``admission_rate_rps`` / ``admission_burst`` /
        ``shed_unmeetable`` install a per-deployment admission gate
        (:class:`~repro.serve.admission.AdmissionController`): over
        capacity, :meth:`submit` raises a typed
        :class:`~repro.errors.AdmissionError` /
        :class:`~repro.errors.OverloadError` instead of enqueueing.

        Registration must happen while no micro-batch is in flight (it
        re-equips every live worker context).
        """
        if self._closed:
            raise ConfigurationError("serving control plane is closed")
        if name in self.registry:
            raise ConfigurationError(
                f"deployment {name!r} is already registered"
            )
        if self._flights:
            raise ConfigurationError(
                "cannot register a deployment while micro-batches are in "
                "flight; drain first"
            )
        channels_count = model.input_shape[0]
        if mean is None:
            mean = np.zeros(channels_count, dtype=np.float32)
        if std is None:
            std = np.ones(channels_count, dtype=np.float32)
        backend = kernel_backend or self.kernel_backend
        prototype = channel or self._channel_prototype
        # Quantised uplinks shrink the wire working set; the planner
        # prices the window off the actual payload width.
        wire_bytes_per_element = (
            float(quantization.bytes_per_element)
            if quantization is not None
            else BYTES_PER_ELEMENT
        )
        if batch_window is None:
            if target_slo_seconds is None or arrival_rate_rps is None:
                raise ConfigurationError(
                    f"deployment {name!r}: batch_window=None needs "
                    "target_slo_seconds and arrival_rate_rps for the planner"
                )
            batch_window = plan_batch_window(
                model,
                cut,
                target_slo_seconds=target_slo_seconds,
                arrival_rate_rps=arrival_rate_rps,
                service_seconds_per_sample=service_seconds_per_sample,
                channel=prototype,
                bytes_per_element=wire_bytes_per_element,
            ).window
        local, remote = model.split(cut)
        stream = rng if isinstance(rng, NoiseStream) else NoiseStream(rng)
        device = EdgeDevice(
            local, mean, std, noise, stream, quantization,
            kernel_backend=backend,
            weight_bits=weight_bits,
        )
        queue = RequestQueue(clock=self._clock)
        batcher = AdaptiveBatcher(
            queue,
            batch_window,
            max_rows=max_rows,
            batch_timeout=batch_timeout,
            deadline_aware=deadline_aware,
            isolate_sessions=isolate_sessions,
        )
        # Pre-size the edge executor for every batch geometry the window
        # can produce (partial windows ship under deadline-aware closing,
        # so sizes 1..batch_window all occur).
        activation_shapes = [
            device.warm((rows, *model.input_shape))
            for rows in range(1, batch_window + 1)
        ]
        admission = None
        if (
            max_pending is not None
            or admission_rate_rps is not None
            or shed_unmeetable
        ):
            admission = AdmissionController(
                max_pending=max_pending,
                rate_rps=admission_rate_rps,
                burst=admission_burst,
                shed_unmeetable=shed_unmeetable,
                clock=self._clock,
            )
        # One full window's wire time on this deployment's link — the
        # feedforward term admission shedding and the autoscaler use
        # before the service-time EWMA has warmed up.
        window_wire_seconds = predict_window_latency(
            model,
            cut,
            batch_window,
            arrival_rate_rps=arrival_rate_rps or 1.0,
            service_seconds_per_sample=service_seconds_per_sample,
            channel=prototype,
            bytes_per_element=wire_bytes_per_element,
        )[2]
        deployment = Deployment(
            name=name,
            model=model,
            cut=cut,
            device=device,
            remote=remote,
            queue=queue,
            batcher=batcher,
            metrics=ServingMetrics(),
            batch_window=batch_window,
            kernel_backend=backend,
            weight_bits=weight_bits,
            edge_kilomacs=cut_cost(model, cut).kilomacs,
            activation_shapes=activation_shapes,
            channel_prototype=prototype,
            admission=admission,
            shuffler=(
                Shuffler(seed=0 if shuffle_seed is None else shuffle_seed)
                if shuffle
                else None
            ),
            target_slo_seconds=target_slo_seconds,
            window_wire_seconds=window_wire_seconds,
        )
        # Equip every live worker context with this deployment's executor
        # and channel clone, pre-warmed.  Contexts are all parked in the
        # pool (no flights in flight), so draining them is race-free.
        # The registry entry is added only once every context is equipped
        # — a mid-warm failure (e.g. kernel_backend="native" without a
        # compiler) must not leave a routable deployment that would
        # KeyError inside the workers.
        contexts = [self._checkout_context() for _ in range(self.alive_workers)]
        try:
            for context in contexts:
                self._equip(context, deployment)
            self.registry.add(deployment)
        except BaseException:
            for context in contexts:
                context.servers.pop(name, None)
                context.channels.pop(name, None)
            raise
        finally:
            for context in contexts:
                self._contexts.put(context)
        return deployment

    def _equip(self, context: _WorkerContext, deployment: Deployment) -> None:
        """Give one worker context a pre-warmed executor + channel clone
        for ``deployment`` (registration, healing, and pool growth all
        funnel through here so every context is interchangeable)."""
        server = CloudServer(
            deployment.remote,
            deployment.kernel_backend,
            weight_bits=deployment.weight_bits,
        )
        for shape in deployment.activation_shapes:
            server.warm(shape, quantization=deployment.device.quantization)
        context.servers[deployment.name] = server
        worker_channel = deployment.channel_prototype.clone()
        context.channels[deployment.name] = worker_channel
        deployment.channels.append(worker_channel)

    def _spawn(self) -> _WorkerContext:
        """Create, equip, and park one fresh worker context."""
        context = _WorkerContext(self._next_worker_id, {}, {})
        self._next_worker_id += 1
        for deployment in self.registry:
            self._equip(context, deployment)
        self._all_contexts.append(context)
        with self._alive_guard:
            self._alive += 1
        self._contexts.put(context)
        return context

    def _checkout_context(self) -> _WorkerContext:
        try:
            return self._contexts.get(timeout=1.0)
        except Empty:  # pragma: no cover - registration-while-busy guard
            raise ConfigurationError(
                "worker contexts unavailable during registration; is the "
                "plane serving traffic concurrently?"
            ) from None

    # ------------------------------------------------------------------
    # Request lifecycle (dispatcher thread)
    # ------------------------------------------------------------------
    def submit(
        self,
        images: np.ndarray,
        *,
        deployment: str | None = None,
        slo_seconds: float | None = None,
        session_id: Hashable | None = None,
    ) -> RequestHandle:
        """Enqueue one request; returns the handle to collect it with.

        Raises:
            AdmissionError: The deployment's token bucket or
                ``max_pending`` cap refused the request.
            OverloadError: The request's SLO is already unmeetable and
                the deployment sheds unmeetable work.
        """
        return self.router.route(
            images,
            deployment=deployment,
            slo_seconds=slo_seconds,
            session_id=session_id,
        )

    def _admit_request(
        self,
        deployment: Deployment,
        images: np.ndarray,
        slo_seconds: float | None,
    ) -> None:
        """The router's admission hook: gate one submission, count the
        rejection on the deployment's metrics, re-raise typed."""
        admission = deployment.admission
        if admission is None:
            return
        now = self._clock()
        predicted = None
        if admission.shed_unmeetable and slo_seconds is not None:
            predicted = self._predicted_delay(deployment, now)
        try:
            admission.check(
                now=now,
                pending=len(deployment.queue),
                predicted_delay_seconds=predicted,
                slo_seconds=slo_seconds,
            )
        except AdmissionError:
            deployment.metrics.rejected_requests += 1
            raise
        except OverloadError:
            deployment.metrics.shed_requests += 1
            raise

    def _predicted_delay(self, deployment: Deployment, now: float) -> float:
        """Completion-delay estimate for a request admitted right now.

        Window-close wait plus the backlog's batch count spread over the
        live pool, each batch costing the measured service EWMA — or,
        before the EWMA warms up, the planner's one-window wire time
        (:func:`~repro.edge.planner.predict_window_latency` feedforward).
        """
        batcher = deployment.batcher
        close = batcher.close_time()
        queue_wait = (
            max(0.0, close - now)
            if close is not None
            else batcher.batch_timeout
        )
        backlog_batches = math.ceil(
            (len(deployment.queue) + 1) / max(1, deployment.batch_window)
        )
        per_batch = max(batcher.service_estimate, deployment.window_wire_seconds)
        rounds = math.ceil(backlog_batches / max(1, self.alive_workers))
        return queue_wait + per_batch * rounds

    @property
    def pending(self) -> int:
        """Requests waiting in any deployment's queue."""
        return sum(len(deployment.queue) for deployment in self.registry)

    @property
    def in_flight(self) -> int:
        """Micro-batches dispatched to workers and not yet collected."""
        return len(self._flights)

    @property
    def alive_workers(self) -> int:
        """Workers that have not crashed."""
        with self._alive_guard:
            return self._alive

    def pump_handles(self, *, flush: bool = False) -> list[RequestHandle]:
        """One dispatcher turn: dispatch ready windows of every
        deployment, collect finished batches, and return the handles that
        became deliverable (per-session submission order within each
        deployment's sessions)."""
        if not self._closed:
            if self._autoscaler is not None:
                self._autoscaler.step(self._clock())
            if self.alive_workers > self.target_workers:
                self._try_shrink()  # deferred shrink: contexts were busy
        self._dispatch_ready(flush=flush)
        return self._collect(block=False)

    def pump(self, *, flush: bool = False) -> list[RequestHandle]:
        """Alias of :meth:`pump_handles` (the single-deployment engine
        overrides this to return bare request ids)."""
        return self.pump_handles(flush=flush)

    def next_action_time(self) -> float | None:
        """Earliest instant any deployment's window must close (``None``
        when every queue is empty)."""
        closes = [
            close
            for deployment in self.registry
            if (close := deployment.batcher.close_time()) is not None
        ]
        return min(closes) if closes else None

    def drain_handles(self) -> list[RequestHandle]:
        """Flush every queue, wait for every worker, deliver everything."""
        delivered: list[RequestHandle] = []
        while self.pending or self._flights:
            self._dispatch_ready(flush=True)
            delivered.extend(self._collect(block=bool(self._flights)))
        return delivered

    def drain(self) -> list[RequestHandle]:
        """Alias of :meth:`drain_handles` (see :meth:`pump`)."""
        return self.drain_handles()

    def result_for(self, handle: RequestHandle) -> np.ndarray:
        """Collect (and release) the logits of a delivered request."""
        deployment = self.registry.get(handle.deployment)
        if handle.request_id not in deployment.deliverable:
            raise ConfigurationError(
                f"request {handle.request_id} of deployment "
                f"{handle.deployment!r} has no deliverable result (still "
                "queued or in flight, gated behind an earlier request of "
                "its session, unknown, or already collected)"
            )
        return deployment.deliverable.pop(handle.request_id)

    def result(self, handle: RequestHandle) -> np.ndarray:
        """Alias of :meth:`result_for` (see :meth:`pump`)."""
        return self.result_for(handle)

    def has_result(self, handle: RequestHandle) -> bool:
        """Whether ``handle`` has a deliverable (uncollected) result.

        ``False`` for unknown handles and unregistered deployments — safe
        to poll across :meth:`unregister`.
        """
        if handle.deployment not in self.registry:
            return False
        deployment = self.registry.get(handle.deployment)
        return handle.request_id in deployment.deliverable

    # ------------------------------------------------------------------
    # Elastic lifecycle (dispatcher thread only)
    # ------------------------------------------------------------------
    def heal(self, *, to: int | None = None) -> int:
        """Re-spawn crashed workers until the pool is back at target.

        Each respawned context is pre-warmed for every registered
        deployment (executor caches via :meth:`CloudServer.warm`, its own
        channel clone), so healed capacity serves without cold-start
        jitter.  Bit parity is untouched: noise draws happened on the
        dispatcher before dispatch, so the cloud half is pure.

        Args:
            to: Pool size to restore (default ``target_workers``); capped
                at ``max_workers``.

        Returns:
            Number of workers spawned.
        """
        if self._closed:
            raise ConfigurationError("serving control plane is closed")
        target = min(
            self.target_workers if to is None else to, self.max_workers
        )
        if to is not None:
            # An explicit restore target becomes the new healing target —
            # otherwise the deferred-shrink pass would undo it next pump.
            self.target_workers = max(1, target)
        spawned = 0
        while self.alive_workers < target:
            self._spawn()
            spawned += 1
            self.pool_metrics.respawned_workers += 1
        if spawned:
            self.pool_metrics.pool_size_samples.append(self.alive_workers)
        return spawned

    def scale_to(self, n: int) -> int:
        """Grow or shrink the pool to ``n`` live workers.

        Growth spawns pre-warmed contexts immediately.  Shrinking only
        retires *parked* contexts — a context executing a micro-batch
        finishes it first and is retired on a later pump turn (the pool
        never abandons admitted work).

        Returns:
            The live worker count after this call (may still exceed ``n``
            when a shrink is deferred behind in-flight batches).
        """
        if self._closed:
            raise ConfigurationError("serving control plane is closed")
        if not 1 <= n <= self.max_workers:
            raise ConfigurationError(
                f"pool size must be in [1, {self.max_workers}], got {n}"
            )
        self.target_workers = n
        while self.alive_workers < n:
            self._spawn()
        self._try_shrink()
        self.pool_metrics.pool_size_samples.append(self.alive_workers)
        return self.alive_workers

    def _try_shrink(self) -> None:
        """Retire parked contexts until the pool matches ``target_workers``
        (best-effort: busy contexts are retried on later pump turns)."""
        while self.alive_workers > self.target_workers:
            try:
                context = self._contexts.get_nowait()
            except Empty:
                return
            if not context.alive:  # pragma: no cover - defensive
                continue
            context.alive = False
            with self._alive_guard:
                self._alive -= 1
            context.servers.clear()
            context.channels.clear()

    def enable_autoscale(
        self,
        *,
        min_workers: int = 1,
        max_workers: int | None = None,
        **policy,
    ) -> "Autoscaler":
        """Install an :class:`Autoscaler` stepped on every pump turn.

        Args:
            min_workers / max_workers: Pool bounds (``max_workers``
                defaults to the plane's ceiling).
            **policy: Forwarded to :class:`Autoscaler` (interval,
                utilisation target, backlog factor, idle steps).
        """
        self._autoscaler = Autoscaler(
            self,
            min_workers=min_workers,
            max_workers=(
                max_workers if max_workers is not None else self.max_workers
            ),
            **policy,
        )
        return self._autoscaler

    @property
    def autoscaler(self) -> "Autoscaler | None":
        """The installed autoscaler, if any."""
        return self._autoscaler

    def drain_deployment(
        self, name: str, *, timeout: float = 30.0
    ) -> list[RequestHandle]:
        """Drain one deployment to a barrier: flush its queue, collect
        every micro-batch still in flight (any tenant's — collection is
        global), and return every handle delivered on the way.

        Other deployments' *queued* requests stay queued; only this
        deployment's windows are force-closed.

        Raises:
            DeploymentDrainError: The barrier was not reached within
                ``timeout`` wall seconds.
        """
        deployment = self.registry.get(name)
        deadline = time.monotonic() + timeout
        delivered: list[RequestHandle] = []
        while len(deployment.queue) or any(
            flight.deployment == name for flight in self._flights
        ):
            if time.monotonic() > deadline:
                raise DeploymentDrainError(
                    f"deployment {name!r} did not drain within {timeout:.1f}s "
                    f"({len(deployment.queue)} queued, "
                    f"{sum(f.deployment == name for f in self._flights)} "
                    "micro-batches in flight)"
                )
            now = self._clock()
            while True:
                window = deployment.batcher.next_batch(now, flush=True)
                if not window:
                    break
                self._dispatch(deployment, window, now)
            delivered.extend(self._collect(block=bool(self._flights)))
        return delivered

    def _quiesce(self, *, timeout: float = 30.0) -> list[RequestHandle]:
        """Collect every in-flight micro-batch (no new dispatches) so all
        worker contexts are parked — the precondition for re-equipping."""
        deadline = time.monotonic() + timeout
        delivered: list[RequestHandle] = []
        while self._flights:
            if time.monotonic() > deadline:  # pragma: no cover - wedge guard
                raise DeploymentDrainError(
                    f"{len(self._flights)} micro-batches still in flight "
                    f"after {timeout:.1f}s quiesce"
                )
            delivered.extend(self._collect(block=True))
        return delivered

    def swap(
        self,
        name: str,
        *,
        noise: NoiseCollection | None | object = _UNSET,
        rng: np.random.Generator | NoiseStream | None = None,
        model: SplittableModel | None = None,
        cut: str | None = None,
        timeout: float = 30.0,
    ) -> list[RequestHandle]:
        """Hot-swap a deployment's noise collection (and/or model/cut)
        under live traffic.

        The deployment is first drained to a barrier (its queued requests
        dispatch and deliver under the *old* configuration; other tenants
        keep serving), then every worker context is re-equipped with the
        new split.  Requests submitted after this call returns are served
        by the new configuration — bit-identical to a fresh sequential
        reference over the new ``(model, cut, noise, rng)``; no request
        ever straddles the swap point.

        Args:
            noise: New noise collection; omit to keep the current one,
                pass ``None`` explicitly to remove noise.
            rng: New noise-sampling stream; omit to let the existing
                stream continue across the swap (its draw sequence is
                part of the *old* regime's parity only up to the barrier).
            model / cut: Optional backbone/cut replacement.  Changing
                either drops the deployment's uplink quantization (its
                calibration no longer applies).
            timeout: Drain-barrier budget in wall seconds.

        Returns:
            Handles delivered while draining to the barrier.

        Raises:
            DeploymentDrainError: The drain barrier timed out (the
                deployment is left un-swapped).
        """
        deployment = self.registry.get(name)
        delivered = self.drain_deployment(name, timeout=timeout)
        delivered.extend(self._quiesce(timeout=timeout))
        new_model = model if model is not None else deployment.model
        new_cut = cut if cut is not None else deployment.cut
        new_noise = (
            deployment.device.noise if noise is _UNSET else noise
        )
        if rng is None:
            stream = deployment.device.noise_stream
        elif isinstance(rng, NoiseStream):
            stream = rng
        else:
            stream = NoiseStream(rng)
        quantization = (
            deployment.device.quantization
            if model is None and cut is None
            else None
        )
        local, remote = new_model.split(new_cut)
        # The weight regime survives the swap: a new model's weights are
        # re-quantised from scratch by the fresh executors (the int8 code
        # planes live in the lowered programs, never in the deployment).
        device = EdgeDevice(
            local,
            deployment.device.mean,
            deployment.device.std,
            new_noise,
            stream,
            quantization,
            kernel_backend=deployment.kernel_backend,
            weight_bits=deployment.weight_bits,
        )
        activation_shapes = [
            device.warm((rows, *new_model.input_shape))
            for rows in range(1, deployment.batch_window + 1)
        ]
        contexts = [self._checkout_context() for _ in range(self.alive_workers)]
        saved = [(context, context.servers.get(name)) for context in contexts]
        try:
            for context in contexts:
                server = CloudServer(
                    remote,
                    deployment.kernel_backend,
                    weight_bits=deployment.weight_bits,
                )
                for shape in activation_shapes:
                    server.warm(shape, quantization=quantization)
                # The channel clone survives the swap: same link, and its
                # accumulated statistics stay with the deployment.
                context.servers[name] = server
        except BaseException:
            for context, old_server in saved:
                if old_server is not None:
                    context.servers[name] = old_server
            raise
        finally:
            for context in contexts:
                self._contexts.put(context)
        deployment.model = new_model
        deployment.cut = new_cut
        deployment.device = device
        deployment.remote = remote
        deployment.activation_shapes = activation_shapes
        deployment.edge_kilomacs = cut_cost(new_model, new_cut).kilomacs
        return delivered

    def unregister(
        self, name: str, *, timeout: float = 30.0
    ) -> dict[int, np.ndarray]:
        """Remove a deployment under live traffic.

        Drains the tenant to a barrier first (queued and in-flight work
        delivers), strips its executors/channels from every worker
        context, and removes it from the registry — other tenants keep
        serving throughout.  Submissions naming the removed deployment
        then raise :class:`~repro.errors.ConfigurationError`.

        Returns:
            The drained tenant's still-uncollected results, by request
            id (nothing is silently dropped).

        Raises:
            DeploymentDrainError: The drain barrier timed out (the
                deployment stays registered).
        """
        deployment = self.registry.get(name)
        self.drain_deployment(name, timeout=timeout)
        self._quiesce(timeout=timeout)
        contexts = [self._checkout_context() for _ in range(self.alive_workers)]
        try:
            for context in contexts:
                context.servers.pop(name, None)
                context.channels.pop(name, None)
        finally:
            for context in contexts:
                self._contexts.put(context)
        self.registry.remove(name)
        deployment.noise_stream.release()
        return dict(deployment.deliverable)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def metrics_by_deployment(self) -> dict[str, ServingMetrics]:
        """Each deployment's metrics object, by name."""
        return {
            deployment.name: deployment.metrics for deployment in self.registry
        }

    def report_for(self, deployment: str) -> SessionReport:
        """Sequential-session-compatible accounting for one deployment."""
        target = self.registry.get(deployment)
        return SessionReport(
            requests=target.metrics.requests,
            uplink_bytes=target.metrics.uplink_bytes,
            downlink_bytes=target.metrics.downlink_bytes,
            simulated_seconds=sum(
                channel.stats.simulated_seconds for channel in target.channels
            ),
            edge_kilomacs_per_sample=target.edge_kilomacs,
        )

    # ------------------------------------------------------------------
    # Dispatch (dispatcher thread only)
    # ------------------------------------------------------------------
    def _dispatch_ready(self, *, flush: bool) -> None:
        if self._closed:
            raise ConfigurationError("serving engine is closed")
        for deployment in self.registry:
            now = self._clock()
            while True:
                window = deployment.batcher.next_batch(now, flush=flush)
                if not window:
                    break
                self._dispatch(deployment, window, now)

    def _dispatch(
        self,
        deployment: Deployment,
        window: list[InferenceRequest],
        now: float,
    ) -> None:
        if deployment.span_start is None:
            deployment.span_start = now
        for request in window:
            deployment.metrics.queue_ages.append(now - request.submitted_at)
            deployment.session_waiting.setdefault(
                request.ordering_key, deque()
            ).append(request)
        deployment.metrics.record_mixing(
            [request.ordering_key for request in window],
            [request.rows for request in window],
        )
        # Edge half on the dispatcher: the deployment's noise stream has
        # exactly one owner, and draws happen in arrival order — the
        # parity contract, per deployment.
        message = deployment.device.forward_batch(
            [request.images for request in window],
            [request.request_id for request in window],
        )
        # Shuffler stage: permute the stacked rows across sessions after
        # noise (and any quantisation — both row-local) so the wire
        # frame's row order carries no session information.  The inverse
        # rides on the flight; _absorb restores per-request order before
        # demultiplexing, so parity is untouched.
        permutation = None
        if deployment.shuffler is not None:
            permutation = deployment.shuffler.permute(len(message.tensor))
            if permutation is not None:
                message = BatchActivationMessage(
                    request_ids=message.request_ids,
                    splits=message.splits,
                    tensor=permutation.apply(message.tensor),
                    quantization=message.quantization,
                )
                deployment.metrics.record_shuffle(
                    [request.ordering_key for request in window]
                )
        uplink = encode_activation_batch(message)
        task = _Task(
            deployment.name,
            uplink,
            tuple(request.request_id for request in window),
        )
        future = self._pool.submit(self._execute, task)
        self._flights.append(
            _Flight(self._next_seq, deployment.name, window, task, future,
                    len(uplink), permutation=permutation)
        )
        self._next_seq += 1
        self.pool_metrics.pool_size_samples.append(self.alive_workers)

    # ------------------------------------------------------------------
    # Cloud half (worker threads)
    # ------------------------------------------------------------------
    def _execute(self, task: _Task) -> _ServiceResult:
        context = self._acquire_context()
        started = time.perf_counter()
        try:
            if self._fault_injector is not None and self._fault_injector(
                context.worker_id, task
            ):
                self._kill_context(context)
                raise WorkerCrashError(
                    f"worker {context.worker_id} crashed servicing a "
                    f"micro-batch of deployment {task.deployment!r}",
                    worker_id=context.worker_id,
                )
            channel = context.channels[task.deployment]
            server = context.servers[task.deployment]
            wire_before = channel.stats.simulated_seconds
            delivered = decode_activation_batch(channel.transmit(task.uplink))
            response = server.predict_batch(delivered)
            downlink = channel.transmit(encode_prediction_batch(response))
            decoded = decode_prediction_batch(downlink)
            return _ServiceResult(
                worker_id=context.worker_id,
                decoded=decoded,
                downlink_bytes=len(downlink),
                wire_seconds=channel.stats.simulated_seconds - wire_before,
                busy_seconds=time.perf_counter() - started,
            )
        finally:
            if context.alive:
                self._contexts.put(context)

    def _acquire_context(self) -> _WorkerContext:
        """Check a live worker context out of the pool.

        Raises :class:`~repro.errors.WorkerCrashError` instead of blocking
        forever when every worker has crashed while this task queued.
        """
        while True:
            try:
                return self._contexts.get(timeout=0.05)
            except Empty:
                if self.alive_workers == 0:
                    raise WorkerCrashError(
                        "no surviving worker context to service the batch"
                    ) from None

    def _kill_context(self, context: _WorkerContext) -> None:
        context.alive = False
        with self._alive_guard:
            self._alive -= 1

    # ------------------------------------------------------------------
    # Collection + crash recovery (dispatcher thread only)
    # ------------------------------------------------------------------
    def _collect(self, *, block: bool) -> list[RequestHandle]:
        delivered: list[RequestHandle] = []
        while self._flights:
            ready = [f for f in self._flights if f.future.done()]
            if not ready:
                if not block:
                    break
                # Wait for the oldest flight; workers race, so a newer one
                # may well finish first — the next loop pass absorbs it.
                flight = self._flights[0]
                try:
                    flight.future.result()
                except WorkerCrashError:
                    self._recover(flight)
                except BaseException:
                    self._discard_flight(flight)
                    raise
                continue
            for flight in ready:
                self._flights.remove(flight)
                try:
                    result = flight.future.result()
                except WorkerCrashError:
                    self._recover(flight)
                    continue
                except BaseException:
                    self._discard_flight(flight)
                    raise
                self._absorb(flight, result, delivered)
            if not block:
                break
        return delivered

    def _recover(self, flight: _Flight) -> None:
        """Requeue a crash-interrupted micro-batch exactly once.

        The crashed attempt produced no result (a worker dies *before*
        shipping its downlink), so re-executing the cloud half on the same
        uplink bytes completes the batch exactly once; noise was drawn on
        the dispatcher long before, so the retried logits are bit-identical
        to an undisturbed run.  When no worker survives, the flight is
        discarded and :class:`~repro.errors.ServingFaultError` surfaces —
        unless ``auto_heal`` is on, in which case the pool is restored to
        ``target_workers`` first (so even total worker loss recovers).
        """
        if flight in self._flights:
            self._flights.remove(flight)
        if self.auto_heal and self.alive_workers < self.target_workers:
            self.heal()
        if self.alive_workers == 0:
            self._discard_flight(flight)
            raise ServingFaultError(
                f"every cloud worker has crashed; micro-batch of deployment "
                f"{flight.deployment!r} (requests {list(flight.task.request_ids)}) "
                "cannot be recovered"
            )
        flight.attempts += 1
        self.registry.get(flight.deployment).metrics.requeued_batches += 1
        flight.future = self._pool.submit(self._execute, flight.task)
        self._flights.append(flight)

    def _discard_flight(self, flight: _Flight) -> None:
        """Drop a failed micro-batch without wedging the engine.

        The flight's requests are lost (the worker error propagates to the
        caller), but they must not stay in the session-ordering gate or
        the flight deque — later requests of the same sessions, and later
        ``pump``/``drain`` calls, keep working.
        """
        if flight in self._flights:
            self._flights.remove(flight)
        deployment = self.registry.get(flight.deployment)
        for request in flight.window:
            waiting = deployment.session_waiting.get(request.ordering_key)
            if waiting is None:
                continue
            try:
                waiting.remove(request)
            except ValueError:
                pass
            if not waiting:
                del deployment.session_waiting[request.ordering_key]

    def _absorb(
        self,
        flight: _Flight,
        result: _ServiceResult,
        delivered: list[RequestHandle],
    ) -> None:
        deployment = self.registry.get(flight.deployment)
        now = self._clock()
        decoded = result.decoded
        if flight.permutation is not None:
            # Un-permute the stacked logits with the recorded inverse
            # before demultiplexing: wire rows come back in shuffle order,
            # and split_logits slices by the *request-order* splits.
            decoded = BatchPredictionMessage(
                request_ids=decoded.request_ids,
                splits=decoded.splits,
                logits=flight.permutation.restore(decoded.logits),
            )
        for request, logits in zip(flight.window, decoded.split_logits()):
            deployment.computed[request.request_id] = logits
        metrics = deployment.metrics
        metrics.requests += len(flight.window)
        metrics.samples += sum(request.rows for request in flight.window)
        metrics.micro_batches += 1
        metrics.occupancies.append(len(flight.window))
        metrics.uplink_bytes += flight.uplink_bytes
        metrics.downlink_bytes += result.downlink_bytes
        metrics.simulated_wire_seconds += result.wire_seconds
        metrics.record_worker(result.worker_id, result.busy_seconds)
        deployment.batcher.observe_service(result.busy_seconds)
        for request in flight.window:
            self._release_session(
                deployment, request.ordering_key, now, delivered
            )

    def _release_session(
        self,
        deployment: Deployment,
        key: Hashable,
        now: float,
        delivered: list[RequestHandle],
    ) -> None:
        waiting = deployment.session_waiting.get(key)
        while waiting and waiting[0].request_id in deployment.computed:
            request = waiting.popleft()
            logits = deployment.computed.pop(request.request_id)
            deployment.deliverable[request.request_id] = logits
            deployment.metrics.record_completion(
                now - request.submitted_at, request.slo_seconds
            )
            delivered.append(RequestHandle(deployment.name, request.request_id))
            if deployment.span_start is not None:
                deployment.metrics.wall_seconds = now - deployment.span_start
        if waiting is not None and not waiting:
            del deployment.session_waiting[key]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the shared worker pool down (idempotent).

        The pool join and the context release both run under
        ``try/finally`` so the threads are reaped and every worker
        context — alive, crashed, or retired — is drained and stripped
        of its executors/channels even if cancelling the in-flight
        futures raises.  Shutdown must never leak worker threads or keep
        dead contexts (and their executor caches) reachable, including
        after a fault left killed contexts outside the pool queue.
        """
        if self._closed:
            return
        self._closed = True
        try:
            for flight in list(self._flights):
                flight.future.cancel()
        finally:
            try:
                self._pool.shutdown(wait=True)
            finally:
                self._release_contexts()

    def _release_contexts(self) -> None:
        """Drain the context pool and release every context ever spawned
        (alive and dead alike): drop executors and channel clones so
        nothing keeps warm caches alive past :meth:`close`."""
        while True:
            try:
                self._contexts.get_nowait()
            except Empty:
                break
        for context in self._all_contexts:
            context.alive = False
            context.servers.clear()
            context.channels.clear()
        with self._alive_guard:
            self._alive = 0

    def __enter__(self) -> "ControlPlane":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass(frozen=True)
class AutoscaleDecision:
    """One pool-resize decision taken by the :class:`Autoscaler`."""

    at: float
    previous: int
    target: int
    reason: str


class Autoscaler:
    """Reactive + feedforward pool sizing from the plane's own signals.

    Stepped by the dispatcher on every pump turn (throttled to
    ``interval_seconds``), the autoscaler:

    1. **heals** — if the pool is below target (crashes), respawn first;
    2. **feeds forward** — per-deployment arrival rates (deltas of
       :attr:`~repro.serve.queue.RequestQueue.submitted`) times the
       measured batch service EWMA (or, cold, the planner's
       :func:`~repro.edge.planner.predict_window_latency` wire term)
       give the demand in busy-seconds/second; the pool grows to
       ``ceil(demand / target_utilisation)`` when that exceeds it;
    3. **reacts** — visible backlog (queued batches above
       ``backlog_factor`` per live worker) or SLO pressure (predicted
       backlog delay above a deployment's ``target_slo_seconds``) grows
       the pool by one;
    4. **decays** — after ``scale_down_idle_steps`` consecutive idle
       steps (no arrivals, nothing queued or in flight) the pool shrinks
       by one toward ``min_workers``.

    Every decision is recorded in :attr:`decisions` and applied through
    :meth:`ControlPlane.scale_to` (shrinks never preempt running
    batches).
    """

    def __init__(
        self,
        plane: ControlPlane,
        *,
        min_workers: int = 1,
        max_workers: int | None = None,
        interval_seconds: float = 0.05,
        target_utilisation: float = 0.7,
        backlog_factor: float = 2.0,
        scale_down_idle_steps: int = 4,
    ) -> None:
        if min_workers < 1:
            raise ConfigurationError(
                f"min_workers must be >= 1, got {min_workers}"
            )
        resolved_max = max_workers if max_workers is not None else plane.max_workers
        if not min_workers <= resolved_max <= plane.max_workers:
            raise ConfigurationError(
                f"need min_workers <= max_workers <= plane ceiling "
                f"({plane.max_workers}), got [{min_workers}, {resolved_max}]"
            )
        if not 0.0 < target_utilisation <= 1.0:
            raise ConfigurationError(
                f"target_utilisation must be in (0, 1], got {target_utilisation}"
            )
        self._plane = plane
        self.min_workers = min_workers
        self.max_workers = resolved_max
        self.interval_seconds = interval_seconds
        self.target_utilisation = target_utilisation
        self.backlog_factor = backlog_factor
        self.scale_down_idle_steps = scale_down_idle_steps
        self.decisions: list[AutoscaleDecision] = []
        self._last_step: float | None = None
        self._last_submitted: dict[str, int] = {}
        self._idle_steps = 0

    def step(self, now: float) -> int | None:
        """One control step: heal, then resize if the signals say so.

        Returns the new pool target when a resize happened, else ``None``.
        """
        if (
            self._last_step is not None
            and now - self._last_step < self.interval_seconds
        ):
            return None
        elapsed = None if self._last_step is None else now - self._last_step
        self._last_step = now
        plane = self._plane
        if plane.alive_workers < plane.target_workers:
            plane.heal()
        alive = plane.alive_workers
        arrivals = 0
        demand = 0.0
        backlog_batches = 0
        slo_pressure = False
        for deployment in plane.registry:
            submitted = deployment.queue.submitted
            before = self._last_submitted.get(deployment.name, submitted)
            self._last_submitted[deployment.name] = submitted
            new = submitted - before
            arrivals += new
            per_batch = max(
                deployment.batcher.service_estimate,
                deployment.window_wire_seconds,
            )
            if elapsed and per_batch > 0.0:
                rate = new / elapsed
                demand += (rate / max(1, deployment.batch_window)) * per_batch
            queued_batches = math.ceil(
                len(deployment.queue) / max(1, deployment.batch_window)
            )
            backlog_batches += queued_batches
            if (
                deployment.target_slo_seconds is not None
                and queued_batches
                and per_batch > 0.0
            ):
                predicted = per_batch * math.ceil(queued_batches / max(1, alive))
                if predicted > deployment.target_slo_seconds:
                    slo_pressure = True
        target = alive
        reason = None
        feedforward = (
            math.ceil(demand / self.target_utilisation) if demand > 0.0 else 0
        )
        if feedforward > alive:
            target = min(self.max_workers, feedforward)
            reason = f"feedforward demand {demand:.2f} busy-s/s"
        elif (
            backlog_batches > alive * self.backlog_factor or slo_pressure
        ) and alive < self.max_workers:
            target = alive + 1
            reason = (
                "SLO pressure"
                if slo_pressure
                else f"backlog {backlog_batches} batches over {alive} workers"
            )
        if target > alive:
            self._idle_steps = 0
        elif arrivals == 0 and plane.pending == 0 and plane.in_flight == 0:
            self._idle_steps += 1
            if (
                self._idle_steps >= self.scale_down_idle_steps
                and alive > self.min_workers
            ):
                target = alive - 1
                reason = f"idle for {self._idle_steps} steps"
                self._idle_steps = 0
        else:
            self._idle_steps = 0
        if target == alive or reason is None:
            return None
        self.decisions.append(
            AutoscaleDecision(at=now, previous=alive, target=target, reason=reason)
        )
        plane.scale_to(target)
        return target
