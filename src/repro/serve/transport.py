"""Real-socket transport for the process-sharded serving plane.

Everything before this module moved bytes through the *simulated*
:class:`~repro.edge.Channel`; here the fuzz-hardened SHRB/SHRD frames
finally cross a real kernel socket (``socketpair`` in tests, TCP between
the sharded parent and its shard subprocesses).  A stream socket has no
message boundaries, so frames travel length-prefixed::

    4s  magic  "SHRL"
    I   payload length (bytes)
    ... payload (opaque — typically one SHRB/SHRD frame, whose own CRC32
        covers payload integrity)

:class:`FrameDecoder` is deliberately *incremental*: it consumes whatever
bytes the kernel happened to deliver (one byte at a time in the fuzz
suite) and yields complete payloads as they materialise, without ever
blocking, over-reading, or mis-framing across partial reads.  Malformed
headers raise :class:`~repro.errors.ChannelError` — same typed-error
contract as the SHRB codec.  A dead peer (EOF / reset) raises
:class:`~repro.errors.ShardCrashError`, the sharded plane's healing
trigger.

:class:`SocketTransport` wraps one connected socket with short-write-safe
sends and incremental receives.  Backpressure is real: a blocking send
stalls when the peer stops reading (bounded kernel buffers), and the
non-blocking path hands control to an ``on_block`` callback so the
sharded parent can drain inbound results while its outbound buffer is
full instead of deadlocking.
"""

from __future__ import annotations

import socket
import struct
from typing import Callable

from repro.errors import ChannelError, ConfigurationError, ShardCrashError

#: Frame header: magic + payload byte length.
_HEADER = struct.Struct("<4sI")
_FRAME_MAGIC = b"SHRL"

#: Refuse absurd frame lengths outright: a corrupted header must fail
#: typed instead of making the decoder wait forever for bytes that will
#: never arrive (the "never hangs" fuzz property).
DEFAULT_MAX_FRAME_BYTES = 1 << 30

#: Receive granularity.  Small enough to exercise partial-frame handling
#: under load, large enough to amortise syscalls on bulk tensors.
_RECV_CHUNK = 1 << 16


def encode_frame(payload: bytes) -> bytes:
    """``payload`` wrapped in the length-prefixed wire header."""
    return _HEADER.pack(_FRAME_MAGIC, len(payload)) + payload


class FrameDecoder:
    """Incremental length-prefixed frame parser.

    Feed it byte fragments in whatever sizes the socket delivers;
    complete payloads come out in order.  The decoder never buffers more
    than one frame beyond the fragment it was handed and never needs to
    see the whole frame at once.

    Args:
        max_frame_bytes: Typed-error ceiling on the declared payload
            length (corrupted headers otherwise turn into unbounded
            waits).
    """

    def __init__(self, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
        if max_frame_bytes < 1:
            raise ConfigurationError(
                f"max_frame_bytes must be positive, got {max_frame_bytes}"
            )
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        self._need: int | None = None  # payload length once the header parsed

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered towards the next (incomplete) frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[bytes]:
        """Absorb ``data`` and return every frame payload it completed.

        Raises:
            ChannelError: Bad magic or a declared length beyond
                ``max_frame_bytes`` — the stream is mis-framed and no
                further byte can be trusted.
        """
        self._buffer.extend(data)
        frames: list[bytes] = []
        while True:
            if self._need is None:
                if len(self._buffer) < _HEADER.size:
                    break
                magic, length = _HEADER.unpack_from(self._buffer)
                if magic != _FRAME_MAGIC:
                    raise ChannelError(
                        f"bad transport frame magic {bytes(magic)!r}"
                    )
                if length > self.max_frame_bytes:
                    raise ChannelError(
                        f"transport frame declares {length} bytes "
                        f"(cap {self.max_frame_bytes}); refusing to wait"
                    )
                del self._buffer[: _HEADER.size]
                self._need = length
            if len(self._buffer) < self._need:
                break
            frames.append(bytes(self._buffer[: self._need]))
            del self._buffer[: self._need]
            self._need = None
        return frames


class SocketTransport:
    """Length-prefixed frames over one connected stream socket.

    Args:
        sock: A connected ``socket.socket`` (TCP or ``socketpair``).
        shard_id: Attached to :class:`~repro.errors.ShardCrashError` so
            the parent knows which peer died.
        max_frame_bytes: See :class:`FrameDecoder`.
    """

    def __init__(
        self,
        sock: socket.socket,
        *,
        shard_id: int | None = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self._sock = sock
        self.shard_id = shard_id
        self._decoder = FrameDecoder(max_frame_bytes)
        self._ready: list[bytes] = []
        self._closed = False
        try:
            # The shard protocol is request/response over small frames;
            # Nagle coalescing only adds latency.  No-op on AF_UNIX pairs.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(
        self, payload: bytes, *, on_block: Callable[[], None] | None = None
    ) -> None:
        """Write one frame, riding out short writes.

        The write loop advances by whatever ``socket.send`` accepted, so
        partial kernel-buffer acceptance (short writes) never corrupts
        framing.  When the buffer is *full*:

        * without ``on_block``, a blocking socket simply stalls — that is
          the backpressure contract (a slow peer slows the sender);
        * with ``on_block``, the callback runs each time the kernel
          refuses bytes (the socket must be non-blocking), letting the
          caller drain its inbound direction instead of deadlocking on a
          peer that is itself blocked sending to us.

        Raises:
            ShardCrashError: The peer died mid-write.
        """
        frame = memoryview(encode_frame(payload))
        sent = 0
        while sent < len(frame):
            try:
                sent += self._sock.send(frame[sent:])
            except (BlockingIOError, InterruptedError, socket.timeout):
                # Full kernel buffer (or a timeout-mode stall): backpressure,
                # not peer death — keep retrying, draining inbound if asked.
                if on_block is not None:
                    on_block()
            except (BrokenPipeError, ConnectionResetError, OSError) as exc:
                raise ShardCrashError(
                    f"peer died mid-send after {sent} bytes: {exc}",
                    shard_id=self.shard_id,
                ) from exc

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def recv(self, timeout: float | None = None) -> bytes | None:
        """The next frame payload, or ``None`` when ``timeout`` expires.

        Reads are incremental: whatever fragment the kernel delivers is
        fed to the decoder, and the call returns as soon as one complete
        frame exists — it never waits for bytes beyond the frame.

        Args:
            timeout: ``None`` blocks until a frame (or peer death);
                ``0`` polls.

        Raises:
            ShardCrashError: EOF or reset from the peer (with any
                partial frame discarded — a dead shard's half-frame is
                unusable by construction).
            ChannelError: The stream is mis-framed (decoder error).
        """
        if self._ready:
            return self._ready.pop(0)
        self._sock.settimeout(timeout)
        while True:
            try:
                chunk = self._sock.recv(_RECV_CHUNK)
            except socket.timeout:
                return None
            except (BlockingIOError, InterruptedError):
                return None
            except (ConnectionResetError, OSError) as exc:
                raise ShardCrashError(
                    f"peer reset the connection: {exc}", shard_id=self.shard_id
                ) from exc
            if chunk == b"":
                raise ShardCrashError(
                    "peer closed the connection"
                    + (
                        f" with {self._decoder.pending_bytes} bytes of a "
                        "partial frame outstanding"
                        if self._decoder.pending_bytes
                        else ""
                    ),
                    shard_id=self.shard_id,
                )
            frames = self._decoder.feed(chunk)
            if frames:
                self._ready.extend(frames[1:])
                return frames[0]

    def try_recv(self) -> bytes | None:
        """Non-blocking :meth:`recv` (``None`` when no frame is ready)."""
        return self.recv(timeout=0)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def setblocking(self, flag: bool) -> None:
        self._sock.setblocking(flag)

    def fileno(self) -> int:
        return self._sock.fileno()

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()

    def __enter__(self) -> "SocketTransport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def transport_pair(
    *, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> tuple[SocketTransport, SocketTransport]:
    """Two connected transports over a real ``socketpair`` (tests)."""
    left, right = socket.socketpair()
    return (
        SocketTransport(left, max_frame_bytes=max_frame_bytes),
        SocketTransport(right, max_frame_bytes=max_frame_bytes),
    )
