"""The batched split-inference serving session.

``BatchedInferenceSession`` is the throughput-oriented counterpart of the
sequential :class:`~repro.edge.InferenceSession`: requests are submitted to
a FIFO queue, a micro-batcher stacks up to ``batch_window`` of them, and
each micro-batch costs *one* local forward, *one* batched uplink frame,
*one* remote forward, and *one* downlink frame — instead of per-request
Python dispatch and per-request wire round trips.

Parity contract (enforced by ``tests/serve/test_session_parity.py``): on
the same request stream with the same noise-sampling generator, the batched
session produces **bit-identical logits** to the sequential reference path.
This holds because (a) both paths run the
:class:`~repro.edge.BatchInvariantExecutor`, whose per-row results are
independent of batch geometry, and (b) the edge device draws each
request's noise members in arrival order from the shared generator, so the
sample streams coincide.  Quantised sessions trade that exactness for a
4x smaller uplink (the stacked payload is quantised once per micro-batch).
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

import numpy as np

from repro.core.sampler import NoiseCollection
from repro.edge.channel import Channel
from repro.edge.costs import cut_cost
from repro.edge.device import CloudServer, EdgeDevice, SessionReport
from repro.edge.protocol import (
    BatchActivationMessage,
    BatchPredictionMessage,
    decode_activation_batch,
    decode_prediction_batch,
    encode_activation_batch,
    encode_prediction_batch,
)
from repro.edge.quantization import QuantizationParams
from repro.errors import ConfigurationError
from repro.models.base import SplittableModel
from repro.serve.metrics import ServingMetrics
from repro.serve.queue import MicroBatcher, RequestQueue
from repro.serve.scheduler import Shuffler


class BatchedInferenceSession:
    """End-to-end split inference with request queueing and micro-batching.

    Args:
        model: The full backbone (used for splitting and cost bookkeeping).
        cut: Cut-point name.
        mean / std: Input normalisation constants.
        noise: Noise collection for the edge device (optional).
        channel: Link model; default is a fast clean link.
        rng: Noise-sampling randomness (shared stream with the sequential
            reference path for parity).
        batch_window: Maximum requests stacked per micro-batch.
        max_rows: Optional cap on image rows per micro-batch.
        quantization: Optional affine code; quantises each stacked uplink
            payload once.
        kernel_backend: Forward-executor backend, selected once here and
            shared by the edge and cloud halves (bit-parity requires one
            backend per deployment; see :mod:`repro.edge.executor`).
        weight_bits: ``8`` runs both halves on int8-quantised weights
            (opt-in ``int8_weights`` IR rewrite).  The sequential
            reference must use the same value — the bit-parity guarantee
            holds *within* a weight regime, never across.
        isolate_sessions: Batch-composition policy (see
            :class:`~repro.serve.queue.MicroBatcher`): ``True`` never
            mixes two sessions in one micro-batch.
        shuffle: Permute rows across sessions inside each closed
            micro-batch (:class:`~repro.serve.scheduler.Shuffler`) before
            the frame is encoded, restoring order from the recorded
            inverse after the cloud half returns.  Shuffling happens
            after noise and quantisation (both row-local) and the
            executor is row-invariant, so the parity contract above is
            preserved bit for bit.
        shuffle_seed: Explicit shuffling-policy seed (default 0).
    """

    def __init__(
        self,
        model: SplittableModel,
        cut: str,
        mean: np.ndarray,
        std: np.ndarray,
        noise: NoiseCollection | None = None,
        channel: Channel | None = None,
        rng: np.random.Generator | None = None,
        batch_window: int = 8,
        max_rows: int | None = None,
        quantization: QuantizationParams | None = None,
        kernel_backend: str = "auto",
        weight_bits: int | None = None,
        isolate_sessions: bool = False,
        shuffle: bool = False,
        shuffle_seed: int | None = None,
    ) -> None:
        local, remote = model.split(cut)
        self.device = EdgeDevice(local, mean, std, noise, rng, quantization,
                                 kernel_backend=kernel_backend,
                                 weight_bits=weight_bits)
        self.server = CloudServer(remote, kernel_backend,
                                  weight_bits=weight_bits)
        self.channel = channel or Channel()
        self.cut = cut
        self.batch_window = batch_window
        self.queue = RequestQueue()
        self.batcher = MicroBatcher(
            self.queue, batch_window, max_rows, isolate_sessions
        )
        self.shuffler = (
            Shuffler(seed=0 if shuffle_seed is None else shuffle_seed)
            if shuffle
            else None
        )
        self._edge_cost = cut_cost(model, cut)
        self._results: dict[int, np.ndarray] = {}
        self._submitted: dict[int, float] = {}
        self.metrics = ServingMetrics()
        # Pre-size executor scratch (and compile native programs) for the
        # planner's chosen window so the first micro-batch pays no
        # allocation or compilation jitter in its latency percentiles.
        activation = self.device.warm((batch_window, *model.input_shape))
        self.server.warm(activation, quantization=quantization)

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------
    def submit(
        self,
        images: np.ndarray,
        *,
        slo_seconds: float | None = None,
        session_id=None,
    ) -> int:
        """Enqueue one request; returns the id to collect the result with.

        The FIFO session serves strictly in submission order, so an SLO
        here only feeds attainment accounting; deadline-aware scheduling
        is the :class:`~repro.serve.engine.ServingEngine`'s job.
        """
        request_id = self.queue.submit(
            images, slo_seconds=slo_seconds, session_id=session_id
        )
        return request_id

    @property
    def pending(self) -> int:
        """Requests waiting in the queue."""
        return len(self.queue)

    def step(self) -> list[int]:
        """Serve one micro-batch; returns the completed request ids.

        One stacked pass end to end: drain up to ``batch_window`` requests,
        run the local half once, ship one batched activation frame over the
        channel, run the remote half once, ship one batched prediction
        frame back, and demultiplex the logits to their request ids.
        """
        window = self.batcher.next_batch()
        if not window:
            return []
        start = time.perf_counter()
        for request in window:
            self.metrics.queue_ages.append(start - request.submitted_at)
        self.metrics.record_mixing(
            [request.ordering_key for request in window],
            [request.rows for request in window],
        )
        wire_before = self.channel.stats.simulated_seconds
        message = self.device.forward_batch(
            [request.images for request in window],
            [request.request_id for request in window],
        )
        permutation = None
        if self.shuffler is not None:
            permutation = self.shuffler.permute(len(message.tensor))
            if permutation is not None:
                message = BatchActivationMessage(
                    request_ids=message.request_ids,
                    splits=message.splits,
                    tensor=permutation.apply(message.tensor),
                    quantization=message.quantization,
                )
                self.metrics.record_shuffle(
                    [request.ordering_key for request in window]
                )
        uplink = encode_activation_batch(message)
        delivered = decode_activation_batch(self.channel.transmit(uplink))
        response = self.server.predict_batch(delivered)
        downlink = self.channel.transmit(encode_prediction_batch(response))
        decoded = decode_prediction_batch(downlink)
        if permutation is not None:
            decoded = BatchPredictionMessage(
                request_ids=decoded.request_ids,
                splits=decoded.splits,
                logits=permutation.restore(decoded.logits),
            )
        completed: list[int] = []
        now = time.perf_counter()
        for request, request_id, logits in zip(
            window, decoded.request_ids, decoded.split_logits()
        ):
            self._results[request_id] = logits
            self.metrics.record_completion(
                now - request.submitted_at, request.slo_seconds
            )
            completed.append(request_id)

        self.metrics.requests += len(window)
        self.metrics.samples += sum(request.rows for request in window)
        self.metrics.micro_batches += 1
        self.metrics.occupancies.append(len(window))
        self.metrics.uplink_bytes += len(uplink)
        self.metrics.downlink_bytes += len(downlink)
        self.metrics.wall_seconds += now - start
        self.metrics.simulated_wire_seconds += (
            self.channel.stats.simulated_seconds - wire_before
        )
        return completed

    def drain(self) -> None:
        """Serve micro-batches until the queue is empty."""
        while self.queue:
            self.step()

    def result(self, request_id: int) -> np.ndarray:
        """Collect (and release) the logits of a completed request."""
        if request_id not in self._results:
            raise ConfigurationError(
                f"request {request_id} has no result (still queued, unknown, "
                "or already collected)"
            )
        return self._results.pop(request_id)

    # ------------------------------------------------------------------
    # Stream convenience API
    # ------------------------------------------------------------------
    def infer_stream(
        self, stream: Iterable[np.ndarray] | Sequence[np.ndarray]
    ) -> list[np.ndarray]:
        """Submit a whole request stream, drain it, and return per-request
        logits in submission order."""
        ids = [self.submit(images) for images in stream]
        self.drain()
        return [self.result(request_id) for request_id in ids]

    def classify_stream(
        self, stream: Iterable[np.ndarray] | Sequence[np.ndarray]
    ) -> list[np.ndarray]:
        """Predicted labels per request, in submission order."""
        return [logits.argmax(axis=1) for logits in self.infer_stream(stream)]

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def report(self) -> SessionReport:
        """Sequential-session-compatible traffic/compute accounting."""
        return SessionReport(
            requests=self.metrics.requests,
            uplink_bytes=self.metrics.uplink_bytes,
            downlink_bytes=self.metrics.downlink_bytes,
            simulated_seconds=self.channel.stats.simulated_seconds,
            edge_kilomacs_per_sample=self._edge_cost.kilomacs,
        )
