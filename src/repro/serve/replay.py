"""Virtual-time replay of the serving scheduler.

The deadline-aware policy in :mod:`repro.serve.scheduler` is a pure
function of the queue and a caller-supplied ``now``, which makes it
possible to evaluate *scheduling* questions — does deadline-awareness beat
fixed windows on SLO attainment? what do queue-age histograms look like
under bursty arrivals? — deterministically, without running the neural
network or sleeping through a real arrival process.

:func:`simulate_schedule` replays a timed request trace through the exact
:class:`~repro.serve.scheduler.AdaptiveBatcher` code the live engine runs,
modelling ``workers`` parallel servers with a caller-supplied service-time
model, and returns the same :class:`~repro.serve.metrics.ServingMetrics`
the live engine produces.  Per-session ordered delivery is modelled too: a
request's delivery time is clamped to its session predecessor's.

The property suite (``tests/serve/test_scheduler_properties.py``) and the
``serving_slo`` section of the serving benchmark are both built on this:
identical traces through the deadline-aware and fixed-window policies,
compared on attainment at equal work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.serve.metrics import ServingMetrics
from repro.serve.queue import InferenceRequest, RequestQueue
from repro.serve.scheduler import AdaptiveBatcher


@dataclass(frozen=True)
class TimedRequest:
    """One request of a replayable trace.

    Attributes:
        arrival: Submission time (virtual seconds from stream start).
        rows: Image rows the request carries.
        slo_seconds: Optional latency SLO.
        session_id: Optional user-session key (ordered delivery).
    """

    arrival: float
    rows: int = 1
    slo_seconds: float | None = None
    session_id: Hashable | None = None


class VirtualClock:
    """A clock that only moves when the driver moves it (never backwards)."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def seek(self, instant: float) -> None:
        """Jump forward to ``instant`` (no-op when already past it)."""
        self.now = max(self.now, float(instant))

    def advance(self, seconds: float) -> None:
        """Move forward by ``seconds``."""
        if seconds < 0:
            raise ConfigurationError(
                f"a clock cannot move backwards (advance by {seconds})"
            )
        self.now += float(seconds)


@dataclass
class ScheduleResult:
    """Outcome of one simulated schedule.

    Attributes:
        metrics: The live engine's metrics object, filled with virtual
            times (``wall_seconds`` is the makespan).
        makespan: Stream start to last delivery, in virtual seconds.
        completions: ``(request_id, delivery_time)`` per request, in
            delivery order.
    """

    metrics: ServingMetrics
    makespan: float
    completions: list[tuple[int, float]]

    @property
    def throughput(self) -> float:
        """Requests per virtual second over the whole schedule."""
        if self.makespan <= 0:
            return 0.0
        return self.metrics.requests / self.makespan


def random_trace(
    rng: np.random.Generator,
    n_requests: int,
    *,
    mean_gap: float = 0.004,
    slo_choices: Sequence[float | None] = (None, 0.020, 0.060),
    n_sessions: int = 4,
    max_rows: int = 1,
) -> list[TimedRequest]:
    """A jittered arrival trace with mixed SLOs and mixed sessions.

    Arrival gaps are exponential (Poisson process) with ``mean_gap``
    seconds; each request draws an SLO uniformly from ``slo_choices``
    (``None`` entries mean best-effort), a session uniformly among
    ``n_sessions``, and a row count in ``[1, max_rows]``.
    """
    if n_requests < 1:
        raise ConfigurationError(f"need >= 1 request, got {n_requests}")
    trace: list[TimedRequest] = []
    instant = 0.0
    for _ in range(n_requests):
        instant += float(rng.exponential(mean_gap))
        slo = slo_choices[int(rng.integers(0, len(slo_choices)))]
        trace.append(
            TimedRequest(
                arrival=instant,
                rows=int(rng.integers(1, max_rows + 1)),
                slo_seconds=slo,
                session_id=f"user-{int(rng.integers(0, n_sessions))}",
            )
        )
    return trace


def simulate_schedule(
    trace: Sequence[TimedRequest],
    *,
    batch_window: int = 8,
    workers: int = 1,
    deadline_aware: bool = True,
    batch_timeout: float = 0.010,
    service_model: Callable[[list[InferenceRequest]], float] | None = None,
    service_estimate: float | None = None,
    max_rows: int | None = None,
    isolate_sessions: bool = False,
) -> ScheduleResult:
    """Replay ``trace`` through the batching policy in virtual time.

    Args:
        trace: Timed requests (sorted internally by arrival).
        batch_window / batch_timeout / deadline_aware / max_rows /
            isolate_sessions: The policy knobs, exactly as on the live
            engine (``isolate_sessions`` caps batches at session
            boundaries; the result metrics' ``mixing_index`` then reads
            zero).
        workers: Parallel servers; a formed batch starts on the earliest
            free one (batches are formed by the policy regardless of
            worker availability, mirroring the engine's dispatch queue).
        service_model: Virtual seconds one micro-batch takes on a worker;
            default ``1 ms + 0.5 ms per row``.
        service_estimate: Slack estimate handed to the batcher; defaults
            to the service model evaluated on a full window of
            single-image requests.

    Returns:
        A :class:`ScheduleResult` with engine-compatible metrics.
    """
    if workers < 1:
        raise ConfigurationError(f"need >= 1 worker, got {workers}")
    if service_model is None:
        service_model = lambda window: 1e-3 + 5e-4 * sum(r.rows for r in window)

    clock = VirtualClock()
    queue = RequestQueue(clock=clock)
    if service_estimate is None:
        probe = [
            InferenceRequest(request_id=-1, images=np.zeros((1, 1, 1, 1)))
            for _ in range(batch_window)
        ]
        service_estimate = float(service_model(probe))
    batcher = AdaptiveBatcher(
        queue,
        batch_window,
        max_rows=max_rows,
        batch_timeout=batch_timeout,
        service_estimate=service_estimate,
        deadline_aware=deadline_aware,
        isolate_sessions=isolate_sessions,
    )

    arrivals = sorted(trace, key=lambda request: request.arrival)
    metrics = ServingMetrics()
    worker_free = [0.0] * workers
    last_delivery: dict[Hashable, float] = {}
    completions: list[tuple[int, float]] = []
    index = 0

    def submit_due() -> None:
        nonlocal index
        while index < len(arrivals) and arrivals[index].arrival <= clock.now:
            timed = arrivals[index]
            queue.submit(
                np.zeros((timed.rows, 1, 1, 1), dtype=np.float32),
                slo_seconds=timed.slo_seconds,
                session_id=timed.session_id,
            )
            index += 1

    def dispatch(window: list[InferenceRequest]) -> None:
        formed = clock.now
        for request in window:
            metrics.queue_ages.append(formed - request.submitted_at)
        metrics.record_mixing(
            [request.ordering_key for request in window],
            [request.rows for request in window],
        )
        worker = int(np.argmin(worker_free))
        start = max(formed, worker_free[worker])
        service = float(service_model(window))
        end = start + service
        worker_free[worker] = end
        metrics.micro_batches += 1
        metrics.occupancies.append(len(window))
        metrics.requests += len(window)
        metrics.samples += sum(request.rows for request in window)
        metrics.record_worker(worker, service)
        for request in window:
            key = request.ordering_key
            delivery = max(end, last_delivery.get(key, end))
            last_delivery[key] = delivery
            metrics.record_completion(
                delivery - request.submitted_at, request.slo_seconds
            )
            completions.append((request.request_id, delivery))

    while index < len(arrivals) or queue:
        close = batcher.close_time()
        next_arrival = arrivals[index].arrival if index < len(arrivals) else None
        if close is not None and (next_arrival is None or close <= next_arrival):
            clock.seek(close)
            window = batcher.next_batch(clock.now)
            if not window:  # numeric ties: force the close we scheduled
                window = batcher.next_batch(clock.now, flush=True)
            dispatch(window)
        else:
            clock.seek(next_arrival)
            submit_due()

    makespan = max((t for _, t in completions), default=0.0)
    metrics.wall_seconds = makespan
    return ScheduleResult(
        metrics=metrics, makespan=makespan, completions=completions
    )
