"""Exception hierarchy for the Shredder reproduction.

Every error raised intentionally by this library derives from
:class:`ReproError` so that callers can catch library failures without
catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ShapeError(ReproError, ValueError):
    """An array or tensor had an incompatible shape."""


class GradientError(ReproError, RuntimeError):
    """Backward pass was used incorrectly (e.g. no grad function)."""


class ConfigurationError(ReproError, ValueError):
    """A configuration value is missing, malformed, or inconsistent."""


class SerializationError(ReproError, ValueError):
    """A state dict could not be saved or loaded."""


class DatasetError(ReproError, ValueError):
    """A dataset was asked for something it cannot produce."""


class ModelError(ReproError, ValueError):
    """A model was constructed or used incorrectly (bad cut point, ...)."""


class EstimatorError(ReproError, ValueError):
    """An information-theoretic estimator received unusable inputs."""


class TrainingError(ReproError, RuntimeError):
    """Noise or model training failed or diverged."""


class ChannelError(ReproError, RuntimeError):
    """The simulated edge-cloud channel rejected a message."""
