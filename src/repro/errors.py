"""Exception hierarchy for the Shredder reproduction.

Every error raised intentionally by this library derives from
:class:`ReproError` so that callers can catch library failures without
catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ShapeError(ReproError, ValueError):
    """An array or tensor had an incompatible shape."""


class GradientError(ReproError, RuntimeError):
    """Backward pass was used incorrectly (e.g. no grad function)."""


class ConfigurationError(ReproError, ValueError):
    """A configuration value is missing, malformed, or inconsistent."""


class SerializationError(ReproError, ValueError):
    """A state dict could not be saved or loaded."""


class DatasetError(ReproError, ValueError):
    """A dataset was asked for something it cannot produce."""


class ModelError(ReproError, ValueError):
    """A model was constructed or used incorrectly (bad cut point, ...)."""


class EstimatorError(ReproError, ValueError):
    """An information-theoretic estimator received unusable inputs."""


class TrainingError(ReproError, RuntimeError):
    """Noise or model training failed or diverged."""


class ChannelError(ReproError, RuntimeError):
    """The simulated edge-cloud channel rejected a message."""


class NoiseOwnershipError(ConfigurationError):
    """A :class:`~repro.core.sampler.NoiseStream` was drawn from a thread
    that does not own it.

    The serving dispatcher must be the single generator owner; any other
    thread drawing would silently interleave the noise bit stream and break
    the bit-parity contract.  Subclasses :class:`ConfigurationError` so
    pre-existing handlers keep working.
    """


class ChannelOwnershipError(ChannelError):
    """A :class:`~repro.edge.channel.Channel` was used from two threads at
    once.

    Channel statistics (and the drop generator) are not thread-safe; every
    concurrent user must hold its own :meth:`~repro.edge.channel.Channel.clone`.
    """


class WorkerCrashError(ReproError, RuntimeError):
    """A cloud worker died while servicing a micro-batch.

    Raised inside the worker (by the fault-injection hook or by the pool
    when no live worker context remains) and caught by the dispatcher,
    which requeues the in-flight batch onto the surviving workers
    exactly-once.  Carries the crashed ``worker_id`` when known.
    """

    def __init__(self, message: str, worker_id: int | None = None) -> None:
        super().__init__(message)
        self.worker_id = worker_id


class ServingFaultError(ReproError, RuntimeError):
    """The serving control plane cannot recover from worker failures
    (e.g. every worker has crashed while batches were still in flight)."""


class ShardCrashError(ReproError, RuntimeError):
    """The peer of a shard socket died mid-conversation.

    Raised by :class:`~repro.serve.transport.SocketTransport` when the
    connection hits EOF or a reset while a frame is expected — the
    process-sharded serving plane's signal that a shard subprocess (or
    the parent) is gone.  The parent catches it, respawns the shard
    pre-warmed, and replays the shard's admitted request log so nothing
    admitted is ever silently dropped (the PR 6 healing contract,
    extended across process boundaries).  Carries the ``shard_id`` when
    the transport knows which shard it was speaking for.
    """

    def __init__(self, message: str, shard_id: int | None = None) -> None:
        super().__init__(message)
        self.shard_id = shard_id


class OverloadError(ReproError, RuntimeError):
    """The serving plane explicitly rejected work under overload.

    This is the 429-style contract of the elastic control plane: when a
    deployment cannot absorb more traffic, submission fails with a typed
    error *at the front door* instead of silently collapsing every
    tenant's tail latency.  Raised directly for deadline-based load
    shedding (the request's SLO is already unmeetable given the current
    backlog and measured service time), and via the
    :class:`AdmissionError` subclass for rate/queue-capacity rejections.
    A request that was admitted is never shed later — admitted means
    served exactly once, in order, bit-identically.
    """


class AdmissionError(OverloadError):
    """A request was refused at the admission gate.

    Raised by the per-deployment :class:`~repro.serve.admission.AdmissionController`
    when the deployment's token bucket is out of tokens (sustained rate
    above ``admission_rate_rps``) or its pending-queue cap
    (``max_pending``) is reached.  Subclasses :class:`OverloadError`, so
    ``except OverloadError`` handles every 429-style rejection.
    """


class DeploymentDrainError(ReproError, RuntimeError):
    """A deployment drain barrier could not complete.

    Hot-swap, unregister, and pool-mutation operations first drain work
    to a barrier (queued requests dispatched and every in-flight
    micro-batch collected).  When that barrier cannot be reached — e.g.
    a worker wedges past the drain timeout — this error surfaces instead
    of hanging the control plane.
    """
