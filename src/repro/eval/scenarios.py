"""The three noise-training scenarios of paper §2.4.

The paper describes how the initial in-vivo privacy, the desired level,
and λ interact, yielding three qualitatively different trajectories:

1. **hold** — initialise *at* the target and tune λ so privacy stays
   (approximately) constant while accuracy recovers;
2. **overshoot** — initialise well *above* the target with λ ≈ 0: privacy
   drifts down as accuracy recovers, but from so high that the endpoint is
   still above the target;
3. **rise** — initialise *below* the target with an active λ: privacy
   climbs to the target (where the schedule decays λ) while accuracy
   recovers — the Figure 4 dynamic.

``run_scenarios`` trains all three from the same backbone and reports the
trajectory shape of each, so the §2.4 narrative becomes a checkable
artefact rather than prose.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import Config
from repro.core import ConstantLambda, DecayOnTarget, NoiseTrainingResult
from repro.errors import ConfigurationError
from repro.eval.experiments import BenchmarkConfig, build_pipeline, load_benchmark
from repro.eval.reporting import format_table
from repro.models import PretrainedBundle

#: Scenario names in paper order.
SCENARIO_NAMES = ("hold", "overshoot", "rise")


@dataclass(frozen=True)
class ScenarioOutcome:
    """One §2.4 scenario's trajectory summary.

    Attributes:
        scenario: ``hold`` / ``overshoot`` / ``rise``.
        initial_privacy: In-vivo privacy at the first iteration.
        final_privacy: In-vivo privacy at the last iteration.
        final_accuracy: Noisy accuracy at the end of training.
        accuracy_gain: Final minus first measured accuracy.
        result: The full training result (curves included).
    """

    scenario: str
    initial_privacy: float
    final_privacy: float
    final_accuracy: float
    accuracy_gain: float
    result: NoiseTrainingResult

    @property
    def privacy_drift(self) -> float:
        """Signed privacy change over training."""
        return self.final_privacy - self.initial_privacy


@dataclass
class ScenarioSuite:
    """All three scenarios for one network."""

    benchmark: str
    target_in_vivo: float
    outcomes: list[ScenarioOutcome]

    def by_name(self, scenario: str) -> ScenarioOutcome:
        for outcome in self.outcomes:
            if outcome.scenario == scenario:
                return outcome
        raise KeyError(scenario)

    def format(self) -> str:
        rows = [
            (
                o.scenario,
                f"{o.initial_privacy:.3f}",
                f"{o.final_privacy:.3f}",
                f"{o.privacy_drift:+.3f}",
                f"{o.final_accuracy:.3f}",
                f"{o.accuracy_gain:+.3f}",
            )
            for o in self.outcomes
        ]
        return format_table(
            [
                "scenario",
                "initial 1/SNR",
                "final 1/SNR",
                "privacy drift",
                "final accuracy",
                "accuracy gain",
            ],
            rows,
            title=(
                f"Section 2.4 scenarios ({self.benchmark}, "
                f"target 1/SNR {self.target_in_vivo:g})"
            ),
        )


def run_scenarios(
    benchmark_name: str,
    config: Config,
    iterations: int | None = None,
    overshoot_factor: float = 3.0,
    rise_factor: float = 0.3,
    verbose: bool = False,
    bundle: PretrainedBundle | None = None,
    benchmark: BenchmarkConfig | None = None,
) -> ScenarioSuite:
    """Train the three §2.4 scenarios for one network.

    Args:
        benchmark_name: Network to run.
        config: Seed/scale configuration.
        iterations: Noise-training steps per scenario.
        overshoot_factor: Initial privacy multiple of the target for the
            overshoot scenario (must exceed 1).
        rise_factor: Initial privacy fraction of the target for the rise
            scenario (must fall below 1).
        verbose: Print one line per scenario.
    """
    if overshoot_factor <= 1.0:
        raise ConfigurationError(
            f"overshoot factor must exceed 1, got {overshoot_factor}"
        )
    if not 0.0 < rise_factor < 1.0:
        raise ConfigurationError(f"rise factor must be in (0, 1), got {rise_factor}")
    if bundle is None or benchmark is None:
        bundle, benchmark = load_benchmark(benchmark_name, config, verbose=verbose)
    iters = iterations or config.scale.noise_iterations
    target = benchmark.target_in_vivo

    # Scenario 1 (hold): start at the target with the decay-on-target
    # schedule active from step one — λ decays immediately, freezing the
    # privacy level while cross entropy recovers.
    hold_pipe = build_pipeline(bundle, benchmark, config, init_in_vivo=target)
    # Scenario 2 (overshoot): start far above the target, λ = 0 — train
    # until accuracy is regained, accepting the privacy drift downward.
    overshoot_pipe = build_pipeline(
        bundle,
        benchmark,
        config,
        lambda_coeff=0.0,
        init_in_vivo=overshoot_factor * target,
    )
    overshoot_pipe.trainer.schedule = ConstantLambda(0.0)
    # Scenario 3 (rise): start below the target with λ active — privacy
    # climbs to the target, then the schedule decays λ (Figure 4).
    rise_pipe = build_pipeline(
        bundle, benchmark, config, init_in_vivo=rise_factor * target
    )

    outcomes = []
    for name, pipeline in (
        ("hold", hold_pipe),
        ("overshoot", overshoot_pipe),
        ("rise", rise_pipe),
    ):
        result = pipeline.train_noise(iters, seed_tag=name)
        history = result.history
        outcome = ScenarioOutcome(
            scenario=name,
            initial_privacy=history.in_vivo_privacies[0],
            final_privacy=history.in_vivo_privacies[-1],
            final_accuracy=result.final_accuracy,
            accuracy_gain=history.accuracies[-1] - history.accuracies[0],
            result=result,
        )
        outcomes.append(outcome)
        if verbose:
            print(
                f"{name}: privacy {outcome.initial_privacy:.3f} -> "
                f"{outcome.final_privacy:.3f}, accuracy "
                f"{outcome.final_accuracy:.3f} ({outcome.accuracy_gain:+.3f})"
            )
    return ScenarioSuite(
        benchmark=benchmark_name, target_in_vivo=target, outcomes=outcomes
    )
