"""Table 1 — the paper's summary of Shredder on all four benchmarks.

For each network: original vs shredded mutual information, MI loss %,
accuracy loss %, the noise/model parameter ratio, and noise-training
epochs, plus the GMean summary row.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import Config
from repro.core import ShredderReport
from repro.eval.experiments import benchmark_names, build_pipeline, load_benchmark
from repro.eval.reporting import format_table


@dataclass
class Table1Row:
    """One measured benchmark column of Table 1 (plus paper references)."""

    benchmark: str
    report: ShredderReport
    paper_mi_loss_percent: float
    paper_accuracy_loss_percent: float


@dataclass
class Table1Result:
    """All rows plus the GMean summary."""

    rows: list[Table1Row]

    def gmean_mi_loss(self) -> float:
        values = [max(row.report.mi_loss_percent, 1e-6) for row in self.rows]
        return float(np.exp(np.mean(np.log(values))))

    def mean_accuracy_loss(self) -> float:
        return float(np.mean([row.report.accuracy_loss_percent for row in self.rows]))

    def format(self) -> str:
        """Render the table in the paper's row layout."""
        headers = ["Benchmark"] + [row.benchmark for row in self.rows] + ["GMean"]
        reports = [row.report for row in self.rows]
        body = [
            ["Original Mutual Information (bits)"]
            + [f"{r.original_mi_bits:.2f}" for r in reports]
            + ["-"],
            ["Shredded Mutual Information (bits)"]
            + [f"{r.shredded_mi_bits:.2f}" for r in reports]
            + ["-"],
            ["Mutual Information Loss (%)"]
            + [f"{r.mi_loss_percent:.2f}" for r in reports]
            + [f"{self.gmean_mi_loss():.2f}"],
            ["Accuracy Loss (%)"]
            + [f"{r.accuracy_loss_percent:.2f}" for r in reports]
            + [f"{self.mean_accuracy_loss():.2f}"],
            ["Learnable Params over Model Size (%)"]
            + [f"{r.params_ratio_percent:.2f}" for r in reports]
            + ["-"],
            ["Number of Epochs of Training"]
            + [f"{r.epochs:.2f}" for r in reports]
            + ["-"],
        ]
        return format_table(headers, body, title="Table 1: Shredder summary")


def run_table1(
    config: Config,
    benchmarks: list[str] | None = None,
    iterations: int | None = None,
    verbose: bool = False,
) -> Table1Result:
    """Measure the Table 1 quantities for the requested benchmarks.

    Args:
        config: Seed/scale configuration.
        benchmarks: Benchmark subset (defaults to all four networks).
        iterations: Noise-training iterations per member (defaults to the
            scale's setting).
        verbose: Print rows as they are produced.
    """
    rows: list[Table1Row] = []
    for name in benchmarks or benchmark_names():
        bundle, benchmark = load_benchmark(name, config, verbose=verbose)
        pipeline = build_pipeline(bundle, benchmark, config)
        iters = iterations or config.scale.noise_iterations
        collection = pipeline.collect(benchmark.n_members, iters)
        epochs = iters * config.scale.batch_size / len(pipeline.trainer.train_labels)
        report = pipeline.report(collection, epochs=epochs)
        rows.append(
            Table1Row(
                benchmark=name,
                report=report,
                paper_mi_loss_percent=benchmark.paper.mi_loss_percent,
                paper_accuracy_loss_percent=benchmark.paper.accuracy_loss_percent,
            )
        )
        if verbose:
            print(
                f"{name}: MI {report.original_mi_bits:.2f} -> "
                f"{report.shredded_mi_bits:.2f} bits "
                f"({report.mi_loss_percent:.1f}% loss), accuracy loss "
                f"{report.accuracy_loss_percent:.2f}%"
            )
    return Table1Result(rows=rows)
