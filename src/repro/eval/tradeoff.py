"""Figure 3 — the accuracy-privacy trade-off.

For one network cut at its last convolution, sweep the noise level (the
target in-vivo privacy, which sets the Laplace init and λ-decay target) and
record, per operating point, the accuracy loss and the bits of mutual
information lost relative to the no-noise activation.  The "Zero Leakage"
line is the original MI — losing that much information would leak nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import Config
from repro.eval.experiments import build_pipeline, load_benchmark
from repro.eval.reporting import format_table
from repro.privacy import information_loss_bits


@dataclass(frozen=True)
class TradeoffPoint:
    """One operating point of Figure 3.

    Attributes:
        target_in_vivo: The swept noise level (1/SNR target).
        accuracy_loss_percent: Accuracy sacrificed at this point.
        information_loss_bits: MI stripped from the activation.
        shredded_mi_bits: Remaining leakage.
    """

    target_in_vivo: float
    accuracy_loss_percent: float
    information_loss_bits: float
    shredded_mi_bits: float


@dataclass
class TradeoffCurve:
    """The Figure 3 panel for one benchmark network."""

    benchmark: str
    zero_leakage_bits: float
    points: list[TradeoffPoint]

    def format(self) -> str:
        rows = [
            (
                f"{p.target_in_vivo:.3g}",
                f"{p.accuracy_loss_percent:.2f}",
                f"{p.information_loss_bits:.3f}",
                f"{p.shredded_mi_bits:.3f}",
            )
            for p in sorted(self.points, key=lambda p: p.accuracy_loss_percent)
        ]
        table = format_table(
            ["noise level (1/SNR)", "accuracy loss (%)", "info loss (bits)", "remaining MI (bits)"],
            rows,
            title=f"Figure 3 ({self.benchmark}): accuracy-privacy trade-off",
        )
        return table + f"\nZero Leakage line: {self.zero_leakage_bits:.3f} bits"


#: Default sweep of in-vivo privacy targets (noise levels).
DEFAULT_LEVELS = (0.1, 0.25, 0.5, 1.0, 2.0)


def run_tradeoff(
    benchmark_name: str,
    config: Config,
    levels: tuple[float, ...] = DEFAULT_LEVELS,
    iterations: int | None = None,
    n_members: int = 6,
    verbose: bool = False,
) -> TradeoffCurve:
    """Sweep noise levels and measure the Figure 3 curve for one network."""
    bundle, benchmark = load_benchmark(benchmark_name, config, verbose=verbose)
    iters = iterations or config.scale.noise_iterations
    points: list[TradeoffPoint] = []
    zero_leakage = None
    for level in levels:
        pipeline = build_pipeline(bundle, benchmark, config, target_in_vivo=level)
        if zero_leakage is None:
            zero_leakage = pipeline.measure_leakage(None).mi_bits
        collection = pipeline.collect(n_members, iters)
        clean = pipeline.clean_accuracy()
        noisy = pipeline.noisy_accuracy(collection)
        shredded = pipeline.measure_leakage(collection).mi_bits
        point = TradeoffPoint(
            target_in_vivo=level,
            accuracy_loss_percent=100.0 * (clean - noisy),
            information_loss_bits=information_loss_bits(zero_leakage, shredded),
            shredded_mi_bits=shredded,
        )
        points.append(point)
        if verbose:
            print(
                f"level={level:g}: acc loss {point.accuracy_loss_percent:.2f}%, "
                f"info loss {point.information_loss_bits:.3f} bits"
            )
    return TradeoffCurve(
        benchmark=benchmark_name, zero_leakage_bits=zero_leakage, points=points
    )
