"""Per-benchmark experiment configurations and the paper's reference numbers.

The λ values follow the paper's guidance (§2.4): larger networks get
smaller λ.  Noise initialisation is parameterised by the *target in-vivo
privacy* rather than a raw Laplace scale — the scale is derived from the
measured signal power ``E[a²]`` at the cut (``Var[Laplace(0,b)] = 2b²``, so
``b = sqrt(target · E[a²] / 2)`` starts training exactly at the target),
which makes one config meaningful across networks whose activation
magnitudes differ wildly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import Config
from repro.core import DecayOnTarget, ShredderPipeline
from repro.errors import ConfigurationError
from repro.models import PretrainedBundle, get_pretrained


@dataclass(frozen=True)
class PaperNumbers:
    """Table 1 reference values from the paper, for EXPERIMENTS.md."""

    original_mi: float
    shredded_mi: float
    mi_loss_percent: float
    accuracy_loss_percent: float
    params_ratio_percent: float
    epochs: float


@dataclass(frozen=True)
class BenchmarkConfig:
    """One network's Shredder hyper-parameters.

    Attributes:
        model: Backbone name.
        lambda_coeff: The λ knob (Eq. 3).
        target_in_vivo: Desired 1/SNR; sets both the Laplace init scale and
            the decay-on-target schedule.
        lr: Adam learning rate for the noise.
        n_members: Noise-collection size (§2.5).
        paper: The paper's Table 1 row for this network.
    """

    model: str
    lambda_coeff: float
    target_in_vivo: float
    lr: float
    n_members: int
    paper: PaperNumbers


BENCHMARKS: dict[str, BenchmarkConfig] = {
    "lenet": BenchmarkConfig(
        model="lenet",
        lambda_coeff=1e-2,
        target_in_vivo=0.5,
        lr=1e-2,
        n_members=8,
        paper=PaperNumbers(301.84, 18.9, 93.74, 1.34, 0.19, 6.3),
    ),
    "cifar": BenchmarkConfig(
        model="cifar",
        lambda_coeff=1e-3,
        target_in_vivo=0.5,
        lr=1e-2,
        n_members=8,
        paper=PaperNumbers(236.34, 90.2, 61.83, 1.42, 0.65, 1.7),
    ),
    "svhn": BenchmarkConfig(
        model="svhn",
        lambda_coeff=1e-3,
        target_in_vivo=0.5,
        lr=1e-2,
        n_members=8,
        paper=PaperNumbers(19.2, 7.1, 64.58, 1.12, 0.04, 1.2),
    ),
    "alexnet": BenchmarkConfig(
        model="alexnet",
        lambda_coeff=1e-4,
        target_in_vivo=0.5,
        lr=1e-2,
        n_members=6,
        paper=PaperNumbers(12661.51, 4439.0, 64.94, 1.95, 0.02, 0.1),
    ),
}

#: Paper GMean row (Table 1): mean MI loss and accuracy loss.
PAPER_GMEAN_MI_LOSS = 70.2
PAPER_GMEAN_ACCURACY_LOSS = 1.46


def benchmark_names() -> list[str]:
    """Benchmark networks in the paper's Table 1 order."""
    return ["lenet", "cifar", "svhn", "alexnet"]


def get_benchmark(name: str) -> BenchmarkConfig:
    """Look up a benchmark config by network name."""
    key = name.strip().lower()
    if key not in BENCHMARKS:
        raise ConfigurationError(
            f"unknown benchmark {name!r}; options: {benchmark_names()}"
        )
    return BENCHMARKS[key]


def derive_init_scale(target_in_vivo: float, signal_power: float) -> float:
    """Laplace ``b`` whose variance hits the in-vivo target at init."""
    if target_in_vivo <= 0 or signal_power <= 0:
        raise ConfigurationError("target privacy and signal power must be positive")
    return math.sqrt(target_in_vivo * signal_power / 2.0)


def build_pipeline(
    bundle: PretrainedBundle,
    benchmark: BenchmarkConfig,
    config: Config,
    cut: str | None = None,
    target_in_vivo: float | None = None,
    lambda_coeff: float | None = None,
    init_in_vivo: float | None = None,
) -> ShredderPipeline:
    """Construct a ready-to-train pipeline for a benchmark config.

    The Laplace init scale is derived from the measured signal power at the
    chosen cut, and a decay-on-target λ schedule stabilises privacy at the
    target level (paper §3.2).

    Args:
        init_in_vivo: In-vivo privacy realised *at initialisation*;
            defaults to the target (paper scenario 1: hold privacy, regain
            accuracy).  Set it below the target to reproduce the Figure 4
            dynamic where privacy rises before stabilising.
    """
    target = target_in_vivo if target_in_vivo is not None else benchmark.target_in_vivo
    lam = lambda_coeff if lambda_coeff is not None else benchmark.lambda_coeff
    start = init_in_vivo if init_in_vivo is not None else target
    pipeline = ShredderPipeline(
        bundle,
        cut=cut,
        lambda_coeff=lam,
        init_scale=1.0,  # replaced below once signal power is known
        schedule=DecayOnTarget(base=lam, target=target, decay=0.5) if lam > 0 else None,
        lr=benchmark.lr,
        config=config,
    )
    pipeline.init_scale = derive_init_scale(start, pipeline.trainer.signal_power)
    return pipeline


def load_benchmark(
    name: str, config: Config, verbose: bool = False
) -> tuple[PretrainedBundle, BenchmarkConfig]:
    """Fetch (pre-training if needed) the backbone for a benchmark."""
    benchmark = get_benchmark(name)
    bundle = get_pretrained(benchmark.model, config, verbose=verbose)
    return bundle, benchmark
