"""``repro.eval`` — the experiment harness for the paper's Table 1 and
Figures 3-6, plus the ablations indexed in DESIGN.md."""

from repro.eval.attack_eval import (
    AttackOutcome,
    AttackSuiteResult,
    run_attack_suite,
)
from repro.eval.cutpoints import CutpointAnalysis, cost_table, run_cutpoints
from repro.eval.experiments import (
    BENCHMARKS,
    PAPER_GMEAN_ACCURACY_LOSS,
    PAPER_GMEAN_MI_LOSS,
    BenchmarkConfig,
    PaperNumbers,
    benchmark_names,
    build_pipeline,
    derive_init_scale,
    get_benchmark,
    load_benchmark,
)
from repro.eval.layerwise import (
    PAPER_CUTS,
    LayerPrivacyPoint,
    LayerwiseResult,
    run_layerwise,
)
from repro.eval.report_document import (
    CsvTable,
    load_results,
    render_report,
    write_report,
)
from repro.eval.reporting import format_series, format_table, write_csv
from repro.eval.scenarios import (
    SCENARIO_NAMES,
    ScenarioOutcome,
    ScenarioSuite,
    run_scenarios,
)
from repro.eval.table1 import Table1Result, Table1Row, run_table1
from repro.eval.tradeoff import TradeoffCurve, TradeoffPoint, run_tradeoff
from repro.eval.training_curves import TrainingCurves, run_training_curves

__all__ = [
    "AttackOutcome",
    "AttackSuiteResult",
    "BENCHMARKS",
    "BenchmarkConfig",
    "run_attack_suite",
    "CutpointAnalysis",
    "LayerPrivacyPoint",
    "LayerwiseResult",
    "PAPER_CUTS",
    "PAPER_GMEAN_ACCURACY_LOSS",
    "PAPER_GMEAN_MI_LOSS",
    "PaperNumbers",
    "CsvTable",
    "SCENARIO_NAMES",
    "load_results",
    "render_report",
    "write_report",
    "ScenarioOutcome",
    "ScenarioSuite",
    "run_scenarios",
    "Table1Result",
    "Table1Row",
    "TradeoffCurve",
    "TradeoffPoint",
    "TrainingCurves",
    "benchmark_names",
    "build_pipeline",
    "cost_table",
    "derive_init_scale",
    "format_series",
    "format_table",
    "get_benchmark",
    "load_benchmark",
    "run_cutpoints",
    "run_layerwise",
    "run_table1",
    "run_tradeoff",
    "run_training_curves",
    "write_csv",
]
