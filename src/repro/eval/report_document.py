"""Render the measured results directory into a markdown report.

The benchmark suite writes one CSV per artefact under ``results/``; this
module turns that directory into a self-contained markdown document — the
mechanised counterpart of EXPERIMENTS.md, regenerated from whatever was
actually measured (``python -m repro report``).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError

#: Known artefacts in presentation order: (csv stem prefix, section title).
_SECTIONS: tuple[tuple[str, str], ...] = (
    ("table1", "Table 1 — Shredder summary"),
    ("figure3", "Figure 3 — accuracy-privacy trade-off"),
    ("figure4", "Figure 4 — training dynamics"),
    ("figure5", "Figure 5 — in-vivo vs ex-vivo privacy by cut"),
    ("figure6", "Figure 6 — cutting-point costs"),
    ("scenarios", "Section 2.4 — training scenarios"),
    ("ablation", "Ablations"),
    ("attack", "Operational attacks"),
    ("energy", "Device energy model"),
)

#: Truncate figure-4-style long series to this many rows in the report.
_MAX_ROWS = 12


@dataclass(frozen=True)
class CsvTable:
    """One parsed results CSV."""

    name: str
    header: list[str]
    rows: list[list[str]]

    @property
    def truncated(self) -> bool:
        return len(self.rows) > _MAX_ROWS


def load_results(results_dir: str | Path) -> list[CsvTable]:
    """Parse every CSV in a results directory, sorted by name."""
    directory = Path(results_dir)
    if not directory.is_dir():
        raise ConfigurationError(f"no results directory at {directory}")
    tables = []
    for path in sorted(directory.glob("*.csv")):
        with open(path, newline="") as handle:
            reader = csv.reader(handle)
            try:
                header = next(reader)
            except StopIteration:
                continue  # empty file — nothing to report
            rows = [row for row in reader if row]
        tables.append(CsvTable(name=path.stem, header=header, rows=rows))
    if not tables:
        raise ConfigurationError(f"no result CSVs under {directory}")
    return tables


def _format_cell(value: str) -> str:
    """Shorten float cells for readability; pass everything else through."""
    try:
        number = float(value)
    except ValueError:
        return value
    if number != number:  # NaN
        return "nan"
    if number == int(number) and abs(number) < 1e6:
        return str(int(number))
    return f"{number:.4g}"


def _markdown_table(table: CsvTable) -> str:
    lines = [
        "| " + " | ".join(table.header) + " |",
        "|" + "|".join("---" for _ in table.header) + "|",
    ]
    for row in table.rows[:_MAX_ROWS]:
        lines.append("| " + " | ".join(_format_cell(cell) for cell in row) + " |")
    if table.truncated:
        lines.append(
            f"| … | {len(table.rows) - _MAX_ROWS} more rows in "
            f"`results/{table.name}.csv` |"
            + " |" * max(0, len(table.header) - 2)
        )
    return "\n".join(lines)


def _section_for(name: str) -> str:
    for prefix, title in _SECTIONS:
        if name.startswith(prefix):
            return title
    return "Other results"


def render_report(results_dir: str | Path, title: str = "Measured results") -> str:
    """Build the full markdown document from a results directory."""
    tables = load_results(results_dir)
    sections: dict[str, list[CsvTable]] = {}
    for table in tables:
        sections.setdefault(_section_for(table.name), []).append(table)
    parts = [f"# {title}", ""]
    parts.append(
        f"Generated from {len(tables)} result file(s) under "
        f"`{Path(results_dir)}`. Regenerate any table with the benchmark "
        "listed in DESIGN.md §4."
    )
    for _, section_title in _SECTIONS + (("", "Other results"),):
        if section_title not in sections:
            continue
        parts.append("")
        parts.append(f"## {section_title}")
        for table in sections.pop(section_title):
            parts.append("")
            parts.append(f"### `{table.name}`")
            parts.append("")
            parts.append(_markdown_table(table))
    return "\n".join(parts) + "\n"


def write_report(
    results_dir: str | Path, output: str | Path, title: str = "Measured results"
) -> Path:
    """Render and write the report; returns the output path."""
    output = Path(output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(render_report(results_dir, title=title))
    return output
