"""ASCII-table and CSV reporting for experiment outputs.

Every benchmark prints the same rows/series the paper reports, via these
formatters, and can optionally persist them as CSV for later inspection.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Render an aligned ASCII table."""
    columns = [[str(h)] + [_fmt(row[i]) for row in rows] for i, h in enumerate(headers)]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            " | ".join(_fmt(cell).ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def write_csv(
    path: str | Path, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> Path:
    """Persist rows as CSV (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)
    return path


def format_series(
    name: str, xs: Sequence[float], ys: Sequence[float], x_label: str, y_label: str
) -> str:
    """Render an (x, y) series the way the paper's figures tabulate them."""
    rows = [(f"{x:.4g}", f"{y:.4g}") for x, y in zip(xs, ys)]
    return format_table([x_label, y_label], rows, title=name)
