"""Figure 4 — noise-training dynamics: Shredder vs privacy-agnostic.

Two noise trainings from the same initialisation on the same split model:

* **Shredder** (orange in the paper): Eq. 3 loss with λ > 0 and the
  decay-on-target schedule — in-vivo privacy rises then stabilises while
  accuracy recovers.
* **Regular / privacy-agnostic** (black): plain cross entropy (λ = 0) —
  accuracy recovers faster but in-vivo privacy *decays* as the optimiser
  shrinks whatever noise hurts accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import Config
from repro.core import ConstantLambda, NoiseTrainingResult
from repro.eval.experiments import BenchmarkConfig, build_pipeline, load_benchmark
from repro.eval.reporting import format_series
from repro.models import PretrainedBundle


@dataclass
class TrainingCurves:
    """The two Figure 4 panels for one network."""

    benchmark: str
    shredder: NoiseTrainingResult
    regular: NoiseTrainingResult

    def format(self) -> str:
        parts = []
        for label, result in (("Shredder", self.shredder), ("Regular", self.regular)):
            sampled = result.history.in_vivo_privacies[:: max(1, len(result.history.in_vivo_privacies) // 10)]
            parts.append(
                format_series(
                    f"Figure 4a ({self.benchmark}, {label}): in vivo privacy / iteration",
                    list(range(0, len(result.history.in_vivo_privacies), max(1, len(result.history.in_vivo_privacies) // 10))),
                    sampled,
                    "iteration",
                    "1/SNR",
                )
            )
            parts.append(
                format_series(
                    f"Figure 4b ({self.benchmark}, {label}): accuracy / iteration",
                    result.history.accuracy_iterations,
                    [100.0 * a for a in result.history.accuracies],
                    "iteration",
                    "accuracy (%)",
                )
            )
        return "\n\n".join(parts)


def run_training_curves(
    benchmark_name: str,
    config: Config,
    iterations: int | None = None,
    verbose: bool = False,
    bundle: PretrainedBundle | None = None,
    benchmark: BenchmarkConfig | None = None,
) -> TrainingCurves:
    """Produce the two Figure 4 curves for one network.

    Both runs share the same noise initialisation (``seed_tag=0``) so the
    divergence of the curves is attributable to the loss alone.
    """
    if bundle is None or benchmark is None:
        bundle, benchmark = load_benchmark(benchmark_name, config, verbose=verbose)
    iters = iterations or config.scale.noise_iterations

    # Start below the privacy target (paper Figure 4: in-vivo privacy rises
    # from a low initial value under Shredder's loss, then stabilises once
    # λ decays at the target).
    init_level = 0.3 * benchmark.target_in_vivo
    shredder_pipe = build_pipeline(bundle, benchmark, config, init_in_vivo=init_level)
    shredder = shredder_pipe.train_noise(iters, seed_tag=0)

    regular_pipe = build_pipeline(
        bundle, benchmark, config, lambda_coeff=0.0, init_in_vivo=init_level
    )
    regular_pipe.trainer.schedule = ConstantLambda(0.0)
    regular = regular_pipe.train_noise(iters, seed_tag=0)

    if verbose:
        print(
            f"{benchmark_name}: shredder privacy "
            f"{shredder.history.in_vivo_privacies[0]:.3f} -> "
            f"{shredder.history.in_vivo_privacies[-1]:.3f}; regular "
            f"{regular.history.in_vivo_privacies[0]:.3f} -> "
            f"{regular.history.in_vivo_privacies[-1]:.3f}"
        )
    return TrainingCurves(
        benchmark=benchmark_name, shredder=shredder, regular=regular
    )
