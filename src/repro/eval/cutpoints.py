"""Figure 6 — computation/communication cost vs privacy per cutting point.

Combines the §3.4 analytic cost model (cumulative kMACs × communicated MB)
with measured ex-vivo privacy at each conv cut, and reports the cut the
planner recommends — reproducing the paper's conclusions (SVHN: conv6,
LeNet: conv2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import Config
from repro.edge import CutCandidate, CutCost, CuttingPointPlanner, cut_costs
from repro.eval.experiments import load_benchmark
from repro.eval.layerwise import PAPER_CUTS, run_layerwise
from repro.eval.reporting import format_table


@dataclass
class CutpointAnalysis:
    """The Figure 6 panel for one network.

    Attributes:
        benchmark: Network name.
        candidates: Per-cut cost and measured ex-vivo privacy.
        recommended: The planner's choice (the paper's "Shredder's
            Cutting Point" marker).
    """

    benchmark: str
    candidates: list[CutCandidate]
    recommended: CutCandidate

    def format(self) -> str:
        rows = [
            (
                c.cut,
                f"{c.cost.kilomacs:.1f}",
                f"{c.cost.megabytes:.5f}",
                f"{c.cost.product:.4f}",
                f"{c.ex_vivo_privacy:.4g}",
                "<== Shredder's cutting point" if c.cut == self.recommended.cut else "",
            )
            for c in sorted(self.candidates, key=lambda c: c.cost.conv_index)
        ]
        return format_table(
            ["cut", "kMACs", "MB", "kMAC x MB", "ex vivo (1/MI)", ""],
            rows,
            title=(
                f"Figure 6 ({self.benchmark}): cost vs privacy per cutting point"
            ),
        )


def run_cutpoints(
    benchmark_name: str,
    config: Config,
    cuts: tuple[str, ...] | None = None,
    noise_level: float = 0.6,
    trained: bool = False,
    verbose: bool = False,
) -> CutpointAnalysis:
    """Measure the Figure 6 panel for one network.

    Ex-vivo privacy per cut is measured at a fixed in-vivo noise level
    (default matches the paper's ~0.6), then combined with the analytic
    cost model and ranked by the planner.
    """
    bundle, _ = load_benchmark(benchmark_name, config, verbose=verbose)
    if cuts is None:
        cuts = PAPER_CUTS.get(benchmark_name, tuple(bundle.model.cut_names()))
    layerwise = run_layerwise(
        benchmark_name,
        config,
        cuts=cuts,
        levels=(noise_level,),
        trained=trained,
        verbose=verbose,
    )
    privacy_by_cut = {
        point.cut: point.ex_vivo for point in layerwise.points
    }
    planner = CuttingPointPlanner(bundle.model, privacy_by_cut)
    return CutpointAnalysis(
        benchmark=benchmark_name,
        candidates=sorted(planner.candidates, key=lambda c: c.cost.conv_index),
        recommended=planner.recommend(),
    )


def cost_table(benchmark_name: str, config: Config) -> list[CutCost]:
    """Just the analytic §3.4 cost model for a network (no MI needed)."""
    bundle, _ = load_benchmark(benchmark_name, config)
    return cut_costs(bundle.model)
