"""Extension experiment E10 — operational attacks vs Shredder's noise.

Complements the paper's information-theoretic privacy measure with
concrete adversaries on the communicated tensors: a linear reconstruction
decoder, a nearest-neighbour inverter, and an MLP label-inference attack,
each evaluated against the clean channel, Shredder's sampled noise, and
the accuracy-agnostic matched-variance baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks import (
    LinearInverter,
    NearestNeighbourInverter,
    evaluate_reconstruction,
    run_inference_attack,
    run_reidentification,
)
from repro.config import Config
from repro.core import matched_variance_noise
from repro.eval.experiments import build_pipeline, load_benchmark
from repro.eval.reporting import format_table


@dataclass(frozen=True)
class AttackOutcome:
    """Attack results for one channel condition.

    Attributes:
        condition: ``clean`` / ``shredder`` / ``matched_laplace``.
        task_accuracy: Cloud-task accuracy under this condition.
        linear_advantage: Linear decoder reconstruction advantage (0..1).
        nn_mse: Nearest-neighbour reconstruction MSE.
        label_attack_advantage: MLP label-inference advantage over chance.
        reid_top1: Re-identification top-1 hit rate (chance = 1/pool).
    """

    condition: str
    task_accuracy: float
    linear_advantage: float
    nn_mse: float
    label_attack_advantage: float
    reid_top1: float


@dataclass
class AttackSuiteResult:
    """All conditions for one network."""

    benchmark: str
    outcomes: list[AttackOutcome]

    def by_condition(self, condition: str) -> AttackOutcome:
        for outcome in self.outcomes:
            if outcome.condition == condition:
                return outcome
        raise KeyError(condition)

    def format(self) -> str:
        rows = [
            (
                o.condition,
                f"{o.task_accuracy:.3f}",
                f"{o.linear_advantage:.3f}",
                f"{o.nn_mse:.4f}",
                f"{o.label_attack_advantage:.3f}",
                f"{o.reid_top1:.3f}",
            )
            for o in self.outcomes
        ]
        return format_table(
            ["condition", "task acc", "linear recon adv", "NN recon MSE", "label attack adv", "reid top-1"],
            rows,
            title=f"Attack suite ({self.benchmark})",
        )


def run_attack_suite(
    benchmark_name: str,
    config: Config,
    cut: str | None = None,
    iterations: int | None = None,
    n_members: int | None = None,
    attack_epochs: int = 25,
    verbose: bool = False,
) -> AttackSuiteResult:
    """Evaluate the three adversaries under three channel conditions.

    Args:
        cut: Cutting point under attack.  Defaults to the *first* conv cut:
            shallow activations are the ones a reconstruction adversary can
            actually invert (deep cuts already carry little pixel
            information — paper §3.3), so that is where noise protection is
            interesting to measure.
    """
    bundle, benchmark = load_benchmark(benchmark_name, config, verbose=verbose)
    cut = cut or bundle.model.cut_names()[0]
    pipeline = build_pipeline(bundle, benchmark, config, cut=cut)
    collection = pipeline.collect(
        n_members or benchmark.n_members, iterations
    )
    rng = np.random.default_rng(config.child_seed("attack-suite"))

    activations = pipeline.trainer.eval_activations
    labels = pipeline.trainer.eval_labels
    images = bundle.test_set.images
    half = len(labels) // 2

    shredder_noise = collection.sample_batch(rng, len(activations))
    baseline_noise = matched_variance_noise(collection, len(activations), rng)
    conditions = {
        "clean": activations,
        "shredder": activations + shredder_noise,
        "matched_laplace": activations + baseline_noise,
    }

    outcomes = []
    for name, observed in conditions.items():
        task_accuracy = pipeline.split.accuracy_from_activations(
            activations,
            labels,
            None if name == "clean" else (observed - activations),
        )
        linear = LinearInverter().fit(images[:half], observed[:half])
        linear_report = evaluate_reconstruction(
            images[half:], linear.reconstruct(observed[half:]), images[:half]
        )
        nn = NearestNeighbourInverter(images[:half], observed[:half])
        nn_report = evaluate_reconstruction(
            images[half:], nn.reconstruct(observed[half:]), images[:half]
        )
        reid_report = run_reidentification(activations, observed)
        label_report = run_inference_attack(
            observed[:half],
            labels[:half],
            observed[half:],
            labels[half:],
            rng=np.random.default_rng(config.child_seed("attack-mlp", name)),
            epochs=attack_epochs,
        )
        outcomes.append(
            AttackOutcome(
                condition=name,
                task_accuracy=task_accuracy,
                linear_advantage=linear_report.advantage,
                nn_mse=nn_report.mse,
                label_attack_advantage=label_report.advantage,
                reid_top1=reid_report.top1_rate,
            )
        )
        if verbose:
            print(
                f"{name}: task acc {task_accuracy:.3f}, linear adv "
                f"{linear_report.advantage:.3f}, label adv "
                f"{label_report.advantage:.3f}"
            )
    return AttackSuiteResult(benchmark=benchmark_name, outcomes=outcomes)
